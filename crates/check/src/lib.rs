//! # vsched-check — differential fuzzing and runtime invariant checking
//!
//! The paper's value proposition is that a simulation framework lets you
//! *trust* comparisons between VCPU scheduling policies. This crate is the
//! correctness tooling behind that trust, in three layers:
//!
//! 1. [`InvariantChecker`] — a [`vsched_core::observe::TickObserver`]
//!    that rides either engine and asserts, every tick, the invariant
//!    catalogue of DESIGN.md §11: clock monotonicity, exclusive PCPU
//!    assignment, legal VCPU state transitions, SCS gang atomicity, the
//!    RCS cumulative-skew bound, and reward-accounting closure. The
//!    *decision* invariant ([`vsched_core::sched::validate_decision`],
//!    re-exported here as [`validate_decision`]) is enforced in-engine on
//!    every tick of every run, fuzzed or not.
//! 2. [`gen::CaseGen`] + [`oracle`] — a seeded random
//!    [`vsched_core::SystemConfig`]/[`vsched_core::PolicyKind`] generator
//!    and a differential oracle that runs every generated case on both
//!    engines (and on `jobs=1` vs `jobs=N`), comparing metrics within
//!    confidence-interval tolerance, plus metamorphic relations
//!    (VM-rotation invariance and time-unit co-scaling). Roughly half
//!    the generated cases carry a bounded churn scenario
//!    ([`case::TraceEventCase`]); the `trace` verdict replays it through
//!    `vsched-trace` on both engines with invariants attached and
//!    requires fingerprint bit-identity across `--jobs` and SAN shard
//!    counts.
//! 3. [`fuzz`] — the `vsched fuzz` driver: runs cases on the shared
//!    `vsched-exec` pool, shrinks failures by greedy component removal
//!    ([`shrink`]) and writes replayable JSON reproducers ([`case`]).
//!
//! ```
//! use vsched_check::{gen::CaseGen, oracle};
//!
//! let case = CaseGen::new(42).case(0);
//! let outcome = oracle::run_case(&case, &oracle::OracleOpts::default());
//! assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod fuzz;
pub mod gen;
pub mod invariant;
pub mod oracle;
pub mod shrink;
pub mod verify;

pub use case::{FuzzCase, Reproducer};
pub use fuzz::{run_fuzz, FuzzOpts, FuzzReport};
pub use invariant::InvariantChecker;
pub use oracle::{CaseOutcome, Failure, FailureKind, OracleOpts};
pub use verify::{
    replay_verify_counterexample, verify_config, verify_fixture, VerifyCounterexample, VerifyRun,
};
pub use vsched_core::sched::validate_decision;

use std::fmt;
use std::path::PathBuf;

/// Errors from loading or storing fuzz reproducers.
///
/// User-supplied paths (a `--replay` file, a `--reproducer-dir`) surface
/// as typed errors naming the offending path — never panics.
#[derive(Debug)]
pub enum CheckError {
    /// Filesystem failure, annotated with the path involved.
    Io {
        /// The file or directory being read or written.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A reproducer file is not valid reproducer JSON.
    Parse {
        /// The file that failed to parse.
        path: PathBuf,
        /// What the parser reported.
        reason: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Io { path, source } => {
                write!(f, "io error at {}: {source}", path.display())
            }
            CheckError::Parse { path, reason } => {
                write!(f, "cannot parse reproducer {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for CheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckError::Io { source, .. } => Some(source),
            CheckError::Parse { .. } => None,
        }
    }
}

impl CheckError {
    /// Wraps an [`std::io::Error`] with the path it occurred at.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        CheckError::Io {
            path: path.into(),
            source,
        }
    }

    /// Builds a [`CheckError::Parse`] from any displayable reason.
    pub fn parse(path: impl Into<PathBuf>, reason: impl fmt::Display) -> Self {
        CheckError::Parse {
            path: path.into(),
            reason: reason.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_names_paths() {
        let e = CheckError::io(
            "/tmp/x.json",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("/tmp/x.json"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CheckError::parse("/tmp/y.json", "bad token");
        assert!(e.to_string().contains("bad token"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
