//! The fuzz-case vocabulary: a serializable, self-contained description
//! of one generated scenario, and the reproducer files `vsched fuzz`
//! writes for every failure.
//!
//! A [`FuzzCase`] captures *everything* the oracle needs — topology,
//! workload distributions, synchronization, policy, seed, and run
//! lengths — so a reproducer JSON replays bit-identically on any machine
//! with the same binary, independent of the generator that produced it.

use serde::{Deserialize, Serialize};
use std::path::Path;

use vsched_core::{
    CoreError, DistSpec, PolicyKind, SyncMechanism, SyncMechanismSpec, SystemConfig, WorkloadSpec,
};
use vsched_trace::{RawEvent, TraceMeta, TraceSchedule, VmShape};

use crate::CheckError;

/// Workload service-demand distribution of one case, in ticks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadSpec {
    /// Every job takes exactly `value` ticks.
    Deterministic {
        /// Job length in ticks.
        value: f64,
    },
    /// Job lengths uniform on `[low, high]`.
    Uniform {
        /// Lower bound in ticks.
        low: f64,
        /// Upper bound in ticks.
        high: f64,
    },
    /// Exponentially distributed job lengths.
    Exponential {
        /// Mean job length in ticks.
        mean: f64,
    },
}

/// Synchronization behaviour of one case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SyncSpec {
    /// Probability that a job is a synchronization point.
    pub probability: f64,
    /// If set, every `every`-th job is a sync point instead of sampling
    /// with `probability` (the deterministic variant).
    pub every: Option<u32>,
    /// Whether waiters block (Barrier) or burn their PCPU (SpinLock).
    pub mechanism: SyncMechanism,
}

/// One VM of a case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct VmCase {
    /// Number of sibling VCPUs.
    pub vcpus: usize,
    /// Proportional-share weight.
    pub weight: u32,
}

/// What one churn event does to a VM. The fuzz vocabulary is the
/// *saturated* subset of the trace crate's: VMs re-arrive with their
/// original shape, so the union topology is always the case's own
/// static topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceOpCase {
    /// The VM departs: its VCPUs retire and their PCPUs free up.
    Depart,
    /// The VM is re-admitted with the shape it had in
    /// [`FuzzCase::vms`].
    Arrive,
    /// The VM's demand changes to this per-mille level.
    SetLoad {
        /// Per-mille demand level (`0..=1000`).
        level: u32,
    },
}

/// One churn event of a case's trace scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TraceEventCase {
    /// Tick at which the event applies (an event boundary, `> 0`).
    pub at: u64,
    /// Index into [`FuzzCase::vms`].
    pub vm: usize,
    /// What happens.
    pub op: TraceOpCase,
}

/// A complete, replayable fuzz scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct FuzzCase {
    /// Position in the generator sequence (also the RNG stream index).
    pub case_index: u64,
    /// Physical CPU count.
    pub pcpus: usize,
    /// The virtual machines.
    pub vms: Vec<VmCase>,
    /// Job service-demand distribution (shared by all VMs).
    pub load: LoadSpec,
    /// Synchronization behaviour (shared by all VMs).
    pub sync: SyncSpec,
    /// Scheduling timeslice in ticks.
    pub timeslice: u64,
    /// Policy under test.
    pub policy: PolicyKind,
    /// Base RNG seed for the replications.
    pub seed: u64,
    /// Warm-up ticks discarded before sampling.
    pub warmup: u64,
    /// Measured horizon in ticks.
    pub horizon: u64,
    /// Replications per engine.
    pub replications: usize,
    /// Churn scenario replayed by the oracle's `trace` verdict: every VM
    /// arrives at tick 0, then these events apply in time order. Empty
    /// means the case is purely static and the trace verdict is skipped.
    /// Defaulted so pre-trace reproducer files keep parsing unchanged.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub trace: Vec<TraceEventCase>,
}

impl FuzzCase {
    /// Materializes the case's [`SystemConfig`].
    ///
    /// # Errors
    ///
    /// [`CoreError`] if the case describes an invalid system (possible
    /// for hand-edited reproducer files; generated cases always build).
    pub fn system_config(&self) -> Result<SystemConfig, CoreError> {
        let load = match self.load {
            LoadSpec::Deterministic { value } => vsched_des::Dist::deterministic(value),
            LoadSpec::Uniform { low, high } => vsched_des::Dist::uniform(low, high),
            LoadSpec::Exponential { mean } => vsched_des::Dist::exponential(mean),
        }
        .map_err(CoreError::from)?;
        let workload = WorkloadSpec {
            load,
            sync_probability: self.sync.probability,
            sync_mechanism: self.sync.mechanism,
            sync_every: self.sync.every,
            interarrival: None,
        };
        let mut builder = SystemConfig::builder()
            .pcpus(self.pcpus)
            .timeslice(self.timeslice);
        for vm in &self.vms {
            builder = builder.vm_spec(vsched_core::VmSpec {
                vcpus: vm.vcpus,
                workload: workload.clone(),
                weight: vm.weight,
            });
        }
        builder.build()
    }

    /// Compiles the case's churn scenario into an executable
    /// [`TraceSchedule`]: every VM arrives at tick 0 carrying the case's
    /// shared workload as per-VM shape overrides, then [`FuzzCase::trace`]
    /// events apply. The resulting union topology resolves to the same
    /// [`SystemConfig`] as [`FuzzCase::system_config`], so the trace
    /// verdict exercises exactly the case's system under churn.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an invalid event sequence
    /// (possible in hand-edited reproducers: out-of-order times, double
    /// arrivals, departures while absent, bad levels).
    pub fn trace_schedule(&self) -> Result<TraceSchedule, CoreError> {
        let mut meta = TraceMeta::new(self.pcpus);
        meta.timeslice = self.timeslice;
        let shape = |vm: &VmCase| {
            let mut s = VmShape::new(vm.vcpus);
            s.weight = vm.weight;
            s.load = Some(match self.load {
                LoadSpec::Deterministic { value } => DistSpec::Deterministic { value },
                LoadSpec::Uniform { low, high } => DistSpec::Uniform { low, high },
                LoadSpec::Exponential { mean } => DistSpec::Exponential { mean },
            });
            s.sync_probability = Some(self.sync.probability);
            s.sync_every = self.sync.every;
            s.sync_mechanism = Some(match self.sync.mechanism {
                SyncMechanism::Barrier => SyncMechanismSpec::Barrier,
                SyncMechanism::SpinLock => SyncMechanismSpec::Spinlock,
            });
            s
        };
        let mut events: Vec<RawEvent> = self
            .vms
            .iter()
            .enumerate()
            .map(|(i, vm)| RawEvent::arrive(0, format!("vm{i}"), shape(vm)))
            .collect();
        for e in &self.trace {
            let Some(vm) = self.vms.get(e.vm) else {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "trace: event at tick {} names VM index {} of {}",
                        e.at,
                        e.vm,
                        self.vms.len()
                    ),
                });
            };
            let name = format!("vm{}", e.vm);
            events.push(match e.op {
                TraceOpCase::Depart => RawEvent::depart(e.at, name),
                TraceOpCase::Arrive => RawEvent::arrive(e.at, name, shape(vm)),
                TraceOpCase::SetLoad { level } => RawEvent::set_load(e.at, name, level),
            });
        }
        TraceSchedule::from_events(&meta, &events).map_err(|e| CoreError::InvalidConfig {
            reason: format!("trace: {e}"),
        })
    }
}

/// A reproducer file: the shrunk case plus the failures it provoked when
/// it was recorded (kept for triage; replay recomputes them).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Reproducer {
    /// The (shrunk) failing case.
    pub case: FuzzCase,
    /// Human-readable failure descriptions observed at record time.
    pub failures: Vec<String>,
    /// Machine-checkable counterexample from the exhaustive verifier
    /// (`vsched verify`), when the reproducer came from one: a concrete
    /// SAN firing trace that `vsched fuzz --replay` re-executes on both
    /// engines. Defaulted so pre-verify reproducer files keep parsing.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub verify: Option<crate::verify::VerifyCounterexample>,
}

impl Reproducer {
    /// Serializes to pretty JSON (the on-disk reproducer format).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reproducer serialization cannot fail")
    }

    /// Loads a reproducer from `path`.
    ///
    /// # Errors
    ///
    /// [`CheckError::Io`] if the file cannot be read,
    /// [`CheckError::Parse`] if it is not valid reproducer JSON.
    pub fn load(path: &Path) -> Result<Self, CheckError> {
        let text = std::fs::read_to_string(path).map_err(|e| CheckError::io(path, e))?;
        serde_json::from_str(&text).map_err(|e| CheckError::parse(path, e))
    }

    /// Stores the reproducer at `path`.
    ///
    /// # Errors
    ///
    /// [`CheckError::Io`] if the file cannot be written.
    pub fn store(&self, path: &Path) -> Result<(), CheckError> {
        std::fs::write(path, self.to_json()).map_err(|e| CheckError::io(path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_case() -> FuzzCase {
        FuzzCase {
            case_index: 0,
            pcpus: 2,
            vms: vec![
                VmCase {
                    vcpus: 2,
                    weight: 1,
                },
                VmCase {
                    vcpus: 1,
                    weight: 2,
                },
            ],
            load: LoadSpec::Uniform {
                low: 2.0,
                high: 9.0,
            },
            sync: SyncSpec {
                probability: 0.25,
                every: None,
                mechanism: SyncMechanism::Barrier,
            },
            timeslice: 5,
            policy: PolicyKind::relaxed_co_default(),
            seed: 42,
            warmup: 200,
            horizon: 800,
            replications: 3,
            trace: vec![],
        }
    }

    #[test]
    fn case_roundtrips_through_json() {
        let case = sample_case();
        let rep = Reproducer {
            case: case.clone(),
            failures: vec!["differential: vcpu_availability".into()],
            verify: None,
        };
        let json = rep.to_json();
        let back: Reproducer = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
        assert_eq!(back.case, case);
    }

    #[test]
    fn case_builds_a_valid_system_config() {
        let config = sample_case().system_config().unwrap();
        assert_eq!(config.pcpus(), 2);
        assert_eq!(config.total_vcpus(), 3);
        assert_eq!(config.timeslice(), 5);
        assert_eq!(config.vms()[1].weight, 2);
    }

    #[test]
    fn invalid_case_surfaces_a_core_error() {
        let mut case = sample_case();
        case.pcpus = 0;
        assert!(case.system_config().is_err());
    }

    #[test]
    fn traced_case_compiles_and_matches_the_static_union() {
        let mut case = sample_case();
        case.trace = vec![
            TraceEventCase {
                at: 300,
                vm: 1,
                op: TraceOpCase::Depart,
            },
            TraceEventCase {
                at: 400,
                vm: 0,
                op: TraceOpCase::SetLoad { level: 500 },
            },
            TraceEventCase {
                at: 600,
                vm: 1,
                op: TraceOpCase::Arrive,
            },
        ];
        let schedule = case.trace_schedule().unwrap();
        // The union topology IS the case's static topology.
        let static_config = case.system_config().unwrap();
        assert_eq!(schedule.config(), &static_config);
        assert!(schedule.initially_present().iter().all(|&p| p));
        assert_eq!(schedule.events().len(), 3);
        assert_eq!(schedule.end_time(), 600);

        // An empty trace degenerates to the static topology.
        let empty = sample_case().trace_schedule().unwrap();
        assert!(empty.is_static());

        // The trace field round-trips, and legacy JSON (no `trace`)
        // still parses as an empty scenario.
        let json = serde_json::to_string(&case).unwrap();
        let back: FuzzCase = serde_json::from_str(&json).unwrap();
        assert_eq!(back, case);
        let legacy = serde_json::to_string(&sample_case()).unwrap();
        assert!(!legacy.contains("trace"));
        let parsed: FuzzCase = serde_json::from_str(&legacy).unwrap();
        assert!(parsed.trace.is_empty());
    }

    #[test]
    fn invalid_trace_scenarios_surface_typed_errors() {
        // Departure of an absent VM.
        let mut case = sample_case();
        case.trace = vec![
            TraceEventCase {
                at: 100,
                vm: 1,
                op: TraceOpCase::Depart,
            },
            TraceEventCase {
                at: 200,
                vm: 1,
                op: TraceOpCase::Depart,
            },
        ];
        let err = case.trace_schedule().unwrap_err();
        assert!(err.to_string().contains("trace:"), "{err}");

        // Out-of-range VM index.
        let mut case = sample_case();
        case.trace = vec![TraceEventCase {
            at: 100,
            vm: 9,
            op: TraceOpCase::Depart,
        }];
        let err = case.trace_schedule().unwrap_err();
        assert!(err.to_string().contains("VM index 9"), "{err}");
    }

    #[test]
    fn load_and_store_roundtrip_and_name_paths_on_error() {
        let dir = std::env::temp_dir().join(format!("vsched-check-case-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("case-0.json");
        let rep = Reproducer {
            case: sample_case(),
            failures: vec![],
            verify: None,
        };
        rep.store(&path).unwrap();
        assert_eq!(Reproducer::load(&path).unwrap(), rep);

        let missing = dir.join("absent.json");
        let err = Reproducer::load(&missing).unwrap_err();
        assert!(err.to_string().contains("absent.json"));

        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "{not json").unwrap();
        let err = Reproducer::load(&garbage).unwrap_err();
        assert!(matches!(err, CheckError::Parse { .. }));

        // A reproducer cut off mid-write must surface as a typed parse
        // error whose message names the file, not a panic or a bare
        // serde message (this is what `vsched fuzz --replay` prints).
        let truncated = dir.join("truncated.json");
        let full = rep.to_json();
        std::fs::write(&truncated, &full[..full.len() / 2]).unwrap();
        let err = Reproducer::load(&truncated).unwrap_err();
        assert!(matches!(err, CheckError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("truncated.json"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
