//! The differential and metamorphic oracle: decides whether one fuzz
//! case passes.
//!
//! Nine independent verdicts feed [`run_case`]:
//!
//! 0. **Lint** — the static analyzer (`vsched-analyze`, quick budget)
//!    examines the case's built SAN model and policy before anything is
//!    simulated; Error-severity findings or failed conservation
//!    certificates fail the case fast, with the structural diagnostic
//!    instead of a downstream symptom.
//! 1. **Invariants** — one run per engine with an
//!    [`InvariantChecker`] attached
//!    (gang/skew contracts enabled per the case's policy).
//! 2. **Differential** — both engines produce a [`MetricsReport`] over
//!    the case's replications; every per-VCPU/per-PCPU column must agree
//!    within `tol_floor + ci_factor · (hwₐ + hw_b)`. The engines share
//!    semantics but not code paths, so a disagreement localizes a bug to
//!    one of them. A suspected disagreement is re-judged at triple the
//!    replications before it is reported, which de-flakes bimodal
//!    configurations whose few-replication means can land on opposite
//!    modes per engine.
//! 3. **Parallel determinism** — the direct engine with `jobs = 1` must
//!    produce a byte-identical report to `jobs = 3` (the replication
//!    engine's core promise).
//! 4. **Metamorphic** — VM-rotation invariance (per-VM availability is a
//!    property of the VM's spec, not its index; checked distributionally
//!    because workload RNG streams are keyed by VM index) and time-unit
//!    co-scaling (doubling every time dimension of a derived
//!    deterministic variant leaves the reported *fractions* in place up
//!    to boundary effects).
//! 5. **Incremental** — the SAN engine's dependency-indexed incremental
//!    reevaluation core must be bit-identical to the full-rescan
//!    reference mode on the same seed (final marking, run statistics,
//!    and every metric's bit pattern).
//! 6. **Sharded** — the SAN engine's intra-replication sharding (derived
//!    conflict-free per-VM shards fired in parallel) must be
//!    bit-identical to the sequential engine on the same seed, by the
//!    same three comparisons as the incremental verdict.
//! 7. **Env** — a `vsched-env` episode driven by the case's policy *fed
//!    from observations* must be bit-identical to the monolithic
//!    `run_replication` on both engines (same cumulative metrics — any
//!    divergence in RNG draws or markings would change them), and a
//!    replay of the recorded actions must reproduce the episode's
//!    observation, reward, and fingerprint streams exactly.
//! 8. **Trace** — cases that carry a churn scenario
//!    ([`FuzzCase::trace`]) replay it through `vsched-trace` on both
//!    engines: one invariant-checked segmented run per engine (the §11
//!    catalogue must hold across retire/re-admit boundaries), the
//!    Direct-vs-SAN differential on the bridged reports (same tolerance
//!    and confirm pass as verdict 2), `jobs = 1` vs `jobs = 3`
//!    fingerprint bit-identity, and sequential-vs-sharded SAN
//!    fingerprint bit-identity — determinism under churn is the trace
//!    frontend's headline claim.
//!
//! Tolerances are calibrated so a 200-case run makes ~6000 comparisons
//! with a near-zero false-positive budget; see [`OracleOpts`].

use std::cell::RefCell;
use std::rc::Rc;

use vsched_core::direct::DirectSim;
use vsched_core::san_model::SanSystem;
use vsched_core::{
    CoreError, Engine, ExperimentBuilder, MetricsReport, PolicyKind, ShardMode, SystemConfig,
};
use vsched_trace::{TraceAction, TraceExperiment, TraceReport, TraceSchedule, FULL_LEVEL};

use crate::case::{FuzzCase, LoadSpec};
use crate::invariant::InvariantChecker;

/// What went wrong with a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The static analyzer rejected the case's model or policy before any
    /// simulation ran.
    Lint,
    /// The invariant checker vetoed a run.
    Invariant,
    /// The two engines disagree beyond tolerance.
    Differential,
    /// A metamorphic relation (rotation, co-scaling, parallel
    /// determinism) does not hold.
    Metamorphic,
    /// The SAN engine's incremental reevaluation core diverged from the
    /// full-rescan reference mode on the same seed.
    Incremental,
    /// The SAN engine's sharded (parallel intra-replication) mode
    /// diverged from the sequential engine on the same seed.
    Sharded,
    /// A `vsched-env` episode diverged from the monolithic run, or a
    /// replay of its recorded actions diverged from the episode.
    Env,
    /// A traced (churn) replay diverged: an invariant broke across a
    /// membership boundary, the engines disagreed on the traced metrics,
    /// or a parallel/sharded trace run was not bit-identical.
    Trace,
    /// A run errored outright (bad config, engine failure).
    Error,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureKind::Lint => "lint",
            FailureKind::Invariant => "invariant",
            FailureKind::Differential => "differential",
            FailureKind::Metamorphic => "metamorphic",
            FailureKind::Incremental => "incremental",
            FailureKind::Sharded => "sharded",
            FailureKind::Env => "env",
            FailureKind::Trace => "trace",
            FailureKind::Error => "error",
        };
        f.write_str(s)
    }
}

/// One oracle complaint about a case.
#[derive(Debug, Clone, PartialEq)]
pub struct Failure {
    /// The verdict family.
    pub kind: FailureKind,
    /// Human-readable specifics (invariant name, metric column, deltas).
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// The oracle's verdict on one case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseOutcome {
    /// Which case this is.
    pub case_index: u64,
    /// Everything the oracle objected to (empty = pass).
    pub failures: Vec<Failure>,
    /// FNV-1a hash over the bit patterns of both engines' reports —
    /// two replays of the same case must produce the same digest.
    pub digest: String,
}

impl CaseOutcome {
    /// Whether the case passed every verdict.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Oracle tolerances and verdict toggles.
#[derive(Debug, Clone)]
pub struct OracleOpts {
    /// Confidence level of the per-column intervals.
    pub ci_level: f64,
    /// Absolute tolerance floor added to every differential comparison —
    /// absorbs genuine seed-to-seed variance that tiny half-widths
    /// under-report at 3 replications.
    pub tol_floor: f64,
    /// Multiplier on the sum of the two half-widths.
    pub ci_factor: f64,
    /// Tolerance for the co-scaling relation (boundary effects are
    /// O(timeslice / horizon), so this is looser than `tol_floor`).
    pub scaling_tol: f64,
    /// Run the static lint pass (quick budget) on the case's built SAN
    /// model and policy before simulating, failing fast on Error findings.
    pub check_lint: bool,
    /// Run the invariant-checked passes.
    pub check_invariants: bool,
    /// Run the jobs=1 vs jobs=3 determinism pass.
    pub check_parallel_determinism: bool,
    /// Run the rotation and co-scaling metamorphic passes.
    pub check_metamorphic: bool,
    /// Run the SAN engine once with incremental reevaluation (the
    /// default) and once in full-rescan reference mode, and require the
    /// final marking, run statistics, and every metric to be
    /// bit-identical — the incremental core's headline correctness claim.
    pub check_incremental: bool,
    /// Run the SAN engine once sequentially (`shards = 1`) and once with
    /// intra-replication sharding (`shards = 4`), and require bit-identical
    /// results — the sharded engine's headline correctness claim.
    pub check_sharded: bool,
    /// Drive a `vsched-env` episode with the case's policy on both
    /// engines, compare its metrics bit-for-bit with the monolithic run,
    /// and replay its recorded actions — the environment's episode-replay
    /// determinism claim.
    pub check_env: bool,
    /// Replay the case's churn scenario (if any) through the trace
    /// frontend on both engines: invariant-checked segmented runs, the
    /// Direct-vs-SAN differential on the bridged reports, and
    /// fingerprint bit-identity across `--jobs` and SAN shard counts.
    pub check_trace: bool,
}

impl Default for OracleOpts {
    fn default() -> Self {
        OracleOpts {
            ci_level: 0.95,
            tol_floor: 0.025,
            ci_factor: 3.0,
            scaling_tol: 0.05,
            check_lint: true,
            check_invariants: true,
            check_parallel_determinism: true,
            check_metamorphic: true,
            check_incremental: true,
            check_sharded: true,
            check_env: true,
            check_trace: true,
        }
    }
}

/// Runs one case through every enabled verdict.
#[must_use]
pub fn run_case(case: &FuzzCase, opts: &OracleOpts) -> CaseOutcome {
    let mut failures = Vec::new();
    let config = match case.system_config() {
        Ok(c) => c,
        Err(e) => {
            return CaseOutcome {
                case_index: case.case_index,
                failures: vec![Failure {
                    kind: FailureKind::Error,
                    detail: format!("config: {e}"),
                }],
                digest: String::from("-"),
            };
        }
    };

    if opts.check_lint {
        // Static pass first: a structurally broken model (dead activity,
        // nonconserving gate, policy-contract breach) fails fast with the
        // lint diagnostic instead of burning simulation budget on it.
        let lint_failures = lint_case(&config, case);
        if !lint_failures.is_empty() {
            return CaseOutcome {
                case_index: case.case_index,
                failures: lint_failures,
                digest: String::from("-"),
            };
        }
    }

    if opts.check_invariants {
        failures.extend(checked_runs(&config, case));
    }

    let direct = report(&config, case, Engine::Direct, 1, opts.ci_level);
    let san = report(&config, case, Engine::San, 1, opts.ci_level);
    let mut digest_reports: Vec<&MetricsReport> = Vec::new();
    match (&direct, &san) {
        (Ok(d), Ok(s)) => {
            let diffs = compare_reports("direct-vs-san", d, s, opts);
            if !diffs.is_empty() {
                // Confirmation pass. Some configurations are genuinely
                // bimodal — e.g. Balance + barrier can wedge a VM behind
                // a starved sibling for the whole window in *either*
                // engine — and at few replications the two engines can
                // collapse onto opposite modes, which reads as a huge
                // differential with tiny half-widths. Re-judging with
                // triple the replications lets both engines sample both
                // modes: a real engine bug is a deterministic bias and
                // survives, a mode-split coincidence does not.
                let reps = case.replications * 3;
                let confirm = (
                    report_with_reps(&config, case, Engine::Direct, 1, opts.ci_level, reps),
                    report_with_reps(&config, case, Engine::San, 1, opts.ci_level, reps),
                );
                match confirm {
                    (Ok(d3), Ok(s3)) => {
                        failures.extend(compare_reports("direct-vs-san", &d3, &s3, opts));
                    }
                    _ => failures.extend(diffs),
                }
            }
            digest_reports.push(d);
            digest_reports.push(s);
        }
        _ => {
            for (name, r) in [("direct", &direct), ("san", &san)] {
                if let Err(e) = r {
                    failures.push(Failure {
                        kind: FailureKind::Error,
                        detail: format!("{name} engine: {e}"),
                    });
                }
            }
        }
    }
    let digest = digest_of(&digest_reports);

    if opts.check_parallel_determinism {
        if let Ok(seq) = &direct {
            match report(&config, case, Engine::Direct, 3, opts.ci_level) {
                Ok(par) => {
                    let same = serde_json::to_string(seq).ok() == serde_json::to_string(&par).ok();
                    if !same {
                        failures.push(Failure {
                            kind: FailureKind::Metamorphic,
                            detail: "jobs=1 and jobs=3 reports differ — parallel replication \
                                     is not deterministic"
                                .into(),
                        });
                    }
                }
                Err(e) => failures.push(Failure {
                    kind: FailureKind::Error,
                    detail: format!("jobs=3 run: {e}"),
                }),
            }
        }
    }

    if opts.check_metamorphic {
        if let Ok(d) = &direct {
            failures.extend(rotation_check(&config, case, d, opts));
        }
        failures.extend(scaling_check(case, opts));
    }

    if opts.check_incremental {
        failures.extend(incremental_check(&config, case));
    }

    if opts.check_sharded {
        failures.extend(sharded_check(&config, case));
    }

    if opts.check_env {
        failures.extend(env_check(&config, case));
    }

    if opts.check_trace {
        failures.extend(trace_check(case, opts));
    }

    CaseOutcome {
        case_index: case.case_index,
        failures,
        digest,
    }
}

/// Runs `config` under `policy` on both engines and returns every
/// differential complaint — the oracle behind the engines-agree
/// integration tier.
///
/// # Errors
///
/// Propagates engine errors (the caller decides whether an errored run
/// is itself a failure).
pub fn engines_agree(
    config: &SystemConfig,
    policy: &PolicyKind,
    warmup: u64,
    horizon: u64,
    seed: u64,
    replications: usize,
    opts: &OracleOpts,
) -> Result<Vec<Failure>, CoreError> {
    let build = |engine| {
        ExperimentBuilder::new(config.clone(), policy.clone())
            .engine(engine)
            .warmup(warmup)
            .horizon(horizon)
            .seed(seed)
            .stopping_rule(vsched_stats::StoppingRule::new(opts.ci_level, 0.05))
            .replications_exact(replications)
            .parallel(true)
            .run()
    };
    let direct = build(Engine::Direct)?;
    let san = build(Engine::San)?;
    Ok(compare_reports("direct-vs-san", &direct, &san, opts))
}

/// The quick static pass over the case's built model and policy. Returns
/// only deny-worthy findings: Error-severity diagnostics and failed
/// certificates; Allow/Warn noise never blocks a fuzz case.
fn lint_case(config: &SystemConfig, case: &FuzzCase) -> Vec<Failure> {
    let target = format!("case-{}", case.case_index);
    let report = match vsched_analyze::lint_config(
        &target,
        config,
        &case.policy,
        &vsched_analyze::AnalyzeOpts::quick(),
    ) {
        Ok(report) => report,
        Err(e) => {
            return vec![Failure {
                kind: FailureKind::Error,
                detail: format!("lint pass: {e}"),
            }];
        }
    };
    let mut failures: Vec<Failure> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == vsched_analyze::Severity::Error)
        .map(|d| Failure {
            kind: FailureKind::Lint,
            detail: format!("[{}] {}: {}", d.lint, d.subject, d.message),
        })
        .collect();
    failures.extend(
        report
            .certificates
            .iter()
            .filter(|c| !c.passed)
            .map(|c| Failure {
                kind: FailureKind::Lint,
                detail: format!("certificate `{}` failed: {}", c.name, c.detail),
            }),
    );
    failures
}

/// Incremental-vs-full-rescan differential on the SAN engine: the same
/// case and seed run once with the dependency-indexed incremental
/// reevaluation core (the default) and once in full-rescan reference
/// mode. The two are bit-identical by construction — skipped activities
/// are provable no-ops and per-activity RNG streams make the event
/// sequence independent of who rescans — so *any* divergence in the
/// final marking, the run statistics, or any metric's bit pattern is a
/// bug in the dependency index or the dirty tracking.
fn incremental_check(config: &SystemConfig, case: &FuzzCase) -> Vec<Failure> {
    let ticks = case.warmup + case.horizon;
    let run = |full: bool| {
        let mut sys = SanSystem::new(config.clone(), case.policy.create(), case.seed)?;
        sys.set_full_rescan(full);
        sys.run(ticks)?;
        let m = sys.metrics();
        let bits: Vec<u64> = m
            .vcpu_availability
            .iter()
            .chain(&m.vcpu_utilization)
            .chain(&m.pcpu_utilization)
            .chain(&m.vcpu_spin)
            .map(|v| v.to_bits())
            .collect();
        Ok::<_, CoreError>((
            sys.simulator().marking().as_slice().to_vec(),
            sys.simulator().stats(),
            bits,
        ))
    };
    match (run(false), run(true)) {
        (Ok(inc), Ok(full)) => {
            let mut failures = Vec::new();
            if inc.0 != full.0 {
                failures.push(Failure {
                    kind: FailureKind::Incremental,
                    detail: "final marking differs between incremental and full-rescan modes"
                        .into(),
                });
            }
            if inc.1 != full.1 {
                failures.push(Failure {
                    kind: FailureKind::Incremental,
                    detail: format!(
                        "run statistics differ: incremental {:?} vs full-rescan {:?}",
                        inc.1, full.1
                    ),
                });
            }
            if inc.2 != full.2 {
                failures.push(Failure {
                    kind: FailureKind::Incremental,
                    detail: "metric bit patterns differ between incremental and full-rescan \
                             modes"
                        .into(),
                });
            }
            failures
        }
        (ra, rb) => [("incremental", ra), ("full-rescan", rb)]
            .into_iter()
            .filter_map(|(name, r)| {
                r.err().map(|e| Failure {
                    kind: FailureKind::Error,
                    detail: format!("{name} SAN run: {e}"),
                })
            })
            .collect(),
    }
}

/// Sequential-vs-sharded differential on the SAN engine: the same case
/// and seed run with the sequential event loop, with `shards = 4`
/// (conflict-free per-VM shards fired on real lanes with a deterministic
/// merge — the parallelism override forces helper threads regardless of
/// the host), and with forced auto mode (threshold lowered so auto
/// actually engages lanes on plans wide enough to batch). Bit-identity is
/// the sharded engine's contract — shard derivation is provably
/// conflict-free and the merge replays sequential order — so *any*
/// divergence in the final marking, the run statistics, or any metric's
/// bit pattern is a bug in the shard plan, the lane/feed protocol, or a
/// gate's declared footprint.
fn sharded_check(config: &SystemConfig, case: &FuzzCase) -> Vec<Failure> {
    let ticks = case.warmup + case.horizon;
    let run = |mode: ShardMode, avail: usize| {
        let mut sys = SanSystem::new(config.clone(), case.policy.create(), case.seed)?;
        sys.set_shard_mode(mode);
        sys.set_shard_available_override(Some(avail));
        sys.set_auto_shard_threshold(2);
        sys.run(ticks)?;
        let m = sys.metrics();
        let bits: Vec<u64> = m
            .vcpu_availability
            .iter()
            .chain(&m.vcpu_utilization)
            .chain(&m.pcpu_utilization)
            .chain(&m.vcpu_spin)
            .map(|v| v.to_bits())
            .collect();
        Ok::<_, CoreError>((
            sys.simulator().marking().as_slice().to_vec(),
            sys.simulator().stats(),
            bits,
        ))
    };
    match (
        run(ShardMode::Off, 1),
        run(ShardMode::Fixed(4), 4),
        run(ShardMode::Auto, 4),
    ) {
        (Ok(seq), Ok(sharded), Ok(auto)) => {
            let mut failures = Vec::new();
            for (label, other) in [("sharded", &sharded), ("auto", &auto)] {
                if seq.0 != other.0 {
                    failures.push(Failure {
                        kind: FailureKind::Sharded,
                        detail: format!(
                            "final marking differs between sequential and {label} modes"
                        ),
                    });
                }
                if seq.1 != other.1 {
                    failures.push(Failure {
                        kind: FailureKind::Sharded,
                        detail: format!(
                            "run statistics differ: sequential {:?} vs {label} {:?}",
                            seq.1, other.1
                        ),
                    });
                }
                if seq.2 != other.2 {
                    failures.push(Failure {
                        kind: FailureKind::Sharded,
                        detail: format!(
                            "metric bit patterns differ between sequential and {label} modes"
                        ),
                    });
                }
            }
            failures
        }
        (ra, rb, rc) => [("sequential", ra), ("sharded", rb), ("auto", rc)]
            .into_iter()
            .filter_map(|(name, r)| {
                r.err().map(|e| Failure {
                    kind: FailureKind::Error,
                    detail: format!("{name} SAN run: {e}"),
                })
            })
            .collect(),
    }
}

/// Episode-vs-monolithic differential through `vsched-env`: the case's
/// policy drives a gym-style episode *fed from observations* (masked to
/// its declared snapshot view) on each engine, and the episode's
/// cumulative metrics must match `run_replication` bit-for-bit — the
/// rendezvous relay consults the policy at exactly the same epochs with
/// views that differ only in fields the contract says it never reads, so
/// any divergence (in metrics, and therefore in markings or RNG draws)
/// is a bug in the environment layer. The recorded actions are then
/// replayed: the observation digest, reward stream, and terminal
/// fingerprint must reproduce exactly — the episode-replay determinism
/// claim.
fn env_check(config: &SystemConfig, case: &FuzzCase) -> Vec<Failure> {
    let mut failures = Vec::new();
    for (label, engine) in [("direct", Engine::Direct), ("san", Engine::San)] {
        let scenario = vsched_env::Scenario::new(config.clone())
            .engine(engine)
            .warmup(case.warmup)
            .horizon(case.horizon);
        let mut policy = case.policy.create();
        let fields = policy.snapshot_view();
        let mut env = vsched_env::Env::new(scenario.clone())
            .fields(fields)
            .agent_name("env-verdict");
        let run = match vsched_env::drive_policy(&mut env, policy.as_mut(), case.seed) {
            Ok(run) => run,
            Err(e) => {
                failures.push(Failure {
                    kind: FailureKind::Error,
                    detail: format!("[{label}] env episode: {e}"),
                });
                continue;
            }
        };
        match ExperimentBuilder::new(config.clone(), case.policy.clone())
            .engine(engine)
            .warmup(case.warmup)
            .horizon(case.horizon)
            .seed(case.seed)
            .run_replication(0)
        {
            Ok(mono) => {
                if mono != run.end.metrics {
                    failures.push(Failure {
                        kind: FailureKind::Env,
                        detail: format!(
                            "[{label}] episode metrics diverge from the monolithic run"
                        ),
                    });
                }
            }
            Err(e) => failures.push(Failure {
                kind: FailureKind::Error,
                detail: format!("[{label}] monolithic reference run: {e}"),
            }),
        }
        let mut replay_env = vsched_env::Env::new(scenario).fields(fields);
        match vsched_env::replay_actions(&mut replay_env, &run.actions, case.seed) {
            Ok(replay) => {
                if replay.obs_digest != run.obs_digest {
                    failures.push(Failure {
                        kind: FailureKind::Env,
                        detail: format!("[{label}] replayed observation stream diverges"),
                    });
                }
                if replay.rewards != run.rewards {
                    failures.push(Failure {
                        kind: FailureKind::Env,
                        detail: format!("[{label}] replayed reward stream diverges"),
                    });
                }
                if replay.end.fingerprint != run.end.fingerprint {
                    failures.push(Failure {
                        kind: FailureKind::Env,
                        detail: format!("[{label}] replayed terminal fingerprint diverges"),
                    });
                }
            }
            Err(e) => failures.push(Failure {
                kind: FailureKind::Error,
                detail: format!("[{label}] env replay: {e}"),
            }),
        }
    }
    failures
}

/// The trace verdict: replays the case's churn scenario through the
/// trace frontend on both engines. Empty for purely static cases. Four
/// claims are checked: the §11 invariant catalogue holds across
/// retire/re-admit boundaries (one checked segmented run per engine),
/// the engines agree on the traced metrics within the differential
/// tolerance (with the same triple-replication confirm pass as the
/// static differential — churn phases can be just as bimodal), parallel
/// replication is bit-identical (`jobs = 1` vs `jobs = 3`
/// fingerprints), and SAN sharding is bit-identical under dynamic
/// membership (sequential vs 4-shard fingerprints).
fn trace_check(case: &FuzzCase, opts: &OracleOpts) -> Vec<Failure> {
    if case.trace.is_empty() {
        return Vec::new();
    }
    let schedule = match case.trace_schedule() {
        Ok(s) => s,
        Err(e) => {
            return vec![Failure {
                kind: FailureKind::Error,
                detail: format!("trace compile: {e}"),
            }];
        }
    };
    let mut failures = traced_invariant_runs(case, &schedule);

    let experiment = |engine: Engine, reps: usize, jobs: usize, shards: usize| {
        TraceExperiment::new(schedule.clone(), case.policy.clone())
            .engine(engine)
            .warmup(case.warmup)
            .horizon(case.horizon)
            .seed(case.seed)
            .replications(reps)
            .jobs(jobs)
            .shards(shards)
            .run()
    };
    let (vcpus, pcpus) = (schedule.config().total_vcpus(), schedule.config().pcpus());
    let bridged = |r: &TraceReport| r.metrics_report(vcpus, pcpus, opts.ci_level);
    // Traced divergences carry the trace verdict's kind, whatever
    // comparison surfaced them.
    let as_trace = |fs: Vec<Failure>| {
        fs.into_iter().map(|f| Failure {
            kind: FailureKind::Trace,
            detail: f.detail,
        })
    };

    let direct = experiment(Engine::Direct, case.replications, 1, 0);
    let san = experiment(Engine::San, case.replications, 1, 0);
    match (&direct, &san) {
        (Ok(d), Ok(s)) => {
            match experiment(Engine::Direct, case.replications, 3, 0) {
                Ok(par) => {
                    if par.fingerprint != d.fingerprint {
                        failures.push(Failure {
                            kind: FailureKind::Trace,
                            detail: "jobs=1 and jobs=3 trace fingerprints differ — parallel \
                                     trace replication is not deterministic"
                                .into(),
                        });
                    }
                }
                Err(e) => failures.push(Failure {
                    kind: FailureKind::Error,
                    detail: format!("trace jobs=3 run: {e}"),
                }),
            }
            match experiment(Engine::San, case.replications, 1, 4) {
                Ok(sharded) => {
                    if sharded.fingerprint != s.fingerprint {
                        failures.push(Failure {
                            kind: FailureKind::Trace,
                            detail: "sequential and 4-shard SAN trace fingerprints differ \
                                     under churn"
                                .into(),
                        });
                    }
                }
                Err(e) => failures.push(Failure {
                    kind: FailureKind::Error,
                    detail: format!("trace sharded run: {e}"),
                }),
            }
            match (bridged(d), bridged(s)) {
                (Ok(dr), Ok(sr)) => {
                    let diffs = compare_reports("trace direct-vs-san", &dr, &sr, opts);
                    if !diffs.is_empty() {
                        let reps = case.replications * 3;
                        let confirm = (
                            experiment(Engine::Direct, reps, 1, 0),
                            experiment(Engine::San, reps, 1, 0),
                        );
                        match confirm {
                            (Ok(d3), Ok(s3)) => {
                                match (bridged(&d3), bridged(&s3)) {
                                    (Ok(dr3), Ok(sr3)) => failures.extend(as_trace(
                                        compare_reports("trace direct-vs-san", &dr3, &sr3, opts),
                                    )),
                                    _ => failures.extend(as_trace(diffs)),
                                }
                            }
                            _ => failures.extend(as_trace(diffs)),
                        }
                    }
                }
                (dr, sr) => {
                    for (name, r) in [("direct", dr), ("san", sr)] {
                        if let Err(e) = r {
                            failures.push(Failure {
                                kind: FailureKind::Error,
                                detail: format!("trace {name} report: {e}"),
                            });
                        }
                    }
                }
            }
        }
        _ => {
            for (name, r) in [("direct", &direct), ("san", &san)] {
                if let Err(e) = r {
                    failures.push(Failure {
                        kind: FailureKind::Error,
                        detail: format!("trace {name} engine: {e}"),
                    });
                }
            }
        }
    }
    failures
}

/// One invariant-checked segmented trace replay per engine: the same
/// engine-agnostic [`InvariantChecker`] that rides static runs observes
/// every tick of the churn replay — retired VCPUs must go (and stay)
/// INACTIVE holding no PCPU, transitions across re-admission must be
/// legal, and the policy contracts (gang atomicity, skew bound) must
/// survive membership changes.
fn traced_invariant_runs(case: &FuzzCase, schedule: &TraceSchedule) -> Vec<Failure> {
    let total = case.warmup + case.horizon;
    let mut failures = Vec::new();
    for engine in ["direct", "san"] {
        let ck = Rc::new(RefCell::new(InvariantChecker::for_policy(
            schedule.config(),
            &case.policy,
        )));
        match run_traced_checked(case, schedule, engine, total, Rc::clone(&ck)) {
            Ok(()) => debug_assert_eq!(ck.borrow().ticks_checked(), total),
            Err(CoreError::InvariantViolation {
                invariant,
                tick,
                reason,
            }) => failures.push(Failure {
                kind: FailureKind::Trace,
                detail: format!(
                    "[{engine}] invariant `{invariant}` at tick {tick} under churn: {reason}"
                ),
            }),
            Err(e) => failures.push(Failure {
                kind: FailureKind::Error,
                detail: format!("[{engine}] traced checked run: {e}"),
            }),
        }
    }
    failures
}

/// Replays the compiled schedule on one engine with an observer
/// attached, mirroring `TraceExperiment::run_replication`'s segment
/// loop (initial retirement/levels, then events at their boundaries).
fn run_traced_checked(
    case: &FuzzCase,
    schedule: &TraceSchedule,
    engine: &str,
    total: u64,
    ck: Rc<RefCell<InvariantChecker>>,
) -> Result<(), CoreError> {
    enum Exec {
        Direct(Box<DirectSim>),
        San(Box<SanSystem>),
    }
    impl Exec {
        fn run(&mut self, ticks: u64) -> Result<(), CoreError> {
            match self {
                Exec::Direct(sim) => sim.run(ticks),
                Exec::San(sys) => sys.run(ticks),
            }
        }
        fn set_admitted(&mut self, vm: usize, admitted: bool) {
            match self {
                Exec::Direct(sim) => sim.set_admitted(vm, admitted),
                Exec::San(sys) => sys.set_admitted(vm, admitted),
            }
        }
        fn set_load_level(&mut self, vm: usize, level: u32) {
            match self {
                Exec::Direct(sim) => sim.set_load_level(vm, level),
                Exec::San(sys) => sys.set_load_level(vm, level),
            }
        }
    }

    let config = schedule.config().clone();
    let mut exec = match engine {
        "direct" => {
            let mut sim = Box::new(DirectSim::new(config, case.policy.create(), case.seed));
            sim.attach_observer(Box::new(ck));
            Exec::Direct(sim)
        }
        _ => {
            let mut sys = SanSystem::new_dynamic(config, case.policy.create(), case.seed)?;
            sys.attach_observer(Box::new(ck));
            Exec::San(Box::new(sys))
        }
    };
    for (vm, &present) in schedule.initially_present().iter().enumerate() {
        if !present {
            exec.set_admitted(vm, false);
        }
    }
    for (vm, &level) in schedule.initial_levels().iter().enumerate() {
        if level != FULL_LEVEL {
            exec.set_load_level(vm, level);
        }
    }
    let events = schedule.events();
    let mut boundaries: Vec<u64> = events
        .iter()
        .map(|e| e.time)
        .filter(|&t| t < total)
        .collect();
    boundaries.sort_unstable();
    boundaries.dedup();
    let mut now = 0u64;
    let mut next = 0usize;
    for t in boundaries {
        exec.run(t - now)?;
        now = t;
        while next < events.len() && events[next].time == t {
            let e = events[next];
            match e.action {
                TraceAction::Admit => exec.set_admitted(e.vm, true),
                TraceAction::Retire => exec.set_admitted(e.vm, false),
                TraceAction::SetLoad(level) => exec.set_load_level(e.vm, level),
            }
            next += 1;
        }
    }
    exec.run(total - now)
}

/// One invariant-checked run per engine.
fn checked_runs(config: &SystemConfig, case: &FuzzCase) -> Vec<Failure> {
    let mut failures = Vec::new();
    let ticks = case.warmup + case.horizon;
    for engine in ["direct", "san"] {
        let ck = Rc::new(RefCell::new(InvariantChecker::for_policy(
            config,
            &case.policy,
        )));
        let result = match engine {
            "direct" => {
                let mut sim = DirectSim::new(config.clone(), case.policy.create(), case.seed);
                sim.attach_observer(Box::new(Rc::clone(&ck)));
                sim.run(ticks)
            }
            _ => match SanSystem::new(config.clone(), case.policy.create(), case.seed) {
                Ok(mut sys) => {
                    sys.attach_observer(Box::new(Rc::clone(&ck)));
                    sys.run(ticks)
                }
                Err(e) => Err(e),
            },
        };
        match result {
            Ok(()) => debug_assert_eq!(ck.borrow().ticks_checked(), ticks),
            Err(CoreError::InvariantViolation {
                invariant,
                tick,
                reason,
            }) => failures.push(Failure {
                kind: FailureKind::Invariant,
                detail: format!("[{engine}] `{invariant}` at tick {tick}: {reason}"),
            }),
            Err(e) => failures.push(Failure {
                kind: FailureKind::Error,
                detail: format!("[{engine}] checked run: {e}"),
            }),
        }
    }
    failures
}

fn report(
    config: &SystemConfig,
    case: &FuzzCase,
    engine: Engine,
    jobs: usize,
    level: f64,
) -> Result<MetricsReport, CoreError> {
    report_with_reps(config, case, engine, jobs, level, case.replications)
}

fn report_with_reps(
    config: &SystemConfig,
    case: &FuzzCase,
    engine: Engine,
    jobs: usize,
    level: f64,
    replications: usize,
) -> Result<MetricsReport, CoreError> {
    ExperimentBuilder::new(config.clone(), case.policy.clone())
        .engine(engine)
        .warmup(case.warmup)
        .horizon(case.horizon)
        .seed(case.seed)
        .stopping_rule(vsched_stats::StoppingRule::new(level, 0.05))
        .replications_exact(replications)
        .parallel(true)
        .jobs(jobs)
        .run()
}

/// Column-by-column differential comparison of two reports.
#[must_use]
pub fn compare_reports(
    label: &str,
    a: &MetricsReport,
    b: &MetricsReport,
    opts: &OracleOpts,
) -> Vec<Failure> {
    let mut failures = Vec::new();
    let groups: [(
        &str,
        &[vsched_stats::ConfidenceInterval],
        &[vsched_stats::ConfidenceInterval],
    ); 4] = [
        (
            "vcpu_availability",
            &a.vcpu_availability,
            &b.vcpu_availability,
        ),
        ("vcpu_utilization", &a.vcpu_utilization, &b.vcpu_utilization),
        ("pcpu_utilization", &a.pcpu_utilization, &b.pcpu_utilization),
        ("vcpu_spin", &a.vcpu_spin, &b.vcpu_spin),
    ];
    for (metric, ca, cb) in groups {
        if ca.len() != cb.len() {
            failures.push(Failure {
                kind: FailureKind::Differential,
                detail: format!("{label}: {metric} arity {} vs {}", ca.len(), cb.len()),
            });
            continue;
        }
        for (i, (ia, ib)) in ca.iter().zip(cb).enumerate() {
            let delta = (ia.mean - ib.mean).abs();
            let tol = opts.tol_floor + opts.ci_factor * (ia.half_width + ib.half_width);
            if delta > tol {
                failures.push(Failure {
                    kind: FailureKind::Differential,
                    detail: format!(
                        "{label}: {metric}[{i}] {:.4} vs {:.4} (Δ {delta:.4} > tol {tol:.4})",
                        ia.mean, ib.mean
                    ),
                });
            }
        }
    }
    failures
}

/// VM-rotation invariance: per-VM availability follows the VM's *spec*,
/// not its index. This is a *fairness* property, so it is only asserted
/// for the policies that guarantee order-independent long-run shares —
/// round-robin, credit, and BVT. The rest are legitimately
/// order-sensitive: FCFS breaks ties at the saturated start by arrival
/// order (VCPU index) and without preemption the bias persists by
/// design; SEDF and balance break deadline/load ties by index; strict
/// and relaxed co-scheduling suffer order-dependent gang fragmentation
/// (the paper's §IV starvation observation) where which gang fits the
/// idle PCPUs first decides who runs at all. Fully deterministic cases
/// (deterministic load plus `sync_every`) are also exempt: zero-variance
/// phase-locking makes even a fair policy's index tie-breaking visible
/// beyond statistical tolerance.
fn rotation_check(
    config: &SystemConfig,
    case: &FuzzCase,
    base: &MetricsReport,
    opts: &OracleOpts,
) -> Vec<Failure> {
    let order_fair = matches!(
        case.policy,
        PolicyKind::RoundRobin | PolicyKind::Credit { .. } | PolicyKind::Bvt { .. }
    );
    if case.vms.len() < 2 || !order_fair {
        return Vec::new();
    }
    let deterministic =
        matches!(case.load, LoadSpec::Deterministic { .. }) && case.sync.every.is_some();
    if deterministic {
        return Vec::new();
    }
    let mut rotated_case = case.clone();
    rotated_case.vms.rotate_left(1);
    let rotated_config = match rotated_case.system_config() {
        Ok(c) => c,
        Err(e) => {
            return vec![Failure {
                kind: FailureKind::Error,
                detail: format!("rotated config: {e}"),
            }];
        }
    };
    let rotated = match report(
        &rotated_config,
        &rotated_case,
        Engine::Direct,
        1,
        opts.ci_level,
    ) {
        Ok(r) => r,
        Err(e) => {
            return vec![Failure {
                kind: FailureKind::Error,
                detail: format!("rotated run: {e}"),
            }];
        }
    };
    // Original VM v maps to rotated VM (v + n - 1) % n. Even a fair
    // policy hands out whole timeslices, and which VM index gets the
    // final partial slice of the observation window is rotation-
    // dependent — an O(timeslice / horizon) boundary effect the
    // tolerance must carry explicitly (the envelope's largest slices are
    // a visible 30/800 of the default window).
    let slice_frac = case.timeslice as f64 / case.horizon as f64;
    let n = case.vms.len();
    let mut failures = Vec::new();
    for vm in 0..n {
        let rot_vm = (vm + n - 1) % n;
        let (mean_a, hw_a) = vm_availability(base, config, vm);
        let (mean_b, hw_b) = vm_availability(&rotated, &rotated_config, rot_vm);
        let delta = (mean_a - mean_b).abs();
        let tol = opts.tol_floor + opts.ci_factor * (hw_a + hw_b) + slice_frac;
        if delta > tol {
            failures.push(Failure {
                kind: FailureKind::Metamorphic,
                detail: format!(
                    "rotation: VM {} availability {mean_a:.4} vs {mean_b:.4} at rotated index \
                     {rot_vm} (Δ {delta:.4} > tol {tol:.4})",
                    vm + 1
                ),
            });
        }
    }
    failures
}

/// Availability-weighted mean of a per-VCPU per-active-time ratio:
/// Σ availᵢ·valueᵢ / Σ availᵢ. Continuous across starvation boundaries,
/// unlike the unweighted mean (see [`scaling_check`]).
fn weighted_by_availability(report: &MetricsReport, values: &[f64]) -> f64 {
    let avail = report.vcpu_availability_means();
    let den: f64 = avail.iter().sum();
    if den == 0.0 {
        return 0.0;
    }
    avail.iter().zip(values).map(|(a, v)| a * v).sum::<f64>() / den
}

/// Mean availability of one VM (mean over its VCPUs) plus the mean
/// half-width of those VCPUs' intervals.
fn vm_availability(report: &MetricsReport, config: &SystemConfig, vm: usize) -> (f64, f64) {
    let globals = config.vm_vcpus(vm);
    let mean = globals
        .iter()
        .map(|&g| report.vcpu_availability[g].mean)
        .sum::<f64>()
        / globals.len() as f64;
    let hw = globals
        .iter()
        .map(|&g| report.vcpu_availability[g].half_width)
        .sum::<f64>()
        / globals.len() as f64;
    (mean, hw)
}

/// Time-unit co-scaling on a derived deterministic variant: fix the load
/// to its central value, a deterministic sync pattern, and the barrier
/// mechanism, then double every time dimension (load, timeslice, warmup,
/// horizon, and the policy's own time parameters). All reported
/// *fractions* must agree within [`OracleOpts::scaling_tol`] — they are
/// dimensionless in the tick unit up to O(timeslice / horizon) boundary
/// effects.
///
/// The variant always uses barriers because spinlock contention does not
/// co-scale: *which* VCPU holds the lock at the instant of a deschedule
/// is a knife-edge phase condition, and the one-tick lock-handoff and
/// unblock latencies stay one tick while everything else doubles, so the
/// whole contention pattern can reorganize (observed spin fractions
/// drifting 2–3× on SEDF gangs). Spin correctness is covered by the
/// differential verdict instead, where both engines face the same
/// phases.
fn scaling_check(case: &FuzzCase, opts: &OracleOpts) -> Vec<Failure> {
    let mut base = case.clone();
    let central = match case.load {
        LoadSpec::Deterministic { value } => value,
        LoadSpec::Uniform { low, high } => (low + high) / 2.0,
        LoadSpec::Exponential { mean } => mean,
    };
    base.load = LoadSpec::Deterministic {
        value: central.round().max(1.0),
    };
    base.sync.every = Some(4);
    base.sync.probability = 0.0;
    base.sync.mechanism = vsched_core::SyncMechanism::Barrier;

    let mut scaled = base.clone();
    scaled.load = LoadSpec::Deterministic {
        value: 2.0 * central.round().max(1.0),
    };
    scaled.timeslice *= 2;
    scaled.warmup *= 2;
    scaled.horizon *= 2;
    scaled.policy = scale_policy(&base.policy);

    let run = |c: &FuzzCase| {
        c.system_config()
            .and_then(|cfg| report(&cfg, c, Engine::Direct, 1, opts.ci_level))
    };
    let (a, b) = match (run(&base), run(&scaled)) {
        (Ok(a), Ok(b)) => (a, b),
        (ra, rb) => {
            return [("base", ra), ("scaled", rb)]
                .into_iter()
                .filter_map(|(name, r)| {
                    r.err().map(|e| Failure {
                        kind: FailureKind::Error,
                        detail: format!("co-scaling {name} run: {e}"),
                    })
                })
                .collect();
        }
    };
    // Utilization and spin are ratios *per active time*, so they are
    // averaged weighted by availability (total useful time over total
    // active time). The unweighted mean is discontinuous at a starvation
    // boundary: a VCPU that a weight-based policy starves outright
    // reports utilization 0 by convention, while the same VCPU getting a
    // 1% sliver in the co-scaled variant reports utilization 1 — an O(1)
    // jump in the average from an O(timeslice/horizon) behavior change.
    let pairs = [
        (
            "avg_vcpu_availability",
            a.avg_vcpu_availability(),
            b.avg_vcpu_availability(),
        ),
        (
            "availability-weighted vcpu_utilization",
            weighted_by_availability(&a, &a.vcpu_utilization_means()),
            weighted_by_availability(&b, &b.vcpu_utilization_means()),
        ),
        (
            "avg_pcpu_utilization",
            a.avg_pcpu_utilization(),
            b.avg_pcpu_utilization(),
        ),
        (
            "availability-weighted vcpu_spin",
            weighted_by_availability(&a, &a.vcpu_spin_means()),
            weighted_by_availability(&b, &b.vcpu_spin_means()),
        ),
    ];
    // Like the rotation check, boundary effects are one partial slice
    // per window: carry the O(timeslice / horizon) term explicitly so a
    // timeslice-30 case is not judged by a timeslice-2 yardstick.
    let tol = opts.scaling_tol + base.timeslice as f64 / base.horizon as f64;
    pairs
        .into_iter()
        .filter(|(_, x, y)| (x - y).abs() > tol)
        .map(|(metric, x, y)| Failure {
            kind: FailureKind::Metamorphic,
            detail: format!(
                "co-scaling: {metric} {x:.4} vs {y:.4} after doubling all time units \
                 (Δ {:.4} > tol {tol:.4})",
                (x - y).abs(),
            ),
        })
        .collect()
}

/// Doubles a policy's time-dimension parameters.
fn scale_policy(policy: &PolicyKind) -> PolicyKind {
    match *policy {
        PolicyKind::RelaxedCo {
            skew_threshold,
            skew_resume,
        } => PolicyKind::RelaxedCo {
            skew_threshold: skew_threshold * 2,
            skew_resume: skew_resume * 2,
        },
        PolicyKind::Credit { refill_period } => PolicyKind::Credit {
            refill_period: refill_period * 2,
        },
        PolicyKind::Sedf { period } => PolicyKind::Sedf { period: period * 2 },
        PolicyKind::Bvt { max_lag } => PolicyKind::Bvt {
            max_lag: max_lag * 2,
        },
        ref p => p.clone(),
    }
}

/// FNV-1a over the bit patterns of every interval in the given reports.
fn digest_of(reports: &[&MetricsReport]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: f64| {
        for byte in x.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for r in reports {
        for group in [
            &r.vcpu_availability,
            &r.vcpu_utilization,
            &r.pcpu_utilization,
            &r.vcpu_spin,
        ] {
            for ci in group.iter() {
                mix(ci.mean);
                mix(ci.half_width);
            }
        }
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::CaseGen;

    #[test]
    fn a_generated_case_passes_the_full_oracle() {
        let case = CaseGen::new(11).case(0);
        let outcome = run_case(&case, &OracleOpts::default());
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert_ne!(outcome.digest, "-");
    }

    #[test]
    fn replaying_a_case_reproduces_the_digest() {
        let case = CaseGen::new(5).case(2);
        let opts = OracleOpts {
            check_invariants: false,
            check_parallel_determinism: false,
            check_metamorphic: false,
            ..OracleOpts::default()
        };
        let a = run_case(&case, &opts);
        let b = run_case(&case, &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_case_is_an_error_outcome() {
        let mut case = CaseGen::new(5).case(0);
        case.pcpus = 0;
        let outcome = run_case(&case, &OracleOpts::default());
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].kind, FailureKind::Error);
    }

    #[test]
    fn trace_verdict_passes_on_generated_churn_cases() {
        let g = CaseGen::new(11);
        let case = (0..50)
            .map(|i| g.case(i))
            .find(|c| !c.trace.is_empty())
            .expect("roughly half the generated cases carry a trace");
        let failures = trace_check(&case, &OracleOpts::default());
        assert!(failures.is_empty(), "failures: {failures:?}");
    }

    #[test]
    fn trace_verdict_skips_static_cases_and_types_bad_traces() {
        let mut case = CaseGen::new(11).case(0);
        case.trace.clear();
        assert!(trace_check(&case, &OracleOpts::default()).is_empty());

        // A hand-edited reproducer with an impossible sequence surfaces
        // as a typed Error failure, not a panic.
        case.trace = vec![crate::case::TraceEventCase {
            at: 100,
            vm: 0,
            op: crate::case::TraceOpCase::Arrive,
        }];
        let failures = trace_check(&case, &OracleOpts::default());
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].kind, FailureKind::Error);
        assert!(failures[0].detail.contains("trace compile"), "{failures:?}");
    }

    #[test]
    fn compare_reports_flags_divergent_columns() {
        let case = CaseGen::new(3).case(1);
        let config = case.system_config().unwrap();
        let a = super::report(&config, &case, Engine::Direct, 1, 0.95).unwrap();
        let mut b = a.clone();
        b.vcpu_availability[0].mean += 0.5;
        let failures = compare_reports("t", &a, &b, &OracleOpts::default());
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].kind, FailureKind::Differential);
        assert!(failures[0].detail.contains("vcpu_availability[0]"));
        assert!(compare_reports("t", &a, &a, &OracleOpts::default()).is_empty());
    }
}
