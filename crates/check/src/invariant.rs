//! The runtime invariant checker: DESIGN.md §11's catalogue as a
//! [`TickObserver`].
//!
//! The checker is engine-agnostic — it sees only the end-of-tick
//! snapshots both engines emit, so the same instance validates a
//! [`vsched_core::direct::DirectSim`] run and a
//! [`vsched_core::san_model::SanSystem`] run identically. Every violation
//! surfaces as [`CoreError::InvariantViolation`] naming the invariant,
//! the tick, and a human-readable reason, which the engine propagates out
//! of `run()`.
//!
//! Two invariants are *policy-contracts* rather than engine-contracts and
//! are therefore opt-in: SCS gang atomicity
//! ([`InvariantChecker::expect_gang_atomicity`]) and the RCS skew bound
//! ([`InvariantChecker::expect_skew_bound`]).
//! [`InvariantChecker::for_policy`] enables them automatically for
//! [`PolicyKind::StrictCo`] and [`PolicyKind::RelaxedCo`].

use vsched_core::observe::TickObserver;
use vsched_core::types::{PcpuView, VcpuStatus, VcpuView};
use vsched_core::{CoreError, PolicyKind, SystemConfig};

/// Slack added to the RCS skew threshold when checking the bound.
///
/// RCS detects a lead of `skew_threshold` at the *start* of a tick
/// (phase 4) and co-stops the leaders, but the tick in which detection
/// happens has already granted the leaders one more tick of progress —
/// the true worst case is `skew_threshold + 1`, which this slack encodes
/// exactly. A policy whose lead ever reaches `threshold + 2` is broken.
pub const SKEW_SLACK: u64 = 1;

/// Per-VCPU activity tallies for the accounting-closure invariant.
#[derive(Debug, Clone, Copy, Default)]
struct Tally {
    busy: u64,
    ready: u64,
    inactive: u64,
}

/// Runtime invariant checker for both simulation engines.
///
/// Attach with `sim.attach_observer(Box::new(Rc::new(RefCell::new(ck))))`
/// (keeping a clone of the `Rc` to inspect [`InvariantChecker::ticks_checked`]
/// afterwards), or box it directly if post-run inspection is not needed.
#[derive(Debug)]
pub struct InvariantChecker {
    num_pcpus: usize,
    num_vcpus: usize,
    /// Global VCPU indices of every multi-VCPU VM (singletons are
    /// trivially atomic and trivially skew-free).
    gangs: Vec<Vec<usize>>,
    /// The previous end-of-tick snapshot; `None` before the first
    /// observed tick (the checker tolerates mid-run attachment).
    prev: Option<(u64, Vec<VcpuView>)>,
    ticks_checked: u64,
    tallies: Vec<Tally>,
    /// Cumulative per-VCPU progress mirrored from the policies'
    /// phase-4 accounting rule (see `advance_progress`).
    progress: Vec<u64>,
    check_gang: bool,
    skew_bound: Option<u64>,
}

impl InvariantChecker {
    /// Builds a checker for `config` with only the engine-contract
    /// invariants enabled (clock, assignment, transitions, accounting).
    #[must_use]
    pub fn new(config: &SystemConfig) -> Self {
        let gangs = (0..config.vms().len())
            .map(|vm| config.vm_vcpus(vm))
            .filter(|g| g.len() > 1)
            .collect();
        InvariantChecker {
            num_pcpus: config.pcpus(),
            num_vcpus: config.total_vcpus(),
            gangs,
            prev: None,
            ticks_checked: 0,
            tallies: vec![Tally::default(); config.total_vcpus()],
            progress: vec![0; config.total_vcpus()],
            check_gang: false,
            skew_bound: None,
        }
    }

    /// Builds a checker with the policy-contract invariants matching
    /// `policy`: gang atomicity for [`PolicyKind::StrictCo`], the skew
    /// bound for [`PolicyKind::RelaxedCo`].
    #[must_use]
    pub fn for_policy(config: &SystemConfig, policy: &PolicyKind) -> Self {
        let ck = InvariantChecker::new(config);
        match *policy {
            PolicyKind::StrictCo => ck.expect_gang_atomicity(),
            PolicyKind::RelaxedCo { skew_threshold, .. } => ck.expect_skew_bound(skew_threshold),
            _ => ck,
        }
    }

    /// Additionally require that each multi-VCPU VM's siblings are all
    /// active or all inactive at every end of tick (the SCS contract).
    #[must_use]
    pub fn expect_gang_atomicity(mut self) -> Self {
        self.check_gang = true;
        self
    }

    /// Additionally require that within each multi-VCPU VM, no sibling's
    /// cumulative progress leads the slowest sibling by more than
    /// `threshold + `[`SKEW_SLACK`] (the RCS contract).
    #[must_use]
    pub fn expect_skew_bound(mut self, threshold: u64) -> Self {
        self.skew_bound = Some(threshold);
        self
    }

    /// Number of ticks validated so far.
    #[must_use]
    pub fn ticks_checked(&self) -> u64 {
        self.ticks_checked
    }

    /// The checker's cumulative per-VCPU progress ledger (global VCPU
    /// order) — the auxiliary state the exhaustive verifier threads from
    /// edge to edge (see [`InvariantChecker::resume_at`]).
    #[must_use]
    pub fn progress(&self) -> &[u64] {
        &self.progress
    }

    /// Rewinds the checker to the middle of a run: the next
    /// [`TickObserver::on_tick`] call is validated as if `tick` had just
    /// been observed with snapshot `views` and cumulative progress
    /// `progress`.
    ///
    /// This is the exhaustive verifier's entry point: the state graph is
    /// explored out of order, so each edge `src → dst` is checked by a
    /// fresh checker resumed at `src` and stepped once to `dst`. Per-VCPU
    /// status tallies are not part of the verifier's state vector, so the
    /// accounting-closure invariant degrades gracefully here: the total is
    /// seeded to `tick` (as if every past tick were INACTIVE), which keeps
    /// the closure `busy + ready + inactive = ticks checked` exact while
    /// forgetting the per-status split.
    ///
    /// # Panics
    ///
    /// Panics if `progress` does not have one entry per VCPU.
    pub fn resume_at(&mut self, tick: u64, views: Vec<VcpuView>, progress: Vec<u64>) {
        assert_eq!(
            progress.len(),
            self.num_vcpus,
            "resume_at progress vector must have one entry per VCPU"
        );
        self.prev = Some((tick, views));
        self.ticks_checked = tick;
        self.tallies = vec![
            Tally {
                busy: 0,
                ready: 0,
                inactive: tick,
            };
            self.num_vcpus
        ];
        self.progress = progress;
    }

    /// Largest cumulative-progress lead currently observed within any
    /// gang (0 when every gang is balanced or there are no gangs).
    #[must_use]
    pub fn max_gang_skew(&self) -> u64 {
        self.gangs
            .iter()
            .map(|gang| {
                let min = gang.iter().map(|&g| self.progress[g]).min().unwrap_or(0);
                let max = gang.iter().map(|&g| self.progress[g]).max().unwrap_or(0);
                max - min
            })
            .max()
            .unwrap_or(0)
    }

    fn violation(invariant: &str, tick: u64, reason: String) -> CoreError {
        CoreError::InvariantViolation {
            invariant: invariant.to_string(),
            tick,
            reason,
        }
    }

    /// Mirrors the co-scheduling policies' phase-4 progress accounting:
    /// a VCPU makes one tick of progress in tick `t` iff it entered `t`
    /// active with at least 2 ticks of timeslice left (a VCPU that
    /// entered with 1 was expired by phase 3 before running). This must
    /// be computed from the *previous* end-of-tick snapshot — counting
    /// active VCPUs at the end of tick `t` would overcount each stint by
    /// one and unboundedly diverge from the policy's own ledger.
    fn advance_progress(&mut self, prev: &[VcpuView]) {
        for (i, v) in prev.iter().enumerate() {
            if v.status.is_active() && v.timeslice_remaining >= 2 {
                self.progress[i] += 1;
            }
        }
    }

    fn check_clock(&self, tick: u64) -> Result<(), CoreError> {
        if let Some((prev_tick, _)) = &self.prev {
            if tick != prev_tick + 1 {
                return Err(Self::violation(
                    "clock-monotonicity",
                    tick,
                    format!(
                        "observed tick {tick} after tick {prev_tick}; expected {}",
                        prev_tick + 1
                    ),
                ));
            }
        }
        Ok(())
    }

    fn check_assignment(
        &self,
        tick: u64,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
    ) -> Result<(), CoreError> {
        // Each PCPU's back-pointer must name an active VCPU that points
        // back at it; each active VCPU must own exactly one PCPU.
        let mut pcpu_of = vec![None; self.num_vcpus];
        for p in pcpus {
            if let Some(vid) = p.assigned {
                if vid.global >= self.num_vcpus {
                    return Err(Self::violation(
                        "exclusive-assignment",
                        tick,
                        format!(
                            "PCPU {} assigned out-of-range VCPU index {}",
                            p.id, vid.global
                        ),
                    ));
                }
                if let Some(other) = pcpu_of[vid.global] {
                    return Err(Self::violation(
                        "exclusive-assignment",
                        tick,
                        format!("{vid} assigned to both PCPU {other} and PCPU {}", p.id),
                    ));
                }
                pcpu_of[vid.global] = Some(p.id);
            }
        }
        for v in vcpus {
            match (v.status.is_active(), v.assigned_pcpu) {
                (true, Some(p)) => {
                    if p >= self.num_pcpus {
                        return Err(Self::violation(
                            "exclusive-assignment",
                            tick,
                            format!("{} claims out-of-range PCPU {p}", v.id),
                        ));
                    }
                    if pcpu_of[v.id.global] != Some(p) {
                        return Err(Self::violation(
                            "exclusive-assignment",
                            tick,
                            format!(
                                "{} claims PCPU {p} but that PCPU's back-pointer is {:?}",
                                v.id, pcpu_of[v.id.global]
                            ),
                        ));
                    }
                }
                (true, None) => {
                    return Err(Self::violation(
                        "exclusive-assignment",
                        tick,
                        format!("{} is {} but holds no PCPU", v.id, v.status),
                    ));
                }
                (false, Some(p)) => {
                    return Err(Self::violation(
                        "exclusive-assignment",
                        tick,
                        format!("{} is INACTIVE but still holds PCPU {p}", v.id),
                    ));
                }
                (false, None) => {
                    if pcpu_of[v.id.global].is_some() {
                        return Err(Self::violation(
                            "exclusive-assignment",
                            tick,
                            format!(
                                "{} is INACTIVE but PCPU {} still points at it",
                                v.id,
                                pcpu_of[v.id.global].unwrap()
                            ),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn check_transitions(&self, tick: u64, vcpus: &[VcpuView]) -> Result<(), CoreError> {
        for v in vcpus {
            // Local (single-snapshot) legality.
            if v.status.is_active() && v.timeslice_remaining == 0 {
                return Err(Self::violation(
                    "transition-legality",
                    tick,
                    format!("{} is {} with an exhausted timeslice", v.id, v.status),
                ));
            }
            if !v.status.is_active() && v.timeslice_remaining != 0 {
                return Err(Self::violation(
                    "transition-legality",
                    tick,
                    format!(
                        "{} is INACTIVE but retains {} ticks of timeslice",
                        v.id, v.timeslice_remaining
                    ),
                ));
            }
            if v.status == VcpuStatus::Busy && v.remaining_load == 0 {
                return Err(Self::violation(
                    "transition-legality",
                    tick,
                    format!("{} is BUSY with no remaining load", v.id),
                ));
            }
        }
        // Cross-tick legality: a VCPU continuing the same stint (same
        // Last_Scheduled_In, active in both snapshots) must stay on its
        // PCPU and burn exactly one tick of timeslice.
        if let Some((_, prev)) = &self.prev {
            for (p, n) in prev.iter().zip(vcpus) {
                let same_stint = p.status.is_active()
                    && n.status.is_active()
                    && p.last_scheduled_in == n.last_scheduled_in;
                if !same_stint {
                    continue;
                }
                if p.assigned_pcpu != n.assigned_pcpu {
                    return Err(Self::violation(
                        "transition-legality",
                        tick,
                        format!(
                            "{} migrated PCPU {:?} -> {:?} mid-stint",
                            n.id, p.assigned_pcpu, n.assigned_pcpu
                        ),
                    ));
                }
                if p.timeslice_remaining != n.timeslice_remaining + 1 {
                    return Err(Self::violation(
                        "transition-legality",
                        tick,
                        format!(
                            "{} timeslice went {} -> {} in one tick of the same stint",
                            n.id, p.timeslice_remaining, n.timeslice_remaining
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_gang_atomicity(&self, tick: u64, vcpus: &[VcpuView]) -> Result<(), CoreError> {
        for gang in &self.gangs {
            let active = gang
                .iter()
                .filter(|&&g| vcpus[g].status.is_active())
                .count();
            if active != 0 && active != gang.len() {
                let vm = vcpus[gang[0]].id.vm;
                return Err(Self::violation(
                    "gang-atomicity",
                    tick,
                    format!(
                        "VM {} has {active} of {} sibling VCPUs active — SCS gangs run all-or-nothing",
                        vm + 1,
                        gang.len()
                    ),
                ));
            }
        }
        Ok(())
    }

    fn check_skew(&self, tick: u64) -> Result<(), CoreError> {
        let Some(threshold) = self.skew_bound else {
            return Ok(());
        };
        let bound = threshold + SKEW_SLACK;
        for gang in &self.gangs {
            let min = gang.iter().map(|&g| self.progress[g]).min().unwrap_or(0);
            for &g in gang {
                let lead = self.progress[g] - min;
                if lead > bound {
                    return Err(Self::violation(
                        "skew-bound",
                        tick,
                        format!(
                            "VCPU global {g} leads its slowest sibling by {lead} ticks \
                             (threshold {threshold} + slack {SKEW_SLACK})",
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_accounting(&mut self, tick: u64, vcpus: &[VcpuView]) -> Result<(), CoreError> {
        for (i, v) in vcpus.iter().enumerate() {
            let t = &mut self.tallies[i];
            match v.status {
                VcpuStatus::Busy => t.busy += 1,
                VcpuStatus::Ready => t.ready += 1,
                VcpuStatus::Inactive => t.inactive += 1,
            }
            let total = t.busy + t.ready + t.inactive;
            if total != self.ticks_checked + 1 {
                return Err(Self::violation(
                    "accounting-closure",
                    tick,
                    format!(
                        "{} tallies busy+ready+inactive = {total} after {} checked ticks",
                        v.id,
                        self.ticks_checked + 1
                    ),
                ));
            }
        }
        Ok(())
    }
}

impl TickObserver for InvariantChecker {
    fn on_tick(
        &mut self,
        tick: u64,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
    ) -> Result<(), CoreError> {
        if vcpus.len() != self.num_vcpus || pcpus.len() != self.num_pcpus {
            return Err(Self::violation(
                "snapshot-shape",
                tick,
                format!(
                    "snapshot has {} VCPUs / {} PCPUs; config has {} / {}",
                    vcpus.len(),
                    pcpus.len(),
                    self.num_vcpus,
                    self.num_pcpus
                ),
            ));
        }
        self.check_clock(tick)?;
        if let Some((_, prev)) = self.prev.take() {
            // take() then restore: advance_progress needs &mut self.
            self.advance_progress(&prev);
            self.prev = Some((tick - 1, prev));
        }
        self.check_skew(tick)?;
        self.check_assignment(tick, vcpus, pcpus)?;
        self.check_transitions(tick, vcpus)?;
        if self.check_gang {
            self.check_gang_atomicity(tick, vcpus)?;
        }
        self.check_accounting(tick, vcpus)?;
        self.ticks_checked += 1;
        self.prev = Some((tick, vcpus.to_vec()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use vsched_core::direct::DirectSim;
    use vsched_core::san_model::SanSystem;

    fn two_vm_config() -> SystemConfig {
        SystemConfig::builder()
            .pcpus(2)
            .vm(2)
            .vm(1)
            .timeslice(5)
            .sync_ratio(1, 4)
            .build()
            .unwrap()
    }

    fn run_checked_direct(policy: PolicyKind, ticks: u64) -> Rc<RefCell<InvariantChecker>> {
        let config = two_vm_config();
        let ck = Rc::new(RefCell::new(InvariantChecker::for_policy(&config, &policy)));
        let mut sim = DirectSim::new(config, policy.create(), 11);
        sim.attach_observer(Box::new(Rc::clone(&ck)));
        sim.run(ticks).unwrap();
        ck
    }

    #[test]
    fn clean_policies_pass_on_direct_engine() {
        for policy in [
            PolicyKind::RoundRobin,
            PolicyKind::StrictCo,
            PolicyKind::relaxed_co_default(),
            PolicyKind::Balance,
            PolicyKind::credit_default(),
            PolicyKind::sedf_default(),
            PolicyKind::bvt_default(),
            PolicyKind::Fcfs,
        ] {
            let ck = run_checked_direct(policy, 300);
            assert_eq!(ck.borrow().ticks_checked(), 300);
        }
    }

    #[test]
    fn clean_policies_pass_on_san_engine() {
        for policy in [PolicyKind::RoundRobin, PolicyKind::StrictCo] {
            let config = two_vm_config();
            let ck = Rc::new(RefCell::new(InvariantChecker::for_policy(&config, &policy)));
            let mut sys = SanSystem::new(config, policy.create(), 11).unwrap();
            sys.attach_observer(Box::new(Rc::clone(&ck)));
            sys.run(200).unwrap();
            assert_eq!(ck.borrow().ticks_checked(), 200);
        }
    }

    #[test]
    fn rcs_skew_stays_within_threshold_plus_slack() {
        let ck = run_checked_direct(PolicyKind::relaxed_co_default(), 500);
        assert!(ck.borrow().max_gang_skew() <= 5 + SKEW_SLACK);
    }

    #[test]
    fn rrs_violates_gang_atomicity() {
        // RRS schedules siblings independently; demanding SCS's contract
        // from it must trip the checker (and proves the check has teeth).
        let config = two_vm_config();
        let ck = InvariantChecker::new(&config).expect_gang_atomicity();
        let mut sim = DirectSim::new(config, PolicyKind::RoundRobin.create(), 11);
        sim.attach_observer(Box::new(ck));
        let err = sim.run(300).unwrap_err();
        match err {
            CoreError::InvariantViolation { invariant, .. } => {
                assert_eq!(invariant, "gang-atomicity");
            }
            other => panic!("expected gang-atomicity violation, got {other}"),
        }
    }

    #[test]
    fn rrs_violates_a_tight_skew_bound() {
        // With 2 PCPUs and 3 VCPUs, RRS lets one sibling of the 2-VCPU VM
        // run while the other waits, so cumulative skew grows without
        // bound; a tight RCS-style bound must fire.
        let config = two_vm_config();
        let ck = InvariantChecker::new(&config).expect_skew_bound(2);
        let mut sim = DirectSim::new(config, PolicyKind::RoundRobin.create(), 11);
        sim.attach_observer(Box::new(ck));
        let err = sim.run(500).unwrap_err();
        match err {
            CoreError::InvariantViolation { invariant, .. } => {
                assert_eq!(invariant, "skew-bound");
            }
            other => panic!("expected skew-bound violation, got {other}"),
        }
    }

    #[test]
    fn resumed_checker_tracks_a_sequential_run_edge_by_edge() {
        // Record a real run's snapshots, check them sequentially, then
        // re-check every edge with a fresh checker resumed at the edge's
        // source — the verifier's out-of-order pattern. Verdicts and the
        // progress ledger must match the sequential reference exactly.
        struct Recorder {
            snaps: Vec<(u64, Vec<VcpuView>, Vec<PcpuView>)>,
        }
        impl TickObserver for Recorder {
            fn on_tick(
                &mut self,
                tick: u64,
                vcpus: &[VcpuView],
                pcpus: &[PcpuView],
            ) -> Result<(), CoreError> {
                self.snaps.push((tick, vcpus.to_vec(), pcpus.to_vec()));
                Ok(())
            }
        }
        let policy = PolicyKind::relaxed_co_default();
        let config = two_vm_config();
        let rec = Rc::new(RefCell::new(Recorder { snaps: Vec::new() }));
        let mut sim = DirectSim::new(config.clone(), policy.create(), 11);
        sim.attach_observer(Box::new(Rc::clone(&rec)));
        sim.run(60).unwrap();
        let rec = rec.borrow();

        let mut seq = InvariantChecker::for_policy(&config, &policy);
        let mut progress_after: Vec<Vec<u64>> = Vec::new();
        for (t, v, p) in &rec.snaps {
            seq.on_tick(*t, v, p).unwrap();
            progress_after.push(seq.progress().to_vec());
        }

        for i in 1..rec.snaps.len() {
            let (t0, v0, _) = &rec.snaps[i - 1];
            let (t1, v1, p1) = &rec.snaps[i];
            let mut ck = InvariantChecker::for_policy(&config, &policy);
            ck.resume_at(*t0, v0.clone(), progress_after[i - 1].clone());
            ck.on_tick(*t1, v1, p1).unwrap();
            assert_eq!(ck.progress(), &progress_after[i][..], "edge into tick {t1}");
            assert_eq!(ck.ticks_checked(), t0 + 1);
        }

        // A resumed checker still rejects a corrupt successor.
        let (t0, v0, _) = &rec.snaps[10];
        let mut ck = InvariantChecker::for_policy(&config, &policy);
        ck.resume_at(*t0, v0.clone(), progress_after[10].clone());
        let (_, v1, p1) = &rec.snaps[11];
        let err = ck.on_tick(t0 + 5, v1, p1).unwrap_err();
        assert!(err.to_string().contains("clock-monotonicity"), "{err}");
    }

    #[test]
    #[should_panic(expected = "one entry per VCPU")]
    fn resume_at_rejects_a_malformed_progress_vector() {
        let config = two_vm_config();
        let mut ck = InvariantChecker::new(&config);
        ck.resume_at(3, Vec::new(), vec![0; 99]);
    }

    #[test]
    fn corrupted_snapshot_is_rejected() {
        let config = two_vm_config();
        let mut ck = InvariantChecker::new(&config);
        let vcpus: Vec<VcpuView> = config
            .vcpu_ids()
            .iter()
            .map(|&id| VcpuView {
                id,
                status: VcpuStatus::Inactive,
                remaining_load: 0,
                sync_point: false,
                assigned_pcpu: None,
                timeslice_remaining: 0,
                last_scheduled_in: None,
                vm_weight: 1,
                present: true,
            })
            .collect();
        let pcpus: Vec<PcpuView> = (0..2).map(|id| PcpuView { id, assigned: None }).collect();

        // A healthy all-idle snapshot passes.
        ck.on_tick(1, &vcpus, &pcpus).unwrap();

        // INACTIVE VCPU holding a PCPU: exclusive-assignment violation.
        let mut bad = vcpus.clone();
        bad[0].assigned_pcpu = Some(0);
        let err = ck.on_tick(2, &bad, &pcpus).unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvariantViolation { ref invariant, tick: 2, .. }
                if invariant == "exclusive-assignment"
        ));

        // Two PCPUs claiming one VCPU.
        let mut ck = InvariantChecker::new(&config);
        let both = vec![
            PcpuView {
                id: 0,
                assigned: Some(vcpus[0].id),
            },
            PcpuView {
                id: 1,
                assigned: Some(vcpus[0].id),
            },
        ];
        let err = ck.on_tick(1, &vcpus, &both).unwrap_err();
        assert!(err.to_string().contains("exclusive-assignment"));

        // Clock regression.
        let mut ck = InvariantChecker::new(&config);
        ck.on_tick(5, &vcpus, &pcpus).unwrap();
        let err = ck.on_tick(5, &vcpus, &pcpus).unwrap_err();
        assert!(err.to_string().contains("clock-monotonicity"));

        // Wrong snapshot shape.
        let mut ck = InvariantChecker::new(&config);
        let err = ck.on_tick(1, &vcpus[..1], &pcpus).unwrap_err();
        assert!(err.to_string().contains("snapshot-shape"));

        // BUSY with no load.
        let mut ck = InvariantChecker::new(&config);
        let mut bad = vcpus.clone();
        bad[1].status = VcpuStatus::Busy;
        bad[1].assigned_pcpu = Some(1);
        bad[1].timeslice_remaining = 3;
        let pcpus_claiming = vec![
            PcpuView {
                id: 0,
                assigned: None,
            },
            PcpuView {
                id: 1,
                assigned: Some(bad[1].id),
            },
        ];
        let err = ck.on_tick(1, &bad, &pcpus_claiming).unwrap_err();
        assert!(err.to_string().contains("transition-legality"));
    }

    #[test]
    fn mid_stint_migration_is_rejected() {
        let config = SystemConfig::builder().pcpus(2).vm(1).build().unwrap();
        let mut ck = InvariantChecker::new(&config);
        let make = |pcpu: usize, ts: u64| VcpuView {
            id: config.vcpu_ids()[0],
            status: VcpuStatus::Ready,
            remaining_load: 0,
            sync_point: false,
            assigned_pcpu: Some(pcpu),
            timeslice_remaining: ts,
            last_scheduled_in: Some(1),
            vm_weight: 1,
            present: true,
        };
        let pcpus = |pcpu: usize| {
            (0..2)
                .map(|id| PcpuView {
                    id,
                    assigned: (id == pcpu).then_some(config.vcpu_ids()[0]),
                })
                .collect::<Vec<_>>()
        };
        ck.on_tick(1, &[make(0, 5)], &pcpus(0)).unwrap();
        let err = ck.on_tick(2, &[make(1, 4)], &pcpus(1)).unwrap_err();
        assert!(err.to_string().contains("migrated"));

        // Same stint with the timeslice not decremented is also illegal.
        let mut ck = InvariantChecker::new(&config);
        ck.on_tick(1, &[make(0, 5)], &pcpus(0)).unwrap();
        let err = ck.on_tick(2, &[make(0, 5)], &pcpus(0)).unwrap_err();
        assert!(err.to_string().contains("timeslice went"));
    }
}
