//! The verify bridge: exhaustive-state model checking of paper models.
//!
//! `vsched-analyze`'s [`verify_model`] is model-agnostic — it explores a
//! SAN's reachable states and proves whatever certificates its hooks
//! supply. This module binds it to the paper model:
//!
//! * **state** — the flat marking, the embedded policy's snapshot
//!   ([`vsched_core::sched::PolicyState`]), and the invariant checker's
//!   per-VCPU progress ledger as the auxiliary vector;
//! * **edges** — every explored tick edge resumes a fresh
//!   [`InvariantChecker`] at the source snapshot
//!   ([`InvariantChecker::resume_at`]) and steps it once, proving the
//!   runtime catalogue of DESIGN.md §11 on *every* reachable edge rather
//!   than one sampled trajectory;
//! * **symmetry** — the VM-rotation group
//!   ([`vsched_core::san_model::vm_rotations`]) quotients the state
//!   space, but only when the policy declares rotation equivariance;
//! * **cross-check** — the exact place bounds and liveness verdicts are
//!   compared against the structural pass (Farkas semiflow bounds,
//!   bounded-walk enablement); disagreements surface as `stale-bound`.
//!
//! Counterexamples are bridged into the fuzz-reproducer schema
//! ([`VerifyCounterexample`] riding [`Reproducer::verify`]) so
//! `vsched fuzz --replay` re-executes them: the recorded firing trace is
//! replayed step-by-step on the SAN model (bit-identical final marking),
//! and the same scenario is run on both engines, which must agree on the
//! failure.

use serde::{Deserialize, Serialize};

use vsched_analyze::incidence::explore;
use vsched_analyze::{
    cross_check, replay_trace, semiflow_bounds, verify_model, AnalyzeOpts, Diagnostic,
    StateRotation, TraceStep, VerifyHooks, VerifyOpts, VerifyReport,
};
use vsched_core::direct::DirectSim;
use vsched_core::observe::TickObserver;
use vsched_core::san_model::{build_analysis_model, vm_rotations, AnalysisModel, SanSystem};
use vsched_core::{CoreError, PolicyKind, SyncMechanism, SystemConfig};
use vsched_san::{Marking, PlaceId};

use crate::case::{FuzzCase, LoadSpec, Reproducer, SyncSpec, VmCase};
use crate::invariant::InvariantChecker;

/// One firing of a serialized counterexample trace — the reproducer-file
/// mirror of [`TraceStep`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct VerifyStep {
    /// Activity index in the built model.
    pub activity: usize,
    /// Activity name (cross-checked on replay).
    pub name: String,
    /// Case completed (0 for single-case activities).
    pub case: usize,
    /// Seed of the fresh RNG stream the firing's gates drew from.
    pub seed: u64,
    /// Whether this was a timed firing (a tick boundary).
    pub timed: bool,
    /// Tick layer the firing belongs to.
    pub tick: u64,
}

/// A machine-checkable verifier counterexample in reproducer form: the
/// concrete SAN firing sequence from the initial marking to the violating
/// state, plus the marking it must end in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct VerifyCounterexample {
    /// The certificate the trace refutes (e.g. `deadlock-freedom`).
    pub certificate: String,
    /// What broke at the end of the trace.
    pub detail: String,
    /// Horizon (in ticks) of the verification run that found it.
    pub horizon: u64,
    /// The concrete firing sequence.
    pub trace: Vec<VerifyStep>,
    /// The flat marking the trace replays to, bit-exactly.
    pub final_marking: Vec<i64>,
}

impl VerifyCounterexample {
    /// Converts an analyzer counterexample into reproducer form.
    #[must_use]
    pub fn from_analysis(cx: &vsched_analyze::Counterexample, horizon: u64) -> Self {
        VerifyCounterexample {
            certificate: cx.certificate.clone(),
            detail: cx.detail.clone(),
            horizon,
            trace: cx
                .trace
                .iter()
                .map(|s| VerifyStep {
                    activity: s.activity,
                    name: s.name.clone(),
                    case: s.case,
                    seed: s.seed,
                    timed: s.timed,
                    tick: s.tick,
                })
                .collect(),
            final_marking: cx.final_marking.clone(),
        }
    }

    /// The trace in the analyzer's replay vocabulary.
    #[must_use]
    pub fn trace_steps(&self) -> Vec<TraceStep> {
        self.trace
            .iter()
            .map(|s| TraceStep {
                activity: s.activity,
                name: s.name.clone(),
                case: s.case,
                seed: s.seed,
                timed: s.timed,
                tick: s.tick,
            })
            .collect()
    }
}

/// The result of one bridged verification run.
pub struct VerifyRun {
    /// The built model the run explored (kept so reports can be rendered
    /// with place and activity names).
    pub analysis: AnalysisModel,
    /// The verifier's report: outcome, certificates, exact bounds.
    pub report: VerifyReport,
    /// `stale-bound` findings from cross-checking the exact results
    /// against the structural pass (empty when the passes agree).
    pub cross_findings: Vec<Diagnostic>,
    /// Structural (Farkas semiflow) per-place bounds, for reporting the
    /// exact reachable bounds alongside the structural claims.
    pub structural_bounds: Vec<Option<i64>>,
    /// The first counterexample in reproducer form, when the run found
    /// any.
    pub counterexample: Option<VerifyCounterexample>,
}

/// The DESIGN.md §11 catalogue as verifier certificates: every name
/// [`InvariantChecker`] can report, so a clean run lists each as PASS.
fn invariant_catalogue() -> Vec<(String, String)> {
    [
        (
            "clock-monotonicity",
            "observed ticks advance by exactly one on every edge",
        ),
        (
            "exclusive-assignment",
            "every PCPU/VCPU assignment is mutual and exclusive",
        ),
        (
            "transition-legality",
            "VCPU status, timeslice and stint transitions are legal",
        ),
        (
            "gang-atomicity",
            "SCS gangs are all-active or all-inactive at every end of tick",
        ),
        (
            "skew-bound",
            "RCS sibling progress skew stays within threshold + slack",
        ),
        (
            "accounting-closure",
            "busy + ready + inactive tallies close over checked ticks",
        ),
        (
            "snapshot-shape",
            "snapshots carry exactly the configured VCPUs and PCPUs",
        ),
    ]
    .into_iter()
    .map(|(n, d)| (n.to_string(), d.to_string()))
    .collect()
}

/// Converts a checker error into the verifier's `(certificate, detail)`
/// vocabulary.
fn invariant_failure(err: CoreError) -> (String, String) {
    match err {
        CoreError::InvariantViolation {
            invariant,
            tick,
            reason,
        } => (invariant, format!("at tick {tick}: {reason}")),
        other => ("invariant-check".to_string(), other.to_string()),
    }
}

/// Rebuilds a full marking from a flat token snapshot.
fn marking_of(template: &Marking, tokens: &[i64]) -> Marking {
    let mut m = template.clone();
    for (p, &t) in tokens.iter().enumerate() {
        m.set(PlaceId::from_index(p), t);
    }
    m
}

/// Exhaustively verifies `config` under `policy`: builds the paper model,
/// explores every reachable state up to the horizon, proves the runtime
/// invariant catalogue on every edge plus deadlock-freedom, exact place
/// bounds and activity liveness, and cross-checks the exact results
/// against the structural pass.
///
/// # Errors
///
/// [`CoreError`] if the model cannot be built.
pub fn verify_config(
    target: &str,
    config: &SystemConfig,
    policy: &PolicyKind,
    opts: &VerifyOpts,
) -> Result<VerifyRun, CoreError> {
    let mut analysis = build_analysis_model(config, policy.create())?;
    let num_places = analysis.model.num_places();

    // The quotient is sound only when relabeling VMs maps the *whole*
    // state — marking, policy snapshot, progress ledger — onto itself;
    // policies with order-dependent tie-breaks opt out via
    // `rotation_equivariant`.
    let rotations: Vec<StateRotation> = if analysis.policy_rotation_equivariant() {
        vm_rotations(config, &analysis.layout, num_places)
            .into_iter()
            .map(|r| StateRotation {
                vcpu_shift: r.vcpu_shift,
                num_vcpus: r.num_vcpus,
                vm_shift: r.vm_shift,
                num_vms: r.num_vms,
                apply_marking: Box::new(move |m: &[i64]| r.apply(m)),
            })
            .collect()
    } else {
        Vec::new()
    };

    let report = {
        let layout = analysis.layout.clone();
        let template = analysis.model.initial_marking();
        let clock = layout.clock.index();
        let probe = analysis.error_probe();
        let analysis_ref = &analysis;
        let hooks = VerifyHooks {
            save_policy: Some(Box::new(move || analysis_ref.save_policy_state())),
            load_policy: Some(Box::new(move |s| analysis_ref.load_policy_state(s))),
            check_initial: Some(Box::new({
                let layout = layout.clone();
                let template = template.clone();
                move |m: &[i64]| {
                    let mk = marking_of(&template, m);
                    let vcpus = layout.vcpu_views(&mk, config);
                    let pcpus = layout.pcpu_views(&mk, config);
                    let mut ck = InvariantChecker::for_policy(config, policy);
                    match ck.on_tick(m[clock] as u64, &vcpus, &pcpus) {
                        Ok(()) => Ok(ck.progress().to_vec()),
                        Err(e) => Err(invariant_failure(e)),
                    }
                }
            })),
            edge_check: Some(Box::new({
                let layout = layout.clone();
                let template = template.clone();
                move |_layer, src: &[i64], dst: &[i64], aux: &[u64]| {
                    let src_tick = src[clock] as u64;
                    let dst_tick = dst[clock] as u64;
                    if dst_tick != src_tick + 1 {
                        // A timed firing that is not a clock tick (e.g. a
                        // timed workload generator): not a tick edge, the
                        // catalogue does not constrain it.
                        return Ok(aux.to_vec());
                    }
                    let src_views = layout.vcpu_views(&marking_of(&template, src), config);
                    let dst_m = marking_of(&template, dst);
                    let dst_views = layout.vcpu_views(&dst_m, config);
                    let dst_pcpus = layout.pcpu_views(&dst_m, config);
                    let mut ck = InvariantChecker::for_policy(config, policy);
                    ck.resume_at(src_tick, src_views, aux.to_vec());
                    match ck.on_tick(dst_tick, &dst_views, &dst_pcpus) {
                        Ok(()) => Ok(ck.progress().to_vec()),
                        Err(e) => Err(invariant_failure(e)),
                    }
                }
            })),
            invariants: invariant_catalogue(),
            probe_error: Some(Box::new(move || probe().map(|e| e.to_string()))),
        };
        verify_model(target, &analysis.model, &hooks, &rotations, opts)
    };

    // Cross-check against the structural pass on the same model: Farkas
    // semiflow bounds vs exact reachable maxima, bounded-walk enablement
    // vs exact liveness.
    let (cross_findings, structural_bounds) = {
        let exploration = explore(&mut analysis.model, &[], &AnalyzeOpts::default());
        let columns: Vec<Vec<i64>> = exploration
            .columns
            .iter()
            .map(|c| c.delta.clone())
            .collect();
        let structural = semiflow_bounds(
            &columns,
            analysis.model.initial_marking().as_slice(),
            num_places,
        );
        let findings = cross_check(
            &analysis.model,
            &report,
            &structural,
            &exploration.enabled_ever,
        );
        (findings, structural)
    };

    let counterexample = report
        .counterexamples
        .first()
        .map(|cx| VerifyCounterexample::from_analysis(cx, opts.horizon));
    Ok(VerifyRun {
        analysis,
        report,
        cross_findings,
        structural_bounds,
        counterexample,
    })
}

/// The planted-deadlock fixture: the 2 VM x 2 VCPU x 2 PCPU paper model
/// with a fully deterministic workload, under a fault-injection wrapper
/// that sabotages Round-Robin's decision at tick 3. Both engines reject
/// the decision; the SAN halts into a dead marking the verifier must
/// catch as a `deadlock-freedom` counterexample.
#[must_use]
pub fn deadlock_fixture_case() -> FuzzCase {
    FuzzCase {
        case_index: 0,
        pcpus: 2,
        vms: vec![
            VmCase {
                vcpus: 2,
                weight: 1,
            },
            VmCase {
                vcpus: 2,
                weight: 1,
            },
        ],
        load: LoadSpec::Deterministic { value: 4.0 },
        sync: SyncSpec {
            probability: 0.0,
            every: Some(3),
            mechanism: SyncMechanism::Barrier,
        },
        timeslice: 5,
        policy: PolicyKind::Fault {
            at_tick: 3,
            inner: Box::new(PolicyKind::RoundRobin),
        },
        seed: 7,
        warmup: 0,
        horizon: 8,
        replications: 1,
        trace: vec![],
    }
}

/// Verifies the planted-deadlock fixture and packages the counterexample
/// as a replayable reproducer (see [`replay_verify_counterexample`]).
///
/// # Errors
///
/// [`CoreError`] if the fixture model cannot be built.
pub fn verify_fixture(opts: &VerifyOpts) -> Result<(Reproducer, VerifyRun), CoreError> {
    let case = deadlock_fixture_case();
    let config = case.system_config()?;
    let run = verify_config("fixture:deadlock", &config, &case.policy, opts)?;
    let failures = run
        .report
        .counterexamples
        .iter()
        .map(|cx| format!("verify: {}: {}", cx.certificate, cx.detail))
        .collect();
    let rep = Reproducer {
        case,
        failures,
        verify: run.counterexample.clone(),
    };
    Ok((rep, run))
}

/// The outcome of replaying a verifier counterexample.
#[derive(Debug, Clone)]
pub struct VerifyReplay {
    /// The certificate the replayed trace refutes.
    pub certificate: String,
    /// Number of firings replayed.
    pub trace_len: usize,
    /// The marking the replay ended in (bit-identical to the recorded
    /// one, or the replay would have failed).
    pub replayed_marking: Vec<i64>,
    /// The direct engine's error over the counterexample horizon, if any.
    pub direct_error: Option<String>,
    /// The SAN engine's error over the counterexample horizon, if any.
    pub san_error: Option<String>,
}

impl VerifyReplay {
    /// Whether both engines failed the same way (same error text modulo
    /// the tick at which each engine surfaces it).
    #[must_use]
    pub fn engines_agree(&self) -> bool {
        match (&self.direct_error, &self.san_error) {
            (None, None) => true,
            (Some(d), Some(s)) => {
                // Engines may surface the violation at off-by-one ticks;
                // the policy + reason must match.
                d == s || {
                    let stem = |e: &str| e.split(" at tick ").next().unwrap_or(e).to_string();
                    stem(d) == stem(s)
                }
            }
            _ => false,
        }
    }
}

/// Replays a reproducer's verifier counterexample:
///
/// 1. rebuilds the case's SAN model and re-fires the recorded trace
///    step-by-step, requiring a bit-identical final marking;
/// 2. runs the same scenario on both engines over the counterexample's
///    horizon and reports each engine's error.
///
/// # Errors
///
/// A human-readable description of the first divergence: a reproducer
/// without a verify counterexample, an invalid case, or a trace that no
/// longer replays (stale reproducer after a model change).
pub fn replay_verify_counterexample(rep: &Reproducer) -> Result<VerifyReplay, String> {
    let vcx = rep
        .verify
        .as_ref()
        .ok_or_else(|| "reproducer carries no verify counterexample".to_string())?;
    let config = rep
        .case
        .system_config()
        .map_err(|e| format!("invalid case: {e}"))?;
    let analysis = build_analysis_model(&config, rep.case.policy.create())
        .map_err(|e| format!("model build failed: {e}"))?;
    let replayed = replay_trace(&analysis.model, &vcx.trace_steps())?;
    if replayed != vcx.final_marking {
        return Err(format!(
            "trace replayed to {replayed:?} but the reproducer recorded {:?}",
            vcx.final_marking
        ));
    }
    let mut direct = DirectSim::new(config.clone(), rep.case.policy.create(), rep.case.seed);
    let direct_error = direct.run(vcx.horizon).err().map(|e| e.to_string());
    let san_error = match SanSystem::new(config, rep.case.policy.create(), rep.case.seed) {
        Err(e) => Some(e.to_string()),
        Ok(mut sys) => sys.run(vcx.horizon).err().map(|e| e.to_string()),
    };
    Ok(VerifyReplay {
        certificate: vcx.certificate.clone(),
        trace_len: vcx.trace.len(),
        replayed_marking: replayed,
        direct_error,
        san_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsched_analyze::VerifyOutcome;
    use vsched_core::{VmSpec, WorkloadSpec};

    /// A fully deterministic (RNG-free) paper workload: fixed job length,
    /// every third job a barrier sync point.
    fn deterministic_workload() -> WorkloadSpec {
        WorkloadSpec {
            load: vsched_des::Dist::deterministic(4.0).expect("valid dist"),
            sync_probability: 0.0,
            sync_mechanism: SyncMechanism::Barrier,
            sync_every: Some(3),
            interarrival: None,
        }
    }

    fn paper_2x2x2(workload: WorkloadSpec) -> SystemConfig {
        let mut b = SystemConfig::builder().pcpus(2).timeslice(5);
        for _ in 0..2 {
            b = b.vm_spec(VmSpec {
                vcpus: 2,
                workload: workload.clone(),
                weight: 1,
            });
        }
        b.build().expect("valid config")
    }

    #[test]
    fn paper_model_proves_clean_for_every_builtin_policy() {
        let config = paper_2x2x2(deterministic_workload());
        let opts = VerifyOpts {
            horizon: 6,
            ..VerifyOpts::default()
        };
        for policy in PolicyKind::all() {
            let run = verify_config(policy.label(), &config, &policy, &opts).expect("model builds");
            assert_eq!(
                run.report.outcome(),
                VerifyOutcome::Proved,
                "{}: {:?} ({:?})",
                policy.label(),
                run.report.inconclusive,
                run.report
                    .counterexamples
                    .iter()
                    .map(|cx| (&cx.certificate, &cx.detail))
                    .collect::<Vec<_>>()
            );
            assert!(
                run.report.certificates.iter().all(|c| c.passed),
                "{}: {:?}",
                policy.label(),
                run.report
                    .certificates
                    .iter()
                    .filter(|c| !c.passed)
                    .map(|c| (&c.name, &c.detail))
                    .collect::<Vec<_>>()
            );
            // The seven-invariant catalogue + the engine certificates are
            // all present by name.
            for (name, _) in invariant_catalogue() {
                assert!(
                    run.report.certificates.iter().any(|c| c.name == name),
                    "{name} missing"
                );
            }
            assert!(run.counterexample.is_none());
        }
    }

    #[test]
    fn symmetry_quotient_is_sound_on_the_paper_model() {
        // The VM-rotation quotient is *active* on the paper model (two
        // identical VMs under an equivariant policy) and must never change
        // a verdict in the exhaustive, RNG-free regime. It does not shrink
        // this particular state space: from the symmetric cold start, the
        // deterministic policy cursor and the index-order dispatcher keep
        // the reachable set free of cross-orbit duplicates, so canonical
        // and concrete stores coincide. The strict-shrink acceptance
        // assertion lives in the engine test
        // `symmetry_quotient_shrinks_without_changing_verdicts`
        // (vsched-analyze verify_pass), whose mirrored-branch model does
        // reach asymmetric states.
        //
        // Bounds and liveness are compared directionally, not for
        // equality: the engine closes them over the rotation group, and
        // the index-order dispatcher makes the reachable set asymmetric
        // (under contention VM 1's VCPUs dispatch first, so per-VCPU
        // counters differ across VMs) — rotated images of visited
        // markings are then legitimate orbit members the concrete scan
        // never visits, and the closed bounds over-approximate the
        // concrete ones.
        let config = paper_2x2x2(deterministic_workload());
        let base = VerifyOpts {
            horizon: 6,
            ..VerifyOpts::default()
        };
        let on = verify_config("rrs+sym", &config, &PolicyKind::RoundRobin, &base)
            .expect("model builds");
        let off = verify_config(
            "rrs-sym",
            &config,
            &PolicyKind::RoundRobin,
            &VerifyOpts {
                symmetry: false,
                ..base
            },
        )
        .expect("model builds");
        assert!(on.report.rotations_used > 0, "rotations must be in play");
        assert_eq!(off.report.rotations_used, 0);
        assert!(
            on.report.states_stored <= off.report.states_stored,
            "the quotient never inflates the store: {} vs {}",
            on.report.states_stored,
            off.report.states_stored
        );
        assert_eq!(on.report.outcome(), off.report.outcome());
        for (p, (&closed, &concrete)) in on
            .report
            .place_bounds
            .iter()
            .zip(&off.report.place_bounds)
            .enumerate()
        {
            assert!(
                closed >= concrete,
                "place {p}: rotation-closed bound {closed} below concrete {concrete}"
            );
        }
        for (a, (&closed, &concrete)) in on
            .report
            .enabled_ever
            .iter()
            .zip(&off.report.enabled_ever)
            .enumerate()
        {
            assert!(
                closed || !concrete,
                "activity {a}: concretely enabled but closure missed it"
            );
        }
        let verdicts = |r: &VerifyReport| {
            r.certificates
                .iter()
                .map(|c| (c.name.clone(), c.passed))
                .collect::<Vec<_>>()
        };
        assert_eq!(verdicts(&on.report), verdicts(&off.report));
    }

    #[test]
    fn non_equivariant_policies_decline_the_quotient() {
        let config = paper_2x2x2(deterministic_workload());
        let opts = VerifyOpts {
            horizon: 2,
            ..VerifyOpts::default()
        };
        let fcfs = verify_config("fcfs", &config, &PolicyKind::Fcfs, &opts).unwrap();
        assert_eq!(
            fcfs.report.rotations_used, 0,
            "FCFS arrival order is not rotation-equivariant"
        );
        let rrs = verify_config("rrs", &config, &PolicyKind::RoundRobin, &opts).unwrap();
        assert_eq!(rrs.report.rotations_used, 1, "2 identical VMs, 1 rotation");
    }

    #[test]
    fn deadlock_fixture_roundtrips_and_replays_on_both_engines() {
        let (rep, run) = verify_fixture(&VerifyOpts {
            horizon: 8,
            ..VerifyOpts::default()
        })
        .expect("fixture builds");
        assert_eq!(run.report.outcome(), VerifyOutcome::Violated);
        let vcx = rep.verify.as_ref().expect("counterexample recorded");
        assert_eq!(vcx.certificate, "deadlock-freedom");
        assert!(
            vcx.detail.contains("policy violation"),
            "deadlock detail names the recorded violation: {}",
            vcx.detail
        );
        assert!(!vcx.trace.is_empty());

        // Round-trip through the reproducer file format.
        let json = rep.to_json();
        let back: Reproducer = serde_json::from_str(&json).expect("reproducer parses");
        assert_eq!(back, rep);

        // The parsed reproducer replays bit-identically and both engines
        // reject the same sabotaged decision.
        let replay = replay_verify_counterexample(&back).expect("trace replays");
        assert_eq!(replay.replayed_marking, vcx.final_marking);
        assert_eq!(replay.trace_len, vcx.trace.len());
        let direct = replay.direct_error.as_deref().expect("direct engine fails");
        let san = replay.san_error.as_deref().expect("SAN engine fails");
        assert!(
            direct.contains("preemption of unknown VCPU index"),
            "{direct}"
        );
        assert!(san.contains("preemption of unknown VCPU index"), "{san}");
        assert!(replay.engines_agree(), "{direct} vs {san}");
    }

    #[test]
    fn legacy_reproducers_without_verify_still_parse() {
        let rep = Reproducer {
            case: deadlock_fixture_case(),
            failures: vec![],
            verify: None,
        };
        let json = rep.to_json();
        assert!(
            !json.contains("\"verify\""),
            "absent counterexamples are skipped, keeping old readers working"
        );
        let back: Reproducer = serde_json::from_str(&json).expect("parses");
        assert!(back.verify.is_none());
    }

    #[test]
    fn replay_rejects_reproducers_without_a_counterexample() {
        let rep = Reproducer {
            case: deadlock_fixture_case(),
            failures: vec![],
            verify: None,
        };
        let err = replay_verify_counterexample(&rep).unwrap_err();
        assert!(err.contains("no verify counterexample"), "{err}");
    }

    #[test]
    fn state_cap_yields_inconclusive_with_nothing_proved() {
        let config = paper_2x2x2(deterministic_workload());
        let run = verify_config(
            "capped",
            &config,
            &PolicyKind::RoundRobin,
            &VerifyOpts {
                horizon: 6,
                max_states: 2,
                ..VerifyOpts::default()
            },
        )
        .unwrap();
        assert_eq!(run.report.outcome(), VerifyOutcome::Inconclusive);
        assert!(run.report.certificates.iter().all(|c| !c.passed));
        assert!(
            run.cross_findings.is_empty(),
            "truncated exact data must not raise stale-bound findings"
        );
    }
}
