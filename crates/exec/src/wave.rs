//! A persistent wave pool: repeated parallel fan-outs over short-lived
//! item batches, with per-worker state that survives between waves.
//!
//! [`run_indexed`](crate::run_indexed) spawns a scoped pool once per
//! call, which is right for replication-sized tasks (milliseconds to
//! seconds each). The SAN engine's intra-replication sharding has the
//! opposite profile: thousands of *waves* per run, each a batch of
//! microsecond-scale activity firings, between which the main thread must
//! run a sequential merge. Spawning threads per wave would dwarf the work;
//! this module keeps `threads` workers parked on a condvar and wakes them
//! per wave.
//!
//! The protocol, all safe Rust:
//!
//! * [`run`] spawns the workers inside a [`std::thread::scope`], hands the
//!   caller a [`WaveHandle`], and joins the pool when the caller's drive
//!   closure returns (or unwinds — a drop guard signals shutdown first, so
//!   a panicking caller never deadlocks the scope).
//! * [`WaveHandle::dispatch`] publishes a batch of items, bumps the wave
//!   generation, and blocks until every worker has checked in. Results
//!   come back **in item order** regardless of which worker ran what.
//! * Each worker owns its state (`make_worker`, built lazily on the worker
//!   thread), runs `on_wave` exactly once per dispatch *before* claiming
//!   any item — the hook where the SAN engine replays the marking patch
//!   log — then claims items in contiguous chunks off a shared cursor.
//! * A panic in worker code is caught, parked until the wave completes,
//!   and resumed on the dispatching thread with its original payload.
//!
//! Determinism: item `i`'s result depends only on the worker-state
//! invariants the caller maintains (in the SAN engine: every worker's
//! marking replica is identical at wave start), never on claim order, so
//! `dispatch` output is bit-identical for any `threads`.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// Shared pool state. `control` is the single lock; workers hold it only
/// to observe generation changes and to claim/return item chunks.
struct Shared<I, R> {
    control: Mutex<Control<I, R>>,
    start: Condvar,
    done: Condvar,
}

struct Control<I, R> {
    generation: u64,
    shutdown: bool,
    items: Vec<Option<I>>,
    results: Vec<Option<R>>,
    next: usize,
    workers_done: usize,
    panic: Option<Box<dyn Any + Send>>,
}

/// The main thread's handle onto a running wave pool; created by [`run`].
pub struct WaveHandle<'a, I: Send, R: Send> {
    shared: &'a Shared<I, R>,
    threads: usize,
}

impl<I: Send, R: Send> WaveHandle<'_, I, R> {
    /// Number of pool workers.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.threads
    }

    /// Runs one wave: every worker syncs (`on_wave`), the items are
    /// processed in parallel, and the results return in item order.
    ///
    /// # Panics
    ///
    /// Re-raises (with the original payload) any panic from worker code.
    pub fn dispatch(&mut self, items: Vec<I>) -> Vec<R> {
        let count = items.len();
        {
            let mut c = self.shared.control.lock().expect("wave pool lock");
            debug_assert!(c.items.iter().all(Option::is_none), "previous wave drained");
            c.items.clear();
            c.items.extend(items.into_iter().map(Some));
            c.results.clear();
            c.results.resize_with(count, || None);
            c.next = 0;
            c.workers_done = 0;
            c.generation += 1;
        }
        self.shared.start.notify_all();
        let mut c = self.shared.control.lock().expect("wave pool lock");
        while c.workers_done < self.threads {
            c = self.shared.done.wait(c).expect("wave pool lock");
        }
        if let Some(payload) = c.panic.take() {
            // Unblock the pool before unwinding so the enclosing scope can
            // join the workers.
            c.shutdown = true;
            drop(c);
            self.shared.start.notify_all();
            resume_unwind(payload);
        }
        c.results
            .drain(..)
            .map(|r| r.expect("every item processed"))
            .collect()
    }
}

/// Signals shutdown when dropped, so the worker scope always joins — on
/// normal return and on unwind through the drive closure alike.
struct ShutdownGuard<'a, I, R> {
    shared: &'a Shared<I, R>,
}

impl<I, R> Drop for ShutdownGuard<'_, I, R> {
    fn drop(&mut self) {
        if let Ok(mut c) = self.shared.control.lock() {
            c.shutdown = true;
        }
        self.shared.start.notify_all();
    }
}

/// Runs `drive` with a [`WaveHandle`] onto a pool of `threads` persistent
/// workers, joining the pool when `drive` returns.
///
/// * `make_worker(id)` builds worker `id`'s private state, on the worker's
///   own thread, the first time that worker participates in a wave.
/// * `on_wave(id, state)` runs once per worker per dispatch, before any
///   item is claimed.
/// * `step(state, item)` processes one item.
///
/// With `threads <= 1` the pool still spawns one worker, preserving the
/// "worker state lives on a worker thread" contract; callers wanting a
/// purely sequential path should branch before calling.
pub fn run<I, R, W, T, FM, FW, FS, FD>(
    threads: usize,
    make_worker: FM,
    on_wave: FW,
    step: FS,
    drive: FD,
) -> T
where
    I: Send,
    R: Send,
    FM: Fn(usize) -> W + Sync,
    FW: Fn(usize, &mut W) + Sync,
    FS: Fn(&mut W, I) -> R + Sync,
    FD: FnOnce(&mut WaveHandle<'_, I, R>) -> T,
{
    let threads = threads.max(1);
    let shared = Shared {
        control: Mutex::new(Control {
            generation: 0,
            shutdown: false,
            items: Vec::new(),
            results: Vec::new(),
            next: 0,
            workers_done: 0,
            panic: None,
        }),
        start: Condvar::new(),
        done: Condvar::new(),
    };
    std::thread::scope(|scope| {
        for id in 0..threads {
            let shared = &shared;
            let (make_worker, on_wave, step) = (&make_worker, &on_wave, &step);
            scope.spawn(move || {
                worker_loop(id, threads, shared, make_worker, on_wave, step);
            });
        }
        let _guard = ShutdownGuard { shared: &shared };
        let mut handle = WaveHandle {
            shared: &shared,
            threads,
        };
        drive(&mut handle)
    })
}

fn worker_loop<I, R, W>(
    id: usize,
    threads: usize,
    shared: &Shared<I, R>,
    make_worker: &(impl Fn(usize) -> W + Sync),
    on_wave: &(impl Fn(usize, &mut W) + Sync),
    step: &(impl Fn(&mut W, I) -> R + Sync),
) where
    I: Send,
    R: Send,
{
    let mut state: Option<W> = None;
    let mut poisoned = false;
    let mut last_generation = 0;
    loop {
        {
            let mut c = shared.control.lock().expect("wave pool lock");
            while c.generation == last_generation && !c.shutdown {
                c = shared.start.wait(c).expect("wave pool lock");
            }
            if c.shutdown {
                return;
            }
            last_generation = c.generation;
        }
        // A worker that panicked earlier keeps checking in (so dispatch
        // barriers never hang) but does no further work.
        if !poisoned {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let w = state.get_or_insert_with(|| make_worker(id));
                on_wave(id, w);
                process_items(shared, w, step);
            }));
            if let Err(payload) = outcome {
                poisoned = true;
                state = None;
                let mut c = shared.control.lock().expect("wave pool lock");
                if c.panic.is_none() {
                    c.panic = Some(payload);
                }
            }
        }
        let mut c = shared.control.lock().expect("wave pool lock");
        c.workers_done += 1;
        if c.workers_done == threads {
            shared.done.notify_all();
        }
    }
}

/// Claims and processes contiguous item chunks until the wave is drained
/// (or another worker panicked). Chunked claiming keeps lock traffic at
/// O(workers · log-ish) per wave instead of O(items).
fn process_items<I, R, W>(shared: &Shared<I, R>, w: &mut W, step: &(impl Fn(&mut W, I) -> R + Sync))
where
    I: Send,
    R: Send,
{
    let mut out: Vec<(usize, R)> = Vec::new();
    loop {
        let (lo, taken) = {
            let mut c = shared.control.lock().expect("wave pool lock");
            // Flush the previous chunk's results while holding the lock.
            for (i, r) in out.drain(..) {
                c.results[i] = Some(r);
            }
            if c.panic.is_some() || c.next >= c.items.len() {
                return;
            }
            let remaining = c.items.len() - c.next;
            let chunk = (remaining / 4).clamp(1, 64.max(remaining / 16));
            let lo = c.next;
            c.next += chunk.min(remaining);
            let hi = c.next;
            let taken: Vec<I> = c.items[lo..hi]
                .iter_mut()
                .map(|s| s.take().expect("item claimed once"))
                .collect();
            (lo, taken)
        };
        for (k, item) in taken.into_iter().enumerate() {
            out.push((lo + k, step(w, item)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_item_order_for_any_thread_count() {
        for threads in [1, 2, 3, 8] {
            let out: Vec<u64> = run(
                threads,
                |_id| (),
                |_id, ()| {},
                |(), x: u64| x * 10 + 1,
                |h| {
                    assert_eq!(h.workers(), threads);
                    h.dispatch((0..200).collect())
                },
            );
            let expected: Vec<u64> = (0..200).map(|x| x * 10 + 1).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn worker_state_persists_across_waves_and_on_wave_runs_once_per_dispatch() {
        // Worker state counts its own on_wave calls; every item's result
        // carries that count, so the assertion proves both persistence and
        // the exactly-once-per-dispatch contract.
        let built = AtomicUsize::new(0);
        let waves: Vec<Vec<usize>> = run(
            2,
            |_id| {
                built.fetch_add(1, Ordering::SeqCst);
                0usize // on_wave counter
            },
            |_id, n| *n += 1,
            |n, _item: usize| *n,
            |h| (0..3).map(|w| h.dispatch(vec![w; 8])).collect(),
        );
        for (w, results) in waves.iter().enumerate() {
            for &r in results {
                assert_eq!(r, w + 1, "wave {w}: on_wave ran once per dispatch");
            }
        }
        assert_eq!(built.load(Ordering::SeqCst), 2, "one state per worker");
    }

    #[test]
    fn empty_and_tiny_dispatches_work() {
        let out: Vec<Vec<u32>> = run(
            4,
            |_id| (),
            |_id, ()| {},
            |(), x: u32| x + 1,
            |h| {
                vec![
                    h.dispatch(vec![]),
                    h.dispatch(vec![7]),
                    h.dispatch(vec![1, 2]),
                ]
            },
        );
        assert_eq!(out, vec![vec![], vec![8], vec![2, 3]]);
    }

    #[test]
    fn many_waves_are_cheap_enough_to_run() {
        // Smoke for the persistent-pool point: thousands of dispatches
        // complete promptly (a spawn-per-wave design would be visibly
        // slower, but we only assert completion here).
        let total: u64 = run(
            2,
            |_id| (),
            |_id, ()| {},
            |(), x: u64| x,
            |h| {
                let mut sum = 0;
                for w in 0..2000u64 {
                    sum += h.dispatch(vec![w, w]).iter().sum::<u64>();
                }
                sum
            },
        );
        assert_eq!(total, 2 * (0..2000u64).sum::<u64>());
    }

    #[test]
    #[should_panic(expected = "deliberate step panic")]
    fn worker_panic_propagates_without_deadlock() {
        let _: Vec<()> = run(
            3,
            |_id| (),
            |_id, ()| {},
            |(), x: u32| {
                assert!(x != 13, "deliberate step panic");
            },
            |h| h.dispatch((0..64).collect()),
        );
    }

    #[test]
    #[should_panic(expected = "deliberate drive panic")]
    fn drive_panic_shuts_the_pool_down() {
        let _: () = run(
            2,
            |_id| (),
            |_id, ()| {},
            |(), _x: u32| (),
            |h| {
                let _ = h.dispatch(vec![1, 2, 3]);
                panic!("deliberate drive panic");
            },
        );
    }

    #[test]
    fn pool_survives_a_poisoned_worker_wave_then_reports() {
        // After a panic the wave still completes its barrier; the panic is
        // re-raised by dispatch. A subsequent catch at the caller level is
        // out of contract, so we only assert the first dispatch panics.
        let result = std::panic::catch_unwind(|| {
            let _: Vec<()> = run(
                2,
                |_id| (),
                |_id, ()| {},
                |(), _x: u32| panic!("boom"),
                |h| h.dispatch(vec![1, 2, 3, 4]),
            );
        });
        assert!(result.is_err());
    }
}
