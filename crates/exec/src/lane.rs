//! A persistent lane pool: repeated parallel fan-outs over short-lived
//! item batches, with the **calling thread participating as lane 0** and
//! per-worker state that survives between waves.
//!
//! This replaces the retired wave pool, whose per-dispatch protocol was a
//! mutex + condvar barrier across *every* worker: each batch locked the
//! shared control block, woke all workers, and waited for all of them to
//! check back in — on a single-core host that is two context switches per
//! worker per batch, which made the SAN engine's sharded path ~8× slower
//! than sequential execution. The lane pool removes both costs:
//!
//! * **Lane 0 is the driver.** The thread calling [`LaneHandle::dispatch`]
//!   runs its own share of every batch inline. A pool built with
//!   `lanes == 1` therefore spawns **no threads at all** and dispatch is a
//!   plain function call — the single-core configuration has no
//!   synchronization on its hot path whatsoever.
//! * **Per-helper mailboxes, not a shared barrier.** Each helper lane owns
//!   an SPSC mailbox: a `Mutex` slot for the item/result hand-off plus
//!   `epoch`/`done` atomics for the handshake. Dispatch engages only the
//!   helpers that actually received items; idle lanes are neither locked
//!   nor woken. A parked helper spins briefly on the epoch counter before
//!   sleeping, so in steady state (waves arriving back-to-back) the
//!   request is a store + wake with no contended lock.
//!
//! The protocol, all safe Rust:
//!
//! * [`run`] spawns `lanes - 1` helpers inside a [`std::thread::scope`],
//!   hands the caller a [`LaneHandle`], and joins the pool when the
//!   caller's drive closure returns (or unwinds — a drop guard signals
//!   shutdown first, so a panicking caller never deadlocks the scope).
//! * [`LaneHandle::dispatch`] assigns item `i` to lane `i % lanes`,
//!   engages each helper with items (and, with `engage_all`, every helper
//!   — the hook callers use to force a state sync on lagging lanes), runs
//!   lane 0's share inline, then collects. Results land **in item order**
//!   regardless of which lane ran what.
//! * Each lane owns its state (`make_worker`, built lazily on the lane's
//!   own thread) and runs `on_wave` exactly once per engagement *before*
//!   stepping any item — the hook where the SAN engine replays its marking
//!   delta feed.
//! * A panic in helper code is caught, parked until the wave's engaged
//!   lanes have all checked in, and resumed on the dispatching thread with
//!   its original payload. A panic in lane 0's own closures unwinds
//!   directly; the shutdown guard releases the helpers either way.
//!
//! Determinism: item `i`'s result depends only on the worker-state
//! invariants the caller maintains (in the SAN engine: every lane's
//! marking replica is identical at wave start), never on the lane count or
//! scheduling, so `dispatch` output is bit-identical for any `lanes`.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Epoch value that tells helpers to exit their loop.
const SHUTDOWN: u64 = u64::MAX;

/// Iterations a waiter burns on its atomic before parking on the condvar.
/// Large enough to catch back-to-back waves without a sleep transition,
/// small enough that an idle pool parks almost immediately.
const SPIN_LIMIT: u32 = 256;

/// The SPSC hand-off slot of one helper lane. Items go in and results come
/// out under the mutex; by protocol the lock is never contended (the
/// driver touches it only while the helper is idle, and vice versa — the
/// `epoch`/`done` counters sequence the ownership transfer).
struct MailSlot<I, R> {
    items: Vec<(usize, I)>,
    results: Vec<(usize, R)>,
    panic: Option<Box<dyn Any + Send>>,
}

/// One helper lane's mailbox.
struct Mailbox<I, R> {
    /// Request counter: the driver stores wave number `k` (under `slot`)
    /// to engage the helper; `SHUTDOWN` ends the helper loop.
    epoch: AtomicU64,
    /// Acknowledge counter: the helper stores `k` once wave `k`'s results
    /// are in the slot.
    done: AtomicU64,
    slot: Mutex<MailSlot<I, R>>,
    /// Helper parks here between waves.
    wake: Condvar,
    /// The driver parks here when a helper outlasts its spin budget.
    ack: Condvar,
}

impl<I, R> Mailbox<I, R> {
    fn new() -> Self {
        Mailbox {
            epoch: AtomicU64::new(0),
            done: AtomicU64::new(0),
            slot: Mutex::new(MailSlot {
                items: Vec::new(),
                results: Vec::new(),
                panic: None,
            }),
            wake: Condvar::new(),
            ack: Condvar::new(),
        }
    }
}

/// The driving thread's handle onto a running lane pool; created by
/// [`run`]. Owns lane 0's worker state and the reusable dispatch buffers.
pub struct LaneHandle<'a, I, R, W, FM, FW, FS>
where
    I: Send,
    R: Send,
    FM: Fn(usize) -> W + Sync,
    FW: Fn(usize, &mut W) + Sync,
    FS: Fn(&mut W, I) -> R + Sync,
{
    helpers: &'a [Mailbox<I, R>],
    make_worker: &'a FM,
    on_wave: &'a FW,
    step: &'a FS,
    /// Lane 0's state, built lazily on first engagement.
    own: Option<W>,
    /// Per-helper request counters (mirror of each mailbox's `epoch`).
    requests: Vec<u64>,
    /// Reusable per-helper send buffers (capacity ping-pongs with the
    /// mailbox slot vectors).
    send_bufs: Vec<Vec<(usize, I)>>,
    /// Reusable in-order result assembly buffer.
    scratch: Vec<Option<R>>,
}

impl<I, R, W, FM, FW, FS> LaneHandle<'_, I, R, W, FM, FW, FS>
where
    I: Send,
    R: Send,
    FM: Fn(usize) -> W + Sync,
    FW: Fn(usize, &mut W) + Sync,
    FS: Fn(&mut W, I) -> R + Sync,
{
    /// Total lane count, including the driving thread's lane 0.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.helpers.len() + 1
    }

    /// Runs one wave: items drain out of `items` (item `i` goes to lane
    /// `i % lanes`), every engaged lane syncs (`on_wave`) and steps its
    /// share, and `results` fills with the outputs **in item order**.
    /// Both vectors are caller-owned so their capacity survives across
    /// waves; `results` is cleared first.
    ///
    /// `engage_all` additionally engages every helper lane — even those
    /// with no items this wave — so each one runs `on_wave`. Callers use
    /// this to bound how far an idle lane's state can lag behind (the SAN
    /// engine's feed-compaction hook).
    ///
    /// # Panics
    ///
    /// Re-raises (with the original payload) any panic from lane code.
    pub fn dispatch(&mut self, items: &mut Vec<I>, results: &mut Vec<R>, engage_all: bool) {
        results.clear();
        let lanes = self.lanes();
        if lanes == 1 {
            // Single-lane fast path: no synchronization of any kind.
            let w = self.own.get_or_insert_with(|| (self.make_worker)(0));
            (self.on_wave)(0, w);
            for item in items.drain(..) {
                results.push((self.step)(w, item));
            }
            return;
        }

        let helpers = self.helpers;
        let count = items.len();
        debug_assert!(self.scratch.is_empty(), "previous wave drained");
        // Deal items round-robin: lane 0 keeps its share, helpers get
        // theirs via the reusable `send_bufs`.
        let mut own_items: Vec<(usize, I)> = Vec::with_capacity(count / lanes + 1);
        for (i, item) in items.drain(..).enumerate() {
            let lane = i % lanes;
            if lane == 0 {
                own_items.push((i, item));
            } else {
                self.send_bufs[lane - 1].push((i, item));
            }
        }
        // Engage helpers first so they work while lane 0 steps its share.
        for (h, mailbox) in helpers.iter().enumerate() {
            if self.send_bufs[h].is_empty() && !engage_all {
                continue;
            }
            self.requests[h] += 1;
            {
                let mut slot = mailbox.slot.lock().expect("lane mailbox");
                std::mem::swap(&mut slot.items, &mut self.send_bufs[h]);
                // Published under the slot lock: a helper checks the epoch
                // while holding the lock before parking, so the store
                // cannot fall between its check and its wait.
                mailbox.epoch.store(self.requests[h], Ordering::Release);
            }
            mailbox.wake.notify_one();
        }

        // Lane 0's own share.
        self.scratch.resize_with(count, || None);
        let own_wave = !own_items.is_empty() || engage_all;
        let own_outcome = if own_wave {
            let own = &mut self.own;
            let (make_worker, on_wave, step) = (self.make_worker, self.on_wave, self.step);
            let scratch = &mut self.scratch;
            catch_unwind(AssertUnwindSafe(move || {
                let w = own.get_or_insert_with(|| make_worker(0));
                on_wave(0, w);
                for (i, item) in own_items {
                    scratch[i] = Some(step(w, item));
                }
            }))
        } else {
            Ok(())
        };

        // Collect from every engaged helper, in lane order.
        let mut helper_panic: Option<Box<dyn Any + Send>> = None;
        for (h, mailbox) in helpers.iter().enumerate() {
            let want = self.requests[h];
            if mailbox.done.load(Ordering::Acquire) < want {
                let mut spins = 0u32;
                while mailbox.done.load(Ordering::Acquire) < want {
                    spins += 1;
                    if spins < SPIN_LIMIT {
                        std::hint::spin_loop();
                        continue;
                    }
                    let mut slot = mailbox.slot.lock().expect("lane mailbox");
                    while mailbox.done.load(Ordering::Acquire) < want {
                        slot = mailbox.ack.wait(slot).expect("lane mailbox");
                    }
                    break;
                }
            }
            let mut slot = mailbox.slot.lock().expect("lane mailbox");
            for (i, r) in slot.results.drain(..) {
                self.scratch[i] = Some(r);
            }
            if let Some(payload) = slot.panic.take() {
                helper_panic.get_or_insert(payload);
            }
        }

        if let Err(payload) = own_outcome {
            // Lane 0's own failure wins: it is what a sequential run of
            // this wave would have hit first.
            self.own = None;
            resume_unwind(payload);
        }
        if let Some(payload) = helper_panic {
            resume_unwind(payload);
        }
        results.extend(
            self.scratch
                .drain(..)
                .map(|r| r.expect("every item processed")),
        );
    }
}

/// Signals shutdown when dropped, so the helper scope always joins — on
/// normal return and on unwind through the drive closure alike.
struct ShutdownGuard<'a, I, R> {
    helpers: &'a [Mailbox<I, R>],
}

impl<I, R> Drop for ShutdownGuard<'_, I, R> {
    fn drop(&mut self) {
        for mailbox in self.helpers {
            // Store under the slot lock (poisoned or not — the guard in
            // the error still holds it) so a helper between its epoch
            // check and its wait cannot miss the shutdown.
            let slot = mailbox.slot.lock();
            mailbox.epoch.store(SHUTDOWN, Ordering::Release);
            drop(slot);
            mailbox.wake.notify_one();
        }
    }
}

/// Runs `drive` with a [`LaneHandle`] onto a pool of `lanes` persistent
/// lanes — the calling thread as lane 0 plus `lanes - 1` helper threads —
/// joining the helpers when `drive` returns.
///
/// * `make_worker(lane)` builds lane `lane`'s private state, on the lane's
///   own thread, the first time that lane is engaged.
/// * `on_wave(lane, state)` runs once per lane per engagement, before any
///   item is stepped.
/// * `step(state, item)` processes one item.
///
/// With `lanes <= 1` no threads are spawned and every dispatch runs inline
/// on the calling thread. Callers wanting parallelism cap `lanes` by
/// [`crate::resolve_jobs`]/`available_parallelism` themselves — the pool
/// spawns exactly what it is asked for (tests and sanitizer runs rely on
/// forcing real threads on any host).
pub fn run<I, R, W, T, FM, FW, FS, FD>(
    lanes: usize,
    make_worker: FM,
    on_wave: FW,
    step: FS,
    drive: FD,
) -> T
where
    I: Send,
    R: Send,
    FM: Fn(usize) -> W + Sync,
    FW: Fn(usize, &mut W) + Sync,
    FS: Fn(&mut W, I) -> R + Sync,
    FD: for<'h> FnOnce(&mut LaneHandle<'h, I, R, W, FM, FW, FS>) -> T,
{
    let helpers: Vec<Mailbox<I, R>> = (1..lanes.max(1)).map(|_| Mailbox::new()).collect();
    std::thread::scope(|scope| {
        for (h, mailbox) in helpers.iter().enumerate() {
            let (make_worker, on_wave, step) = (&make_worker, &on_wave, &step);
            scope.spawn(move || helper_loop(h + 1, mailbox, make_worker, on_wave, step));
        }
        let _guard = ShutdownGuard { helpers: &helpers };
        let mut handle = LaneHandle {
            helpers: &helpers,
            make_worker: &make_worker,
            on_wave: &on_wave,
            step: &step,
            own: None,
            requests: vec![0; helpers.len()],
            send_bufs: (0..helpers.len()).map(|_| Vec::new()).collect(),
            scratch: Vec::new(),
        };
        drive(&mut handle)
    })
}

fn helper_loop<I, R, W>(
    lane: usize,
    mailbox: &Mailbox<I, R>,
    make_worker: &(impl Fn(usize) -> W + Sync),
    on_wave: &(impl Fn(usize, &mut W) + Sync),
    step: &(impl Fn(&mut W, I) -> R + Sync),
) where
    I: Send,
    R: Send,
{
    let mut state: Option<W> = None;
    let mut poisoned = false;
    let mut wave: u64 = 0;
    loop {
        let target = wave + 1;
        // Spin briefly, then park under the slot lock (the driver stores
        // the epoch while holding that lock, so the re-check inside the
        // lock cannot miss a wakeup).
        let mut spins = 0u32;
        loop {
            let e = mailbox.epoch.load(Ordering::Acquire);
            if e >= target {
                break;
            }
            spins += 1;
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
                continue;
            }
            let mut slot = mailbox.slot.lock().expect("lane mailbox");
            while mailbox.epoch.load(Ordering::Acquire) < target {
                slot = mailbox.wake.wait(slot).expect("lane mailbox");
            }
            break;
        }
        if mailbox.epoch.load(Ordering::Acquire) == SHUTDOWN {
            return;
        }
        wave = target;

        // Results reuse the slot vector's capacity from the previous wave
        // (the driver drains it in place, leaving the allocation behind).
        let (mut items, mut out) = {
            let mut slot = mailbox.slot.lock().expect("lane mailbox");
            (
                std::mem::take(&mut slot.items),
                std::mem::take(&mut slot.results),
            )
        };
        let mut payload: Option<Box<dyn Any + Send>> = None;
        // A helper that panicked earlier keeps acknowledging waves (so the
        // driver never hangs) but does no further work.
        if !poisoned {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let w = state.get_or_insert_with(|| make_worker(lane));
                on_wave(lane, w);
                for (i, item) in items.drain(..) {
                    out.push((i, step(w, item)));
                }
            }));
            if let Err(p) = outcome {
                poisoned = true;
                state = None;
                out.clear();
                payload = Some(p);
            }
        }
        {
            let mut slot = mailbox.slot.lock().expect("lane mailbox");
            slot.results = out;
            slot.items = items; // return the (drained) buffer's capacity
            if payload.is_some() && slot.panic.is_none() {
                slot.panic = payload;
            }
            mailbox.done.store(wave, Ordering::Release);
        }
        mailbox.ack.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn collect(handle_items: Vec<u64>, lanes: usize) -> Vec<u64> {
        run(
            lanes,
            |_lane| (),
            |_lane, ()| {},
            |(), x: u64| x * 10 + 1,
            |h| {
                assert_eq!(h.lanes(), lanes.max(1));
                let mut items = handle_items.clone();
                let mut results = Vec::new();
                h.dispatch(&mut items, &mut results, false);
                assert!(items.is_empty(), "dispatch drains the item buffer");
                results
            },
        )
    }

    #[test]
    fn results_come_back_in_item_order_for_any_lane_count() {
        let expected: Vec<u64> = (0..200).map(|x| x * 10 + 1).collect();
        for lanes in [1, 2, 3, 8] {
            assert_eq!(
                collect((0..200).collect(), lanes),
                expected,
                "lanes={lanes}"
            );
        }
    }

    #[test]
    fn single_lane_pool_spawns_no_threads_and_runs_inline() {
        // The step closure records which thread it ran on; with one lane
        // everything runs on the driving thread.
        let driver = std::thread::current().id();
        let out: Vec<bool> = run(
            1,
            |_lane| (),
            |_lane, ()| {},
            |(), _x: u32| std::thread::current().id() == driver,
            |h| {
                let mut results = Vec::new();
                h.dispatch(&mut (0..32).collect(), &mut results, false);
                results
            },
        );
        assert!(out.iter().all(|&on_driver| on_driver));
    }

    #[test]
    fn lane_state_persists_across_waves_and_on_wave_runs_once_per_engagement() {
        // Lane state counts its own on_wave calls; every item's result
        // carries that count. With `lanes` > item count per wave some
        // lanes idle — engaged lanes' counts equal their engagement count.
        let built = AtomicUsize::new(0);
        let waves: Vec<Vec<usize>> = run(
            2,
            |_lane| {
                built.fetch_add(1, Ordering::SeqCst);
                0usize // on_wave counter
            },
            |_lane, n| *n += 1,
            |n, _item: usize| *n,
            |h| {
                (0..3)
                    .map(|w| {
                        let mut results = Vec::new();
                        h.dispatch(&mut vec![w; 8], &mut results, false);
                        results
                    })
                    .collect()
            },
        );
        for (w, results) in waves.iter().enumerate() {
            for &r in results {
                assert_eq!(r, w + 1, "wave {w}: on_wave ran once per engagement");
            }
        }
        assert_eq!(built.load(Ordering::SeqCst), 2, "one state per lane");
    }

    #[test]
    fn unengaged_lanes_skip_on_wave_unless_engage_all() {
        // One item per wave engages only lane 0; helpers stay parked until
        // an engage_all wave syncs them.
        let synced = AtomicUsize::new(0);
        run(
            4,
            |_lane| (),
            |lane, ()| {
                if lane > 0 {
                    synced.fetch_add(1, Ordering::SeqCst);
                }
            },
            |(), _x: u32| (),
            |h| {
                let mut results = Vec::new();
                for _ in 0..5 {
                    h.dispatch(&mut vec![7], &mut results, false);
                }
                assert_eq!(synced.load(Ordering::SeqCst), 0, "helpers untouched");
                h.dispatch(&mut vec![7], &mut results, true);
                assert_eq!(synced.load(Ordering::SeqCst), 3, "engage_all syncs all");
            },
        );
    }

    #[test]
    fn empty_and_tiny_dispatches_work() {
        let out: Vec<Vec<u32>> = run(
            4,
            |_lane| (),
            |_lane, ()| {},
            |(), x: u32| x + 1,
            |h| {
                [vec![], vec![7], vec![1, 2]]
                    .into_iter()
                    .map(|mut items| {
                        let mut results = Vec::new();
                        h.dispatch(&mut items, &mut results, false);
                        results
                    })
                    .collect()
            },
        );
        assert_eq!(out, vec![vec![], vec![8], vec![2, 3]]);
    }

    #[test]
    fn many_waves_are_cheap_enough_to_run() {
        // Smoke for the persistent-pool point: thousands of dispatches
        // complete promptly for both the inline and the threaded shape.
        for lanes in [1, 2] {
            let total: u64 = run(
                lanes,
                |_lane| (),
                |_lane, ()| {},
                |(), x: u64| x,
                |h| {
                    let (mut items, mut results) = (Vec::new(), Vec::new());
                    let mut sum = 0;
                    for w in 0..2000u64 {
                        items.extend([w, w]);
                        h.dispatch(&mut items, &mut results, false);
                        sum += results.iter().sum::<u64>();
                    }
                    sum
                },
            );
            assert_eq!(total, 2 * (0..2000u64).sum::<u64>(), "lanes={lanes}");
        }
    }

    #[test]
    #[should_panic(expected = "deliberate step panic")]
    fn helper_panic_propagates_without_deadlock() {
        let _: () = run(
            3,
            |_lane| (),
            |_lane, ()| {},
            |(), x: u32| {
                assert!(x != 13, "deliberate step panic");
            },
            |h| {
                let mut results = Vec::new();
                h.dispatch(&mut (0..64).collect(), &mut results, false);
            },
        );
    }

    #[test]
    #[should_panic(expected = "deliberate lane-0 panic")]
    fn own_lane_panic_propagates_and_releases_helpers() {
        let _: () = run(
            2,
            |_lane| (),
            |_lane, ()| {},
            |(), x: u32| {
                assert!(x != 0, "deliberate lane-0 panic"); // item 0 → lane 0
            },
            |h| {
                let mut results = Vec::new();
                h.dispatch(&mut (0..64).collect(), &mut results, false);
            },
        );
    }

    #[test]
    #[should_panic(expected = "deliberate drive panic")]
    fn drive_panic_shuts_the_pool_down() {
        let _: () = run(
            2,
            |_lane| (),
            |_lane, ()| {},
            |(), _x: u32| (),
            |h| {
                let mut results = Vec::new();
                h.dispatch(&mut vec![1, 2, 3], &mut results, false);
                panic!("deliberate drive panic");
            },
        );
    }

    #[test]
    fn pool_survives_a_poisoned_helper_wave_then_reports() {
        // After a helper panic the wave still completes its collection;
        // the panic is re-raised by dispatch on the driving thread.
        let result = std::panic::catch_unwind(|| {
            run(
                2,
                |_lane| (),
                |_lane, ()| {},
                |(), x: u32| {
                    assert!(x.is_multiple_of(2), "helper boom"); // odd items → lane 1
                },
                |h| {
                    let mut results = Vec::new();
                    h.dispatch(&mut vec![0, 1, 2, 3], &mut results, false);
                },
            );
        });
        assert!(result.is_err());
    }
}
