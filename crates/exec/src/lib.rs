//! Bounded parallel execution of independent replications with
//! deterministic, replication-order merging.
//!
//! Both experiment drivers in this workspace (`vsched-san`'s
//! `run_replicated` and `vsched-core`'s `ExperimentBuilder`) funnel their
//! replications through this crate. Two primitives are provided:
//!
//! * [`run_indexed`] — run a fixed range of replication indices across a
//!   bounded worker pool and return the results in index order;
//! * [`run_converged`] — the convergence-driven loop: run *speculative
//!   batches* in parallel, merge observations into a
//!   [`ReplicationController`] in ascending replication order, and re-check
//!   the stopping rule between records.
//!
//! A third primitive lives in the [`lane`] module: a persistent pool of
//! long-lived helper threads ([`lane::LaneHandle`]) for *intra*-replication
//! sharded firing, where waves arrive far too often to pay a thread spawn
//! per dispatch (see `DESIGN.md` §19).
//!
//! # Determinism
//!
//! Results are **bit-identical for any worker count**, which the drivers
//! rely on and the workspace test suite asserts. The argument:
//!
//! 1. Replication `r`'s randomness derives purely from its index (callers
//!    seed with `base_seed + r`), never from scheduling order.
//! 2. [`run_indexed`] keys every result by its index and sorts the merge,
//!    so the output vector is independent of which worker ran what.
//! 3. [`run_converged`] may *launch* different batch sizes for different
//!    `jobs` values, but it consumes results strictly in ascending
//!    replication order and re-checks [`ReplicationController::needs_more`]
//!    before recording each one. The recorded sequence is therefore the
//!    longest prefix `0, 1, 2, …` of the replication stream that the
//!    stopping rule accepts — a property of the stream alone. Surplus
//!    speculative replications are discarded (bounded wasted work, never
//!    skewed statistics).
//! 4. On failure, the error returned is the one with the **lowest**
//!    replication index. Workers claim indices in ascending order, so every
//!    index below a failed one has also been claimed and finishes; the
//!    minimum over observed errors equals what a sequential run would hit
//!    first.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;

use vsched_stats::{ReplicationController, StoppingRule};

pub mod lane;

pub use lane::LaneHandle;

/// Resolves a jobs knob to a concrete worker count.
///
/// `Some(n)` with `n >= 1` is used as-is; `None` (or `Some(0)`) selects
/// [`std::thread::available_parallelism`], falling back to 1 if the
/// parallelism of the host cannot be determined.
#[must_use]
pub fn resolve_jobs(jobs: Option<usize>) -> usize {
    match jobs {
        Some(n) if n >= 1 => n,
        _ => thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// Runs `task` for every index in `start .. start + count` on at most
/// `jobs` worker threads, returning results in index order.
///
/// With `jobs == 1` (or `count <= 1`) the tasks run inline on the calling
/// thread with no pool. Otherwise `min(jobs, count)` scoped threads claim
/// indices from a shared atomic counter in ascending order.
///
/// # Errors
///
/// If any task fails, the error for the lowest failing index is returned
/// (identical to a sequential run); remaining workers stop claiming new
/// indices after the first failure.
///
/// # Panics
///
/// A panic inside `task` is propagated to the caller with its original
/// payload.
pub fn run_indexed<T, E, F>(jobs: usize, start: u64, count: usize, task: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(u64) -> Result<T, E> + Sync,
{
    if count == 0 {
        return Ok(Vec::new());
    }
    let jobs = jobs.clamp(1, count);
    if jobs == 1 {
        return (0..count).map(|i| task(start + i as u64)).collect();
    }

    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let per_worker: Vec<Vec<(usize, Result<T, E>)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        let result = task(start + i as u64);
                        if result.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        local.push((i, result));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });

    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let mut first_error: Option<(usize, E)> = None;
    for (i, result) in per_worker.into_iter().flatten() {
        match result {
            Ok(value) => slots[i] = Some(value),
            Err(e) => {
                if first_error.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_error = Some((i, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("every index below the claim counter completed"))
        .collect())
}

/// Convergence-driven replicated execution: speculative parallel batches,
/// merged in replication order under `rule`.
///
/// `task(rep)` runs replication `rep` (seeding from `rep` alone) and
/// `observe` extracts the per-replication observation vector that feeds the
/// [`ReplicationController`]. The controller is created lazily from the
/// first observation's arity.
///
/// Each round launches a batch sized to cover the stopping rule's remaining
/// minimum, or `jobs`, whichever is larger (capped at the rule's remaining
/// maximum), then records results in ascending order, re-checking
/// `needs_more` before every record. See the crate docs for why the outcome
/// is independent of `jobs`.
///
/// Returns the controller (intervals, replication count) and the outputs of
/// exactly the recorded replications, in order.
///
/// # Errors
///
/// The lowest-indexed task error, as for [`run_indexed`].
pub fn run_converged<T, E, F, O>(
    jobs: usize,
    rule: StoppingRule,
    task: F,
    observe: O,
) -> Result<(ReplicationController, Vec<T>), E>
where
    T: Send,
    E: Send,
    F: Fn(u64) -> Result<T, E> + Sync,
    O: Fn(&T) -> Vec<f64>,
{
    let jobs = jobs.max(1);
    let mut controller: Option<ReplicationController> = None;
    let mut recorded: Vec<T> = Vec::new();
    let mut next_rep: u64 = 0;
    while controller
        .as_ref()
        .is_none_or(ReplicationController::needs_more)
    {
        let done = recorded.len();
        let min_gap = rule.min_replications.saturating_sub(done);
        let cap = rule.max_replications.saturating_sub(done).max(1);
        let batch = min_gap.max(jobs).min(cap);
        let outputs = run_indexed(jobs, next_rep, batch, &task)?;
        next_rep += batch as u64;
        for out in outputs {
            let obs = observe(&out);
            let c = controller.get_or_insert_with(|| ReplicationController::new(rule, obs.len()));
            if !c.needs_more() {
                break; // surplus speculative replication: discard
            }
            c.record(&obs);
            recorded.push(out);
        }
    }
    let controller = controller.expect("at least one batch runs before convergence");
    Ok((controller, recorded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    #[test]
    fn resolve_jobs_explicit_and_auto() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
        assert!(resolve_jobs(Some(0)) >= 1);
    }

    #[test]
    fn run_indexed_orders_results_for_any_worker_count() {
        let task = |i: u64| -> Result<u64, ()> { Ok(i * i + 7) };
        let reference = run_indexed(1, 5, 40, task).unwrap();
        for jobs in [2, 3, 8, 64] {
            assert_eq!(run_indexed(jobs, 5, 40, task).unwrap(), reference);
        }
        assert_eq!(reference[0], 32, "starts at the offset index");
    }

    #[test]
    fn run_indexed_empty_range() {
        let out: Vec<u64> = run_indexed(4, 0, 0, |_| Ok::<_, ()>(0)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn run_indexed_reports_lowest_index_error() {
        let task = |i: u64| -> Result<u64, u64> {
            if i.is_multiple_of(3) && i > 0 {
                Err(i)
            } else {
                Ok(i)
            }
        };
        for jobs in [1, 2, 8] {
            assert_eq!(
                run_indexed(jobs, 0, 50, task).unwrap_err(),
                3,
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn run_indexed_bounds_concurrency() {
        let active = AtomicUsize::new(0);
        let high_water = AtomicUsize::new(0);
        let jobs = 3;
        run_indexed(jobs, 0, 64, |_| -> Result<(), ()> {
            let now = active.fetch_add(1, Ordering::SeqCst) + 1;
            high_water.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            active.fetch_sub(1, Ordering::SeqCst);
            Ok(())
        })
        .unwrap();
        let peak = high_water.load(Ordering::SeqCst);
        assert!(peak <= jobs, "peak concurrency {peak} exceeds jobs={jobs}");
        assert!(peak >= 2, "pool should actually run in parallel");
    }

    #[test]
    fn pool_overlaps_waiting_tasks() {
        // Latency-bound tasks overlap regardless of core count, so this
        // demonstrates >1.5x executor scaling even on a 1-CPU host. The
        // expected ratio is ~4x; 1.5 leaves slack for scheduler noise.
        let timed = |jobs: usize| {
            let start = std::time::Instant::now();
            run_indexed(jobs, 0, 16, |_| -> Result<(), ()> {
                std::thread::sleep(std::time::Duration::from_millis(5));
                Ok(())
            })
            .unwrap();
            start.elapsed()
        };
        let sequential = timed(1);
        let parallel = timed(4);
        let speedup = sequential.as_secs_f64() / parallel.as_secs_f64();
        assert!(
            speedup > 1.5,
            "4 workers over 16x5ms tasks: speedup {speedup:.2} <= 1.5 \
             (seq {sequential:?}, par {parallel:?})"
        );
    }

    #[test]
    #[should_panic(expected = "deliberate task panic")]
    fn run_indexed_propagates_panics() {
        let _ = run_indexed(4, 0, 8, |i| -> Result<u64, ()> {
            assert!(i != 5, "deliberate task panic");
            Ok(i)
        });
    }

    /// A replication stream whose observations tighten as the index grows:
    /// convergence lands mid-batch for wide pools, exercising the
    /// speculative-surplus discard.
    fn noisy_task(rep: u64) -> Result<f64, ()> {
        let wobble = if rep.is_multiple_of(2) { 1.0 } else { -1.0 };
        Ok(0.5 + wobble * 0.4 / (rep + 1) as f64)
    }

    #[test]
    fn run_converged_is_invariant_to_jobs() {
        let rule = StoppingRule::new(0.95, 0.05)
            .with_min_replications(3)
            .with_max_replications(200);
        let (c1, out1) = run_converged(1, rule, noisy_task, |x: &f64| vec![*x]).unwrap();
        for jobs in [2, 4, 16] {
            let (c, out) = run_converged(jobs, rule, noisy_task, |x: &f64| vec![*x]).unwrap();
            assert_eq!(c.replications(), c1.replications(), "jobs={jobs}");
            assert_eq!(out, out1, "jobs={jobs}");
            let (a, b) = (c.intervals().unwrap(), c1.intervals().unwrap());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.mean.to_bits(), y.mean.to_bits(), "jobs={jobs}");
                assert_eq!(x.half_width.to_bits(), y.half_width.to_bits());
            }
        }
    }

    #[test]
    fn run_converged_respects_min_and_max() {
        let tight = StoppingRule::new(0.95, 1e-12)
            .with_min_replications(2)
            .with_max_replications(9);
        let (c, out) = run_converged(4, tight, noisy_task, |x: &f64| vec![*x]).unwrap();
        assert_eq!(c.replications(), 9, "unconvergeable stream stops at max");
        assert_eq!(out.len(), 9);

        let loose = StoppingRule::new(0.95, 10.0)
            .with_min_replications(6)
            .with_max_replications(50);
        let (c, _) = run_converged(4, loose, noisy_task, |x: &f64| vec![*x]).unwrap();
        assert_eq!(c.replications(), 6, "converged at the minimum count");
    }

    #[test]
    fn run_converged_consumes_prefix_of_the_stream() {
        // Whatever was recorded must be replications 0..n in order.
        let seen = Mutex::new(Vec::new());
        let rule = StoppingRule::new(0.95, 0.05)
            .with_min_replications(3)
            .with_max_replications(100);
        let (c, out) = run_converged(
            8,
            rule,
            |rep| {
                seen.lock().unwrap().push(rep);
                noisy_task(rep)
            },
            |x: &f64| vec![*x],
        )
        .unwrap();
        let n = c.replications();
        assert_eq!(out.len(), n);
        let expected: Vec<f64> = (0..n as u64).map(|r| noisy_task(r).unwrap()).collect();
        assert_eq!(out, expected, "recorded outputs are the stream prefix");
        let launched = seen.lock().unwrap().len();
        assert!(
            launched >= n,
            "speculative launches at least cover the prefix"
        );
    }

    #[test]
    fn run_converged_propagates_errors() {
        let rule = StoppingRule::new(0.95, 1e-12)
            .with_min_replications(2)
            .with_max_replications(50);
        let err = run_converged(
            4,
            rule,
            |rep| {
                if rep == 7 {
                    Err("rep 7 failed")
                } else {
                    Ok((rep % 2) as f64) // alternating: never converges
                }
            },
            |x: &f64| vec![*x],
        )
        .unwrap_err();
        assert_eq!(err, "rep 7 failed");
    }
}
