//! # vsched-env — a gym-style environment over the vsched engines
//!
//! This crate turns either simulation engine into a sequential
//! decision-making environment: `reset(seed) → Observation`,
//! `step(action) → (Observation, reward, done, info)`. Decision epochs
//! are exactly the points where a [`vsched_core::SchedulingPolicy`] is
//! consulted today — one per tick, with the very views the policy would
//! see — so a learned agent and a built-in policy play the same game by
//! construction.
//!
//! Three layers:
//!
//! * [`Env`] ([`mod@env`]): the environment core. The engine runs on a
//!   dedicated thread behind a rendezvous relay policy; observations are
//!   masked to the agent's declared [`vsched_core::sched::ViewFields`];
//!   rewards are the paper's three metrics as a differenced weighted
//!   scalar ([`RewardWeights`]); episodes are bit-identically replayable
//!   ([`replay_actions`]) and fingerprinted ([`EpisodeEnd`]).
//! * [`proto`]: the JSON-lines wire protocol (externally tagged
//!   messages, one per line, versioned handshake).
//! * [`remote`]: transports and hosting. [`RemotePolicy`] hosts an
//!   external agent process; [`serve`] lets an external trainer host the
//!   environment. Every agent misbehavior is a typed [`PolicyFault`]
//!   that fails the episode, never the process.

pub mod env;
pub mod obs;
pub mod proto;
pub mod remote;

pub use env::{
    drive_policy, replay_actions, Env, EnvError, EpisodeEnd, EpisodeRun, Scenario, Step,
};
pub use obs::{mask_view, Observation, RewardWeights, StepInfo};
pub use proto::{Message, PROTO_VERSION};
pub use remote::{
    run_remote_episode, serve, EpisodeError, LineTransport, PolicyFault, RemotePolicy, ServeStats,
    DEFAULT_TIMEOUT,
};
