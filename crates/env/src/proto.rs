//! The JSON-lines wire protocol between an environment and an agent.
//!
//! One message per line, externally tagged by its lower-case variant name:
//!
//! ```json
//! {"hello": {"proto": 1, "role": "env", "name": "fig8_fairness", "fields": ["remaining_load", "sync_point", "timeslice_remaining", "last_scheduled_in", "vm_weight"]}}
//! {"hello": {"proto": 1, "role": "agent", "name": "random", "fields": []}}
//! {"reset": {"seed": 7}}
//! {"obs": {"reward": 0.0, "done": false, "info": {...}, "observation": {...}}}
//! {"act": {"preemptions": [], "assignments": [{"vcpu": 0, "pcpu": 0, "timeslice": 30}]}}
//! {"error": {"message": "..."}}
//! "bye"
//! ```
//!
//! Whichever side *hosts* the transport speaks first: it sends its
//! `hello`, the peer replies with its own, and version/role mismatches
//! are typed faults ([`crate::PolicyFault`]), never process aborts. The
//! agent's `fields` list is its snapshot-view declaration — the
//! environment masks observations to exactly those payload fields, so an
//! undeclared read is unobservable by construction (see [`crate::obs`]).

use serde::{Deserialize, Serialize};
use vsched_core::sched::ViewFields;
use vsched_core::ScheduleDecision;

use crate::obs::{Observation, StepInfo};

/// Protocol version; bumped on any wire-incompatible change.
pub const PROTO_VERSION: u32 = 1;

/// A protocol message. See the module docs for the wire shapes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Message {
    /// Handshake, exchanged once per connection (host first).
    Hello {
        /// Protocol version ([`PROTO_VERSION`]).
        proto: u32,
        /// `"env"` or `"agent"`.
        role: String,
        /// Display name (scenario name for envs, policy name for agents).
        name: String,
        /// For agents: the declared snapshot-view payload fields. For
        /// envs: the full declarable menu.
        fields: Vec<String>,
    },
    /// A decision epoch (env to agent). `reward`/`info` settle the
    /// *previous* action; on the first observation of an episode they are
    /// zero.
    Obs {
        /// Differenced weighted metric scalar for the previous step.
        reward: f64,
        /// Whether the episode ended; the observation is then terminal
        /// and no `act` must follow.
        done: bool,
        /// Per-metric breakdown behind the reward.
        info: StepInfo,
        /// The masked state snapshot.
        observation: Observation,
    },
    /// The agent's decision for the pending epoch (agent to env).
    Act {
        /// VCPUs to preempt this tick, before assignments.
        preemptions: Vec<usize>,
        /// New assignments, applied after preemptions.
        assignments: Vec<vsched_core::sched::Assignment>,
    },
    /// Starts an episode (client to a serving env).
    Reset {
        /// Episode seed; same seed, same episode.
        seed: u64,
    },
    /// A typed failure notice; the connection may continue (a serving
    /// env reports a failed episode this way and accepts a new `reset`).
    Error {
        /// Human-readable description.
        message: String,
    },
    /// Orderly goodbye; either side may send it before closing.
    Bye,
}

impl Message {
    /// Builds an `act` message from a decision.
    #[must_use]
    pub fn act(decision: &ScheduleDecision) -> Self {
        Message::Act {
            preemptions: decision.preemptions.clone(),
            assignments: decision.assignments.clone(),
        }
    }

    /// The decision carried by an `act` message, if this is one.
    #[must_use]
    pub fn into_decision(self) -> Option<ScheduleDecision> {
        match self {
            Message::Act {
                preemptions,
                assignments,
            } => Some(ScheduleDecision {
                preemptions,
                assignments,
            }),
            _ => None,
        }
    }
}

/// Encodes a message as one newline-terminated JSON line.
#[must_use]
pub fn encode(msg: &Message) -> String {
    let mut line = serde_json::to_string(msg).expect("protocol messages always serialize");
    line.push('\n');
    line
}

/// Decodes one line into a message.
///
/// # Errors
///
/// The parser's error string (position-annotated) for malformed JSON or
/// a JSON value that is no protocol message.
pub fn decode(line: &str) -> Result<Message, String> {
    serde_json::from_str(line.trim()).map_err(|e| e.to_string())
}

/// Parses an agent's declared field names into a [`ViewFields`] mask.
///
/// # Errors
///
/// The offending name, for anything outside the declarable menu — a
/// handshake fault, caught before any observation is sent.
pub fn fields_from_names(names: &[String]) -> Result<ViewFields, String> {
    let mut fields = ViewFields::none();
    for name in names {
        match name.as_str() {
            "remaining_load" => fields.remaining_load = true,
            "sync_point" => fields.sync_point = true,
            "timeslice_remaining" => fields.timeslice_remaining = true,
            "last_scheduled_in" => fields.last_scheduled_in = true,
            "vm_weight" => fields.vm_weight = true,
            other => return Err(format!("unknown view field {other:?}")),
        }
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsched_core::sched::Assignment;

    #[test]
    fn messages_round_trip_through_json_lines() {
        let msgs = [
            Message::Hello {
                proto: PROTO_VERSION,
                role: "agent".to_string(),
                name: "random".to_string(),
                fields: vec!["sync_point".to_string()],
            },
            Message::Act {
                preemptions: vec![2],
                assignments: vec![Assignment {
                    vcpu: 0,
                    pcpu: 1,
                    timeslice: 30,
                }],
            },
            Message::Reset { seed: 7 },
            Message::Error {
                message: "boom".to_string(),
            },
            Message::Bye,
        ];
        for msg in msgs {
            let line = encode(&msg);
            assert!(line.ends_with('\n') && !line[..line.len() - 1].contains('\n'));
            assert_eq!(decode(&line).unwrap(), msg, "{line}");
        }
    }

    #[test]
    fn act_converts_to_and_from_decisions() {
        let mut d = ScheduleDecision::none();
        d.preempt(1);
        d.assign(0, 1, 5);
        let msg = Message::act(&d);
        assert_eq!(msg.clone().into_decision().unwrap(), d);
        assert_eq!(Message::Bye.into_decision(), None);
        let line = encode(&msg);
        assert_eq!(decode(&line).unwrap().into_decision().unwrap(), d);
    }

    #[test]
    fn garbage_and_non_protocol_json_fail_with_a_reason() {
        assert!(decode("{not json").is_err());
        assert!(decode("{\"frobnicate\": {}}").is_err());
        assert!(decode("42").is_err());
    }

    #[test]
    fn field_names_round_trip_and_reject_unknowns() {
        let all = ViewFields::all();
        let names: Vec<String> = all.declared().iter().map(|s| (*s).to_string()).collect();
        assert_eq!(fields_from_names(&names).unwrap(), all);
        assert_eq!(fields_from_names(&[]).unwrap(), ViewFields::none());
        let err = fields_from_names(&["load".to_string()]).unwrap_err();
        assert!(err.contains("load"), "{err}");
    }
}
