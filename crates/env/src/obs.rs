//! Observations, rewards, and per-step info.
//!
//! The observation space is derived **mechanically** from the agent's
//! declared [`ViewFields`]: every undeclared [`VcpuView`] payload field is
//! replaced by its canonical default before the view leaves the
//! environment, so an undeclared read is unobservable *by construction* —
//! the agent only ever sees a constant. Structural fields (`id`, `status`,
//! `assigned_pcpu`) are always visible, exactly as in the in-process
//! snapshot-view contract checked by `vsched-analyze`.

use serde::{Deserialize, Serialize};
use vsched_core::sched::ViewFields;
use vsched_core::{PcpuView, SampleMetrics, VcpuView};

/// One observation handed to the agent at a decision epoch — the masked
/// analogue of the `(vcpus, pcpus, timestamp, default_timeslice)` argument
/// list of [`vsched_core::SchedulingPolicy::schedule`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The current tick.
    pub timestamp: u64,
    /// The configured timeslice, which agents typically pass through.
    pub default_timeslice: u64,
    /// Names of the payload fields that carry live values; every other
    /// payload field in `vcpus` holds its canonical default.
    pub fields: Vec<String>,
    /// Every VCPU, indexed by global id, masked to the declared fields.
    pub vcpus: Vec<VcpuView>,
    /// Every PCPU, indexed by id (structural only — never masked).
    pub pcpus: Vec<PcpuView>,
}

impl Observation {
    /// Builds an observation by masking true engine views to `fields`.
    #[must_use]
    pub fn masked(
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
        timestamp: u64,
        default_timeslice: u64,
        fields: ViewFields,
    ) -> Self {
        Observation {
            timestamp,
            default_timeslice,
            fields: fields.declared().iter().map(|s| (*s).to_string()).collect(),
            vcpus: vcpus.iter().map(|v| mask_view(*v, fields)).collect(),
            pcpus: pcpus.to_vec(),
        }
    }

    /// The views exactly as an in-process policy would receive them under
    /// the same snapshot-view contract. Because masking only touches
    /// payload fields a contract-honoring policy never reads, feeding
    /// these to such a policy reproduces its in-process decision trace
    /// bit-for-bit.
    #[must_use]
    pub fn to_views(&self) -> (&[VcpuView], &[PcpuView]) {
        (&self.vcpus, &self.pcpus)
    }

    /// Order-insensitive-free digest of the observation content, for
    /// replay comparison.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.push(self.timestamp);
        h.push(self.default_timeslice);
        for v in &self.vcpus {
            h.push(v.id.global as u64);
            h.push(v.status.to_token() as u64);
            h.push(v.remaining_load);
            h.push(u64::from(v.sync_point));
            h.push_opt(v.assigned_pcpu.map(|p| p as u64));
            h.push(v.timeslice_remaining);
            h.push_opt(v.last_scheduled_in);
            h.push(u64::from(v.vm_weight));
        }
        for p in &self.pcpus {
            h.push(p.id as u64);
            h.push_opt(p.assigned.map(|id| id.global as u64));
        }
        h.finish()
    }
}

/// Replaces every payload field not declared in `fields` with its
/// canonical default: `remaining_load = 0`, `sync_point = false`,
/// `timeslice_remaining = 0`, `last_scheduled_in = None`, `vm_weight = 1`.
#[must_use]
pub fn mask_view(mut v: VcpuView, fields: ViewFields) -> VcpuView {
    if !fields.remaining_load {
        v.remaining_load = 0;
    }
    if !fields.sync_point {
        v.sync_point = false;
    }
    if !fields.timeslice_remaining {
        v.timeslice_remaining = 0;
    }
    if !fields.last_scheduled_in {
        v.last_scheduled_in = None;
    }
    if !fields.vm_weight {
        v.vm_weight = 1;
    }
    v
}

/// Weights of the paper's three system-level metrics in the scalar reward.
///
/// The reward at each step is the weighted sum over the *cumulative*
/// post-warm-up metric averages, differenced against the previous step —
/// so episode return telescopes to the weighted sum of the final averages,
/// the same quantities `vsched run` reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardWeights {
    /// Weight of average VCPU utilization (throughput).
    pub vcpu_utilization: f64,
    /// Weight of average VCPU availability (fairness).
    pub vcpu_availability: f64,
    /// Weight of average PCPU utilization.
    pub pcpu_utilization: f64,
}

impl Default for RewardWeights {
    /// Equal weights over the paper's three metrics.
    fn default() -> Self {
        RewardWeights {
            vcpu_utilization: 1.0,
            vcpu_availability: 1.0,
            pcpu_utilization: 1.0,
        }
    }
}

impl RewardWeights {
    /// The weighted scalar of a cumulative metrics sample.
    #[must_use]
    pub fn scalar(&self, metrics: &SampleMetrics) -> f64 {
        self.vcpu_utilization * metrics.avg_vcpu_utilization()
            + self.vcpu_availability * metrics.avg_vcpu_availability()
            + self.pcpu_utilization * metrics.avg_pcpu_utilization()
    }
}

/// Per-step metric breakdown accompanying the scalar reward.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StepInfo {
    /// Whether the warm-up phase is over (rewards are zero before it is).
    pub warmed_up: bool,
    /// Cumulative average VCPU utilization since warm-up, if warmed up.
    pub vcpu_utilization: f64,
    /// Cumulative average VCPU availability since warm-up, if warmed up.
    pub vcpu_availability: f64,
    /// Cumulative average PCPU utilization since warm-up, if warmed up.
    pub pcpu_utilization: f64,
}

impl StepInfo {
    /// Builds the breakdown from a cumulative sample (`None` during
    /// warm-up).
    #[must_use]
    pub fn from_metrics(metrics: Option<&SampleMetrics>) -> Self {
        match metrics {
            None => StepInfo::default(),
            Some(m) => StepInfo {
                warmed_up: true,
                vcpu_utilization: m.avg_vcpu_utilization(),
                vcpu_availability: m.avg_vcpu_availability(),
                pcpu_utilization: m.avg_pcpu_utilization(),
            },
        }
    }
}

/// FNV-1a accumulator used for observation and episode fingerprints.
#[derive(Debug)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn push(&mut self, x: u64) {
        for byte in x.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Distinguishes `None` from `Some(0)`.
    pub(crate) fn push_opt(&mut self, x: Option<u64>) {
        match x {
            None => self.push(u64::MAX),
            Some(v) => {
                self.push(1);
                self.push(v);
            }
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsched_core::{VcpuId, VcpuStatus};

    fn view(global: usize) -> VcpuView {
        VcpuView {
            id: VcpuId {
                vm: 0,
                sibling: global,
                global,
            },
            status: VcpuStatus::Busy,
            remaining_load: 7,
            sync_point: true,
            assigned_pcpu: Some(0),
            timeslice_remaining: 3,
            last_scheduled_in: Some(11),
            vm_weight: 4,
            present: true,
        }
    }

    #[test]
    fn masking_zeroes_exactly_the_undeclared_fields() {
        let mut fields = ViewFields::none();
        fields.sync_point = true;
        let m = mask_view(view(0), fields);
        assert_eq!(m.remaining_load, 0);
        assert!(m.sync_point, "declared field survives");
        assert_eq!(m.timeslice_remaining, 0);
        assert_eq!(m.last_scheduled_in, None);
        assert_eq!(m.vm_weight, 1);
        // Structural fields are never touched.
        assert_eq!(m.id, view(0).id);
        assert_eq!(m.status, VcpuStatus::Busy);
        assert_eq!(m.assigned_pcpu, Some(0));

        let full = mask_view(view(0), ViewFields::all());
        assert_eq!(full, view(0), "full declaration is the identity");
    }

    #[test]
    fn observation_lists_declared_fields_and_digests_content() {
        let pcpus = [PcpuView {
            id: 0,
            assigned: Some(view(0).id),
        }];
        let a = Observation::masked(&[view(0)], &pcpus, 5, 30, ViewFields::all());
        assert_eq!(a.fields.len(), 5);
        let b = Observation::masked(&[view(0)], &pcpus, 5, 30, ViewFields::all());
        assert_eq!(a.digest(), b.digest());
        let c = Observation::masked(&[view(0)], &pcpus, 6, 30, ViewFields::all());
        assert_ne!(a.digest(), c.digest());
        let masked = Observation::masked(&[view(0)], &pcpus, 5, 30, ViewFields::none());
        assert_ne!(a.digest(), masked.digest());
        assert!(masked.fields.is_empty());
    }

    #[test]
    fn reward_scalar_weights_the_three_paper_metrics() {
        let m = SampleMetrics {
            vcpu_availability: vec![0.5, 0.7],
            vcpu_utilization: vec![0.4, 0.6],
            pcpu_utilization: vec![0.9],
            vcpu_spin: vec![0.0, 0.0],
        };
        let w = RewardWeights::default();
        let expected = 0.5 + 0.6 + 0.9;
        assert!((w.scalar(&m) - expected).abs() < 1e-12);
        let only_fairness = RewardWeights {
            vcpu_utilization: 0.0,
            vcpu_availability: 2.0,
            pcpu_utilization: 0.0,
        };
        assert!((only_fairness.scalar(&m) - 1.2).abs() < 1e-12);
        let info = StepInfo::from_metrics(Some(&m));
        assert!(info.warmed_up);
        assert!((info.pcpu_utilization - 0.9).abs() < 1e-12);
        assert!(!StepInfo::from_metrics(None).warmed_up);
    }
}
