//! Remote agents over JSON lines: transports, faults, and the two
//! hosting directions.
//!
//! * **Env hosts agent** ([`RemotePolicy`]): the environment spawns the
//!   agent as a child process (or connects to its Unix socket), drives
//!   the episode, and consults the agent at every decision epoch.
//! * **Agent hosts env** ([`serve`]): an external trainer owns the loop —
//!   it sends `reset`/`act` messages and the environment answers with
//!   observations. `vsched env --serve` exposes this over stdio or a
//!   Unix socket.
//!
//! In both directions the environment side sends its `hello` first and
//! the peer replies with its own. Every way an agent can misbehave —
//! garbage bytes, wrong protocol version, a stall, an illegal action, a
//! vanished process — becomes a typed [`PolicyFault`] that fails the
//! *episode* (a tournament forfeit), never the process.

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::time::Duration;

use vsched_core::sched::ViewFields;
use vsched_core::{CoreError, ScheduleDecision};

use crate::env::{Env, EnvError, EpisodeRun, Scenario};
use crate::obs::{Fnv, Observation, StepInfo};
use crate::proto::{self, Message, PROTO_VERSION};

/// Default per-message timeout for hosted agents.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// Every way a remote agent can fail an episode. Faults are *outcomes*,
/// not process errors: the driver records a forfeit and moves on.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyFault {
    /// The transport broke (pipe closed, write failed, spawn failed).
    Io(String),
    /// A line arrived that is not a protocol message.
    Parse {
        /// The offending line (truncated for display).
        line: String,
        /// The parser's complaint.
        detail: String,
    },
    /// The handshake was malformed (wrong role, unknown fields, or no
    /// `hello` at all).
    Handshake(String),
    /// The peer speaks a different protocol version.
    WrongVersion {
        /// The peer's version.
        got: u32,
        /// Our version.
        want: u32,
    },
    /// The agent did not answer within the per-step timeout.
    Timeout {
        /// The configured limit, in milliseconds.
        after_ms: u64,
    },
    /// The agent's action failed `validate_decision`.
    IllegalAction(String),
    /// The agent reported an error or sent a message that makes no sense
    /// here (e.g. an `act` during handshake).
    Agent(String),
    /// The agent hung up mid-episode.
    Eof,
}

impl std::fmt::Display for PolicyFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyFault::Io(e) => write!(f, "transport error: {e}"),
            PolicyFault::Parse { line, detail } => {
                write!(f, "unparseable message {line:?}: {detail}")
            }
            PolicyFault::Handshake(e) => write!(f, "handshake failed: {e}"),
            PolicyFault::WrongVersion { got, want } => {
                write!(
                    f,
                    "protocol version mismatch: agent speaks v{got}, host speaks v{want}"
                )
            }
            PolicyFault::Timeout { after_ms } => {
                write!(f, "agent did not answer within {after_ms} ms")
            }
            PolicyFault::IllegalAction(e) => write!(f, "illegal action: {e}"),
            PolicyFault::Agent(e) => write!(f, "agent fault: {e}"),
            PolicyFault::Eof => write!(f, "agent hung up mid-episode"),
        }
    }
}

impl std::error::Error for PolicyFault {}

/// A newline-delimited message transport with a per-receive timeout.
///
/// Reads happen on a dedicated thread feeding a channel, so the timeout
/// is uniform across child stdio and sockets; the thread exits when the
/// peer closes its end or the transport is dropped.
pub struct LineTransport {
    writer: Box<dyn Write + Send>,
    lines: Receiver<std::io::Result<String>>,
    timeout: Option<Duration>,
    child: Option<Child>,
}

impl std::fmt::Debug for LineTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineTransport")
            .field("timeout", &self.timeout)
            .field("child", &self.child.as_ref().map(Child::id))
            .finish_non_exhaustive()
    }
}

impl LineTransport {
    /// Wraps an arbitrary reader/writer pair (`timeout = None` blocks
    /// forever, the right choice when the peer paces the conversation).
    pub fn new(
        reader: impl Read + Send + 'static,
        writer: impl Write + Send + 'static,
        timeout: Option<Duration>,
    ) -> Self {
        let (tx, rx) = mpsc::channel();
        std::thread::Builder::new()
            .name("vsched-env-reader".to_string())
            .spawn(move || {
                let mut reader = BufReader::new(reader);
                loop {
                    let mut line = String::new();
                    match reader.read_line(&mut line) {
                        Ok(0) => break,
                        Ok(_) => {
                            if tx.send(Ok(line)).is_err() {
                                break;
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            break;
                        }
                    }
                }
            })
            .expect("spawn reader thread");
        LineTransport {
            writer: Box::new(writer),
            lines: rx,
            timeout,
            child: None,
        }
    }

    /// Spawns `command` through `sh -c` with piped stdin/stdout (stderr
    /// passes through) and speaks to it with the given per-step timeout.
    ///
    /// # Errors
    ///
    /// [`PolicyFault::Io`] if the process cannot be spawned.
    pub fn spawn(command: &str, timeout: Duration) -> Result<Self, PolicyFault> {
        let mut child = Command::new("sh")
            .arg("-c")
            .arg(command)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| PolicyFault::Io(format!("spawn {command:?}: {e}")))?;
        let stdout = child.stdout.take().expect("piped stdout");
        let stdin = child.stdin.take().expect("piped stdin");
        let mut transport = LineTransport::new(stdout, stdin, Some(timeout));
        transport.child = Some(child);
        Ok(transport)
    }

    /// Connects to a Unix socket at `path`.
    ///
    /// # Errors
    ///
    /// [`PolicyFault::Io`] if the connection fails.
    pub fn connect_unix(path: &std::path::Path, timeout: Duration) -> Result<Self, PolicyFault> {
        let stream = std::os::unix::net::UnixStream::connect(path)
            .map_err(|e| PolicyFault::Io(format!("connect {}: {e}", path.display())))?;
        let reader = stream
            .try_clone()
            .map_err(|e| PolicyFault::Io(e.to_string()))?;
        Ok(LineTransport::new(reader, stream, Some(timeout)))
    }

    /// Wraps an accepted Unix stream (server side).
    ///
    /// # Errors
    ///
    /// [`PolicyFault::Io`] if the stream cannot be cloned.
    pub fn from_unix(
        stream: std::os::unix::net::UnixStream,
        timeout: Option<Duration>,
    ) -> Result<Self, PolicyFault> {
        let reader = stream
            .try_clone()
            .map_err(|e| PolicyFault::Io(e.to_string()))?;
        Ok(LineTransport::new(reader, stream, timeout))
    }

    /// Sends one message.
    ///
    /// # Errors
    ///
    /// [`PolicyFault::Io`] on a broken pipe.
    pub fn send(&mut self, msg: &Message) -> Result<(), PolicyFault> {
        let line = proto::encode(msg);
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| PolicyFault::Io(e.to_string()))
    }

    /// Receives one message, honoring the timeout.
    ///
    /// # Errors
    ///
    /// [`PolicyFault::Timeout`], [`PolicyFault::Eof`],
    /// [`PolicyFault::Io`], or [`PolicyFault::Parse`].
    pub fn recv(&mut self) -> Result<Message, PolicyFault> {
        let line = match self.timeout {
            Some(limit) => match self.lines.recv_timeout(limit) {
                Ok(line) => line,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(PolicyFault::Timeout {
                        after_ms: limit.as_millis() as u64,
                    })
                }
                Err(RecvTimeoutError::Disconnected) => return Err(PolicyFault::Eof),
            },
            None => self.lines.recv().map_err(|_| PolicyFault::Eof)?,
        };
        let line = line.map_err(|e| PolicyFault::Io(e.to_string()))?;
        proto::decode(&line).map_err(|detail| PolicyFault::Parse {
            line: truncate_for_display(&line),
            detail,
        })
    }
}

impl Drop for LineTransport {
    fn drop(&mut self) {
        if let Some(mut child) = self.child.take() {
            // Closing stdin is usually enough; kill covers agents that
            // ignore EOF. The wait reaps the zombie either way.
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn truncate_for_display(line: &str) -> String {
    let line = line.trim_end();
    if line.len() <= 120 {
        line.to_string()
    } else {
        let mut cut = 120;
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &line[..cut])
    }
}

/// An agent hosted by the environment: handshake on construction, one
/// decision per [`RemotePolicy::act`] call.
#[derive(Debug)]
pub struct RemotePolicy {
    transport: LineTransport,
    name: String,
    fields: ViewFields,
}

impl RemotePolicy {
    /// Performs the handshake over an established transport: sends the
    /// env `hello` (full field menu), expects the agent's `hello` back.
    ///
    /// # Errors
    ///
    /// [`PolicyFault::WrongVersion`], [`PolicyFault::Handshake`], or any
    /// transport fault.
    pub fn connect(mut transport: LineTransport, env_name: &str) -> Result<Self, PolicyFault> {
        transport.send(&Message::Hello {
            proto: PROTO_VERSION,
            role: "env".to_string(),
            name: env_name.to_string(),
            fields: ViewFields::all()
                .declared()
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
        })?;
        match transport.recv()? {
            Message::Hello {
                proto,
                role,
                name,
                fields,
            } => {
                if proto != PROTO_VERSION {
                    return Err(PolicyFault::WrongVersion {
                        got: proto,
                        want: PROTO_VERSION,
                    });
                }
                if role != "agent" {
                    return Err(PolicyFault::Handshake(format!(
                        "expected role \"agent\", got {role:?}"
                    )));
                }
                let fields = proto::fields_from_names(&fields).map_err(PolicyFault::Handshake)?;
                Ok(RemotePolicy {
                    transport,
                    name,
                    fields,
                })
            }
            Message::Error { message } => Err(PolicyFault::Agent(message)),
            other => Err(PolicyFault::Handshake(format!(
                "expected hello, got {other:?}"
            ))),
        }
    }

    /// Spawns `command` and completes the handshake.
    ///
    /// # Errors
    ///
    /// Spawn and handshake faults.
    pub fn spawn(command: &str, env_name: &str, timeout: Duration) -> Result<Self, PolicyFault> {
        RemotePolicy::connect(LineTransport::spawn(command, timeout)?, env_name)
    }

    /// The agent's self-reported name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The agent's declared snapshot-view fields.
    #[must_use]
    pub fn fields(&self) -> ViewFields {
        self.fields
    }

    /// Ships an observation and waits for the agent's decision.
    ///
    /// # Errors
    ///
    /// Transport faults, or [`PolicyFault::Agent`] for an `error` reply
    /// or an out-of-place message.
    pub fn act(
        &mut self,
        reward: f64,
        info: StepInfo,
        observation: &Observation,
    ) -> Result<ScheduleDecision, PolicyFault> {
        self.transport.send(&Message::Obs {
            reward,
            done: false,
            info,
            observation: observation.clone(),
        })?;
        match self.transport.recv()? {
            Message::Act {
                preemptions,
                assignments,
            } => Ok(ScheduleDecision {
                preemptions,
                assignments,
            }),
            Message::Error { message } => Err(PolicyFault::Agent(message)),
            Message::Bye => Err(PolicyFault::Eof),
            other => Err(PolicyFault::Agent(format!("expected act, got {other:?}"))),
        }
    }

    /// Ships the terminal observation and says goodbye (best effort — the
    /// episode is already complete, so transport errors are ignored).
    pub fn finish(&mut self, reward: f64, info: StepInfo, observation: &Observation) {
        let _ = self.transport.send(&Message::Obs {
            reward,
            done: true,
            info,
            observation: observation.clone(),
        });
        let _ = self.transport.send(&Message::Bye);
    }

    /// Notifies the agent of an episode-ending fault (best effort).
    pub fn fail(&mut self, fault: &PolicyFault) {
        let _ = self.transport.send(&Message::Error {
            message: fault.to_string(),
        });
        let _ = self.transport.send(&Message::Bye);
    }
}

/// Turns an environment failure into the agent's fault where it is one:
/// a rejected decision is an [`PolicyFault::IllegalAction`]; everything
/// else stays an environment error.
fn classify(e: EnvError) -> Result<PolicyFault, EnvError> {
    match e {
        EnvError::Engine(CoreError::PolicyViolation { policy, reason }) => {
            Ok(PolicyFault::IllegalAction(format!("{policy}: {reason}")))
        }
        other => Err(other),
    }
}

/// How a remotely driven episode ended short of success.
#[derive(Debug)]
pub enum EpisodeError {
    /// The agent misbehaved — a forfeit, charged to the agent.
    Fault(PolicyFault),
    /// The environment itself failed — a bug or bad scenario, charged to
    /// nobody.
    Env(EnvError),
}

impl std::fmt::Display for EpisodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpisodeError::Fault(fault) => write!(f, "{fault}"),
            EpisodeError::Env(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EpisodeError {}

/// Drives one full episode with a hosted remote agent. On any agent
/// fault the episode is failed (the agent is told, best effort) and the
/// fault returned; the environment and process survive.
///
/// # Errors
///
/// [`EpisodeError::Fault`] for agent misbehavior (including illegal
/// actions), [`EpisodeError::Env`] for environment failures.
pub fn run_remote_episode(
    env: &mut Env,
    agent: &mut RemotePolicy,
    seed: u64,
) -> Result<EpisodeRun, EpisodeError> {
    let run = (|| -> Result<EpisodeRun, EpisodeError> {
        let mut obs = env.reset(seed).map_err(EpisodeError::Env)?;
        let mut digest = Fnv::new();
        let mut actions = Vec::new();
        let mut rewards = Vec::new();
        let mut reward = 0.0;
        let mut info = StepInfo::default();
        loop {
            digest.push(obs.digest());
            let action = agent.act(reward, info, &obs).map_err(EpisodeError::Fault)?;
            let step = env.step(&action).map_err(|e| match classify(e) {
                Ok(fault) => EpisodeError::Fault(fault),
                Err(env_err) => EpisodeError::Env(env_err),
            })?;
            actions.push(action);
            rewards.push(step.reward);
            if step.done {
                digest.push(step.obs.digest());
                agent.finish(step.reward, step.info, &step.obs);
                let end = env.last_end().cloned().expect("episode end after done");
                return Ok(EpisodeRun {
                    actions,
                    rewards,
                    obs_digest: digest.finish(),
                    end,
                });
            }
            obs = step.obs;
            reward = step.reward;
            info = step.info;
        }
    })();
    if let Err(EpisodeError::Fault(fault)) = &run {
        agent.fail(fault);
    }
    run
}

/// Statistics of one [`serve`] session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Episodes completed to their terminal observation.
    pub episodes: usize,
    /// Episodes failed by a client fault (reported, then survived).
    pub faults: usize,
}

/// Hosts the environment for an external trainer (the agent-hosts-env
/// direction): answers `reset` with the first observation and `act` with
/// the next one, until the client says `bye` or hangs up.
///
/// Client faults (garbage lines, illegal actions, acts without a reset)
/// are answered with an `error` message and fail at most the current
/// episode — the session keeps serving.
///
/// # Errors
///
/// [`PolicyFault`] only for handshake failures and transport breakage;
/// [`EnvError`]-level engine failures are reported to the client and
/// surface here only if the scenario itself is unrunnable.
pub fn serve(
    transport: &mut LineTransport,
    scenario: &Scenario,
    env_name: &str,
) -> Result<ServeStats, PolicyFault> {
    transport.send(&Message::Hello {
        proto: PROTO_VERSION,
        role: "env".to_string(),
        name: env_name.to_string(),
        fields: ViewFields::all()
            .declared()
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
    })?;
    let fields = match transport.recv()? {
        Message::Hello { proto, fields, .. } => {
            if proto != PROTO_VERSION {
                let fault = PolicyFault::WrongVersion {
                    got: proto,
                    want: PROTO_VERSION,
                };
                let _ = transport.send(&Message::Error {
                    message: fault.to_string(),
                });
                return Err(fault);
            }
            match proto::fields_from_names(&fields) {
                Ok(fields) => fields,
                Err(e) => {
                    let _ = transport.send(&Message::Error { message: e.clone() });
                    return Err(PolicyFault::Handshake(e));
                }
            }
        }
        other => {
            let fault = PolicyFault::Handshake(format!("expected hello, got {other:?}"));
            let _ = transport.send(&Message::Error {
                message: fault.to_string(),
            });
            return Err(fault);
        }
    };

    let mut env = Env::new(scenario.clone())
        .fields(fields)
        .agent_name("remote-client");
    let mut stats = ServeStats::default();
    let mut live = false;
    loop {
        let msg = match transport.recv() {
            Ok(msg) => msg,
            Err(PolicyFault::Eof) => return Ok(stats),
            Err(PolicyFault::Parse { line, detail }) => {
                transport.send(&Message::Error {
                    message: PolicyFault::Parse { line, detail }.to_string(),
                })?;
                if live {
                    stats.faults += 1;
                    live = false;
                }
                continue;
            }
            Err(fault) => return Err(fault),
        };
        match msg {
            Message::Reset { seed } => match env.reset(seed) {
                Ok(obs) => {
                    live = true;
                    transport.send(&Message::Obs {
                        reward: 0.0,
                        done: false,
                        info: StepInfo::default(),
                        observation: obs,
                    })?;
                }
                Err(e) => {
                    transport.send(&Message::Error {
                        message: e.to_string(),
                    })?;
                }
            },
            Message::Act {
                preemptions,
                assignments,
            } => {
                if !live {
                    transport.send(&Message::Error {
                        message: "act without a live episode: send reset first".to_string(),
                    })?;
                    continue;
                }
                let action = ScheduleDecision {
                    preemptions,
                    assignments,
                };
                match env.step(&action) {
                    Ok(step) => {
                        if step.done {
                            live = false;
                            stats.episodes += 1;
                        }
                        transport.send(&Message::Obs {
                            reward: step.reward,
                            done: step.done,
                            info: step.info,
                            observation: step.obs,
                        })?;
                    }
                    Err(e) => {
                        live = false;
                        stats.faults += 1;
                        let message = match classify(e) {
                            Ok(fault) => fault.to_string(),
                            Err(env_err) => env_err.to_string(),
                        };
                        transport.send(&Message::Error { message })?;
                    }
                }
            }
            Message::Bye => return Ok(stats),
            other => {
                transport.send(&Message::Error {
                    message: format!("unexpected message {other:?}"),
                })?;
            }
        }
    }
}
