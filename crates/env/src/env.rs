//! The environment core: `reset`/`step` over either engine.
//!
//! # How decision epochs are surfaced
//!
//! Both engines *pull*: they call [`SchedulingPolicy::schedule`] once per
//! tick, from inside `tick()` (direct engine) or the SAN `Scheduling_Func`
//! output gate. A gym-style interface needs the opposite — the caller
//! *pushes* an action and receives the next observation. The inversion is
//! a rendezvous: the engine runs on its own thread behind a
//! `RelayPolicy`, an ordinary `SchedulingPolicy` whose `schedule()`
//! ships the views over a channel and blocks until the environment sends
//! the action back. Every decision epoch the agent sees is therefore
//! *exactly* a point where the in-process policy would have been
//! consulted, with exactly the views it would have received (masked to the
//! declared fields — see [`crate::obs`]).
//!
//! The engine thread holds no locks while blocked and the environment
//! reads shared metrics only while the engine is blocked, so the
//! rendezvous is race-free by construction. Episodes are bit-identically
//! replayable: same scenario, same seed, same action sequence — same
//! observation, reward, and fingerprint streams, on either engine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use vsched_core::direct::DirectSim;
use vsched_core::san_model::SanSystem;
use vsched_core::sched::ViewFields;
use vsched_core::{
    CoreError, Engine, PcpuView, SampleMetrics, ScheduleDecision, SchedulingPolicy, SystemConfig,
    VcpuView,
};

use crate::obs::{Fnv, Observation, RewardWeights, StepInfo};

/// Everything that defines an episode except the seed and the agent: the
/// machine, the engine, and the warm-up/measurement split.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The simulated machine and workload.
    pub config: SystemConfig,
    /// Which engine executes the model.
    pub engine: Engine,
    /// Warm-up ticks: the agent is consulted (policy state evolves) but
    /// rewards are zero and metrics discarded, as in `vsched run`.
    pub warmup: u64,
    /// Measured ticks after warm-up.
    pub horizon: u64,
}

impl Scenario {
    /// A scenario with the `vsched run` defaults (SAN engine, 1 000
    /// warm-up ticks, 20 000 measured ticks).
    #[must_use]
    pub fn new(config: SystemConfig) -> Self {
        Scenario {
            config,
            engine: Engine::San,
            warmup: 1_000,
            horizon: 20_000,
        }
    }

    /// Selects the engine.
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the warm-up tick count.
    #[must_use]
    pub fn warmup(mut self, ticks: u64) -> Self {
        self.warmup = ticks;
        self
    }

    /// Sets the measured tick count.
    #[must_use]
    pub fn horizon(mut self, ticks: u64) -> Self {
        self.horizon = ticks;
        self
    }

    /// Total decision epochs per episode (one per tick).
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.warmup + self.horizon
    }
}

/// Errors surfaced by [`Env::reset`] and [`Env::step`].
#[derive(Debug)]
pub enum EnvError {
    /// The engine rejected the scenario or failed mid-episode; includes
    /// [`CoreError::PolicyViolation`] when an action fails
    /// `validate_decision` — the episode is over, the process is fine.
    Engine(CoreError),
    /// `step` was called with no live episode (`reset` first).
    NoEpisode,
    /// The engine thread panicked — a bug, not an agent fault.
    EngineThreadPanicked,
    /// The scenario is degenerate (zero total ticks).
    EmptyScenario,
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvError::Engine(e) => write!(f, "engine error: {e}"),
            EnvError::NoEpisode => write!(f, "no live episode: call reset() before step()"),
            EnvError::EngineThreadPanicked => write!(f, "engine thread panicked"),
            EnvError::EmptyScenario => write!(f, "scenario has zero ticks (warmup + horizon)"),
        }
    }
}

impl std::error::Error for EnvError {}

impl From<CoreError> for EnvError {
    fn from(e: CoreError) -> Self {
        EnvError::Engine(e)
    }
}

/// The outcome of one [`Env::step`].
#[derive(Debug, Clone)]
pub struct Step {
    /// The next observation (the terminal state snapshot when `done`).
    pub obs: Observation,
    /// Scalar reward: the differenced weighted metric scalar.
    pub reward: f64,
    /// Whether the episode is over. After `done`, call `reset`.
    pub done: bool,
    /// Per-metric breakdown behind the scalar.
    pub info: StepInfo,
}

/// Terminal summary of a completed episode.
#[derive(Debug, Clone)]
pub struct EpisodeEnd {
    /// FNV-1a fingerprint over the final true (unmasked) views and the
    /// final tick — the replay-identity witness.
    pub fingerprint: u64,
    /// Cumulative post-warm-up metrics, as `vsched run` would report for
    /// one replication.
    pub metrics: SampleMetrics,
    /// Ticks executed (always `warmup + horizon` unless halted early).
    pub ticks: u64,
}

/// What the environment sends back into the blocked engine thread.
enum ToSim {
    /// The agent's decision for the pending epoch.
    Act(ScheduleDecision),
    /// Stop cooperating: drain the episode with empty decisions.
    Halt,
}

/// One decision epoch, shipped out of the engine thread.
struct Epoch {
    vcpus: Vec<VcpuView>,
    pcpus: Vec<PcpuView>,
    timestamp: u64,
    default_timeslice: u64,
}

/// Metrics snapshot shared between the engine thread and the environment.
/// `generation` increments at the warm-up boundary so the reward baseline
/// resets exactly once.
#[derive(Default)]
struct MetricsCell {
    metrics: Option<SampleMetrics>,
    generation: u64,
}

/// A [`SchedulingPolicy`] that rendezvouses with the environment: each
/// `schedule()` call publishes the epoch and blocks for the action. After
/// a halt or disconnect it *drains* — returns empty decisions so the
/// engine can finish its tick loop and the thread can exit cleanly.
struct RelayPolicy {
    name: String,
    fields: ViewFields,
    epoch_tx: Sender<Epoch>,
    act_rx: Receiver<ToSim>,
    draining: bool,
}

impl SchedulingPolicy for RelayPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule(
        &mut self,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
        timestamp: u64,
        default_timeslice: u64,
    ) -> ScheduleDecision {
        if self.draining {
            return ScheduleDecision::none();
        }
        let sent = self.epoch_tx.send(Epoch {
            vcpus: vcpus.to_vec(),
            pcpus: pcpus.to_vec(),
            timestamp,
            default_timeslice,
        });
        if sent.is_err() {
            self.draining = true;
            return ScheduleDecision::none();
        }
        match self.act_rx.recv() {
            Ok(ToSim::Act(decision)) => decision,
            Ok(ToSim::Halt) | Err(_) => {
                self.draining = true;
                ScheduleDecision::none()
            }
        }
    }

    fn snapshot_view(&self) -> ViewFields {
        self.fields
    }
}

/// Either engine behind the uniform per-tick interface the episode loop
/// needs. `SanSystem::run` is resumable with integer event times, so a
/// `run(1)` loop is bit-identical to one `run(n)` call.
enum Sim {
    Direct(Box<DirectSim>),
    San(Box<SanSystem>),
}

impl Sim {
    fn build(
        scenario: &Scenario,
        policy: Box<dyn SchedulingPolicy>,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Ok(match scenario.engine {
            Engine::Direct => Sim::Direct(Box::new(DirectSim::new(
                scenario.config.clone(),
                policy,
                seed,
            ))),
            Engine::San => Sim::San(Box::new(SanSystem::new(
                scenario.config.clone(),
                policy,
                seed,
            )?)),
        })
    }

    fn tick(&mut self) -> Result<(), CoreError> {
        match self {
            Sim::Direct(s) => s.tick(),
            Sim::San(s) => s.run(1),
        }
    }

    fn reset_metrics(&mut self) {
        match self {
            Sim::Direct(s) => s.reset_metrics(),
            Sim::San(s) => s.reset_metrics(),
        }
    }

    fn metrics(&self) -> SampleMetrics {
        match self {
            Sim::Direct(s) => s.metrics(),
            Sim::San(s) => s.metrics(),
        }
    }

    fn time(&self) -> u64 {
        match self {
            Sim::Direct(s) => s.time(),
            Sim::San(s) => s.time(),
        }
    }

    fn views(&self) -> (Vec<VcpuView>, Vec<PcpuView>) {
        match self {
            Sim::Direct(s) => (s.vcpu_views(), s.pcpu_views()),
            Sim::San(s) => (s.vcpu_views(), s.pcpu_views()),
        }
    }
}

/// The engine-thread body: run warm-up, reset metrics, run the horizon,
/// publishing cumulative metrics after every measured tick.
fn run_episode(
    scenario: Scenario,
    seed: u64,
    policy: Box<dyn SchedulingPolicy>,
    shared: Arc<Mutex<MetricsCell>>,
    halt: Arc<AtomicBool>,
) -> Result<EpisodeEnd, CoreError> {
    let mut sim = Sim::build(&scenario, policy, seed)?;
    let mut ticks = 0u64;
    'run: {
        for _ in 0..scenario.warmup {
            if halt.load(Ordering::Relaxed) {
                break 'run;
            }
            sim.tick()?;
            ticks += 1;
        }
        sim.reset_metrics();
        {
            let mut cell = shared.lock().expect("metrics cell");
            cell.metrics = None;
            cell.generation += 1;
        }
        for _ in 0..scenario.horizon {
            if halt.load(Ordering::Relaxed) {
                break 'run;
            }
            sim.tick()?;
            ticks += 1;
            shared.lock().expect("metrics cell").metrics = Some(sim.metrics());
        }
    }
    let (vcpus, pcpus) = sim.views();
    let mut h = Fnv::new();
    h.push(sim.time());
    for v in &vcpus {
        h.push(v.id.global as u64);
        h.push(v.status.to_token() as u64);
        h.push(v.remaining_load);
        h.push(u64::from(v.sync_point));
        h.push_opt(v.assigned_pcpu.map(|p| p as u64));
        h.push(v.timeslice_remaining);
        h.push_opt(v.last_scheduled_in);
        h.push(u64::from(v.vm_weight));
    }
    for p in &pcpus {
        h.push(p.id as u64);
        h.push_opt(p.assigned.map(|id| id.global as u64));
    }
    Ok(EpisodeEnd {
        fingerprint: h.finish(),
        metrics: sim.metrics(),
        ticks,
    })
}

/// A live episode: the engine thread plus its channels and reward state.
struct LiveEpisode {
    act_tx: Sender<ToSim>,
    epoch_rx: Receiver<Epoch>,
    shared: Arc<Mutex<MetricsCell>>,
    halt: Arc<AtomicBool>,
    handle: JoinHandle<Result<EpisodeEnd, CoreError>>,
    prev_scalar: f64,
    generation_seen: u64,
    last_views: (Vec<VcpuView>, Vec<PcpuView>),
}

impl LiveEpisode {
    /// Differences the weighted metric scalar against the previous step,
    /// resetting the baseline when the warm-up boundary passed.
    fn settle_reward(&mut self, weights: RewardWeights) -> (f64, StepInfo) {
        let cell = self.shared.lock().expect("metrics cell");
        if cell.generation != self.generation_seen {
            self.generation_seen = cell.generation;
            self.prev_scalar = 0.0;
        }
        let info = StepInfo::from_metrics(cell.metrics.as_ref());
        let scalar = cell.metrics.as_ref().map_or(0.0, |m| weights.scalar(m));
        let reward = scalar - self.prev_scalar;
        self.prev_scalar = scalar;
        (reward, info)
    }

    /// Unblocks and terminates the engine thread, discarding the episode.
    fn abort(self) {
        self.halt.store(true, Ordering::Relaxed);
        let _ = self.act_tx.send(ToSim::Halt);
        // Drain so the relay is never blocked on an unbounded send (it
        // can't be — the channel is unbounded — but dropping the receiver
        // first keeps the shutdown order obvious).
        while self.epoch_rx.try_recv().is_ok() {}
        let _ = self.handle.join();
    }
}

/// The gym-style environment: `reset(seed) → Observation`,
/// `step(action) → (Observation, reward, done, info)`.
///
/// ```
/// use vsched_core::{ScheduleDecision, SystemConfig, Engine};
/// use vsched_env::{Env, Scenario};
///
/// let config = SystemConfig::builder().pcpus(2).vm(2).build().unwrap();
/// let scenario = Scenario::new(config)
///     .engine(Engine::Direct)
///     .warmup(10)
///     .horizon(40);
/// let mut env = Env::new(scenario);
/// let mut obs = env.reset(7).unwrap();
/// loop {
///     let mut action = ScheduleDecision::none();
///     // Greedy: put the first schedulable VCPU on the first idle PCPU.
///     if let (Some(v), Some(p)) = (
///         obs.vcpus.iter().find(|v| v.is_schedulable()),
///         obs.pcpus.iter().find(|p| p.is_idle()),
///     ) {
///         action.assign(v.id.global, p.id, obs.default_timeslice);
///     }
///     let step = env.step(&action).unwrap();
///     if step.done {
///         break;
///     }
///     obs = step.obs;
/// }
/// assert!(env.last_end().is_some());
/// ```
pub struct Env {
    scenario: Scenario,
    fields: ViewFields,
    weights: RewardWeights,
    agent_name: String,
    episode: Option<LiveEpisode>,
    last_end: Option<EpisodeEnd>,
}

impl std::fmt::Debug for Env {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Env")
            .field("agent_name", &self.agent_name)
            .field("live", &self.episode.is_some())
            .finish_non_exhaustive()
    }
}

impl Env {
    /// An environment over `scenario` with the full observation space and
    /// equal reward weights.
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        Env {
            scenario,
            fields: ViewFields::all(),
            weights: RewardWeights::default(),
            agent_name: "env-agent".to_string(),
            episode: None,
            last_end: None,
        }
    }

    /// Narrows the observation space to the agent's declared fields.
    #[must_use]
    pub fn fields(mut self, fields: ViewFields) -> Self {
        self.fields = fields;
        self
    }

    /// Replaces the reward weights.
    #[must_use]
    pub fn reward_weights(mut self, weights: RewardWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Names the agent in engine error messages (policy-violation
    /// diagnostics cite this name).
    #[must_use]
    pub fn agent_name(mut self, name: &str) -> Self {
        self.agent_name = name.to_string();
        self
    }

    /// The scenario this environment runs.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Terminal summary of the most recently *completed* episode.
    #[must_use]
    pub fn last_end(&self) -> Option<&EpisodeEnd> {
        self.last_end.as_ref()
    }

    /// Starts a fresh episode and returns the first observation.
    ///
    /// # Errors
    ///
    /// [`EnvError::EmptyScenario`] for a zero-tick scenario;
    /// [`EnvError::Engine`] if the engine rejects the configuration.
    pub fn reset(&mut self, seed: u64) -> Result<Observation, EnvError> {
        if let Some(old) = self.episode.take() {
            old.abort();
        }
        if self.scenario.epochs() == 0 {
            return Err(EnvError::EmptyScenario);
        }
        let (epoch_tx, epoch_rx) = mpsc::channel();
        let (act_tx, act_rx) = mpsc::channel();
        let shared = Arc::new(Mutex::new(MetricsCell::default()));
        let halt = Arc::new(AtomicBool::new(false));
        let relay = Box::new(RelayPolicy {
            name: self.agent_name.clone(),
            fields: self.fields,
            epoch_tx,
            act_rx,
            draining: false,
        });
        let scenario = self.scenario.clone();
        let thread_shared = Arc::clone(&shared);
        let thread_halt = Arc::clone(&halt);
        let handle = std::thread::Builder::new()
            .name("vsched-env-engine".to_string())
            .spawn(move || run_episode(scenario, seed, relay, thread_shared, thread_halt))
            .expect("spawn engine thread");
        let mut episode = LiveEpisode {
            act_tx,
            epoch_rx,
            shared,
            halt,
            handle,
            prev_scalar: 0.0,
            generation_seen: 0,
            last_views: (Vec::new(), Vec::new()),
        };
        match episode.epoch_rx.recv() {
            Ok(epoch) => {
                let obs = self.observe(&mut episode, epoch);
                self.episode = Some(episode);
                Ok(obs)
            }
            // The engine died before the first epoch: surface its error.
            Err(_) => match episode.handle.join() {
                Ok(Ok(_)) => Err(EnvError::EmptyScenario),
                Ok(Err(e)) => Err(EnvError::Engine(e)),
                Err(_) => Err(EnvError::EngineThreadPanicked),
            },
        }
    }

    /// Applies the agent's decision at the pending epoch and advances to
    /// the next one (or to the terminal state).
    ///
    /// # Errors
    ///
    /// [`EnvError::NoEpisode`] without a live episode;
    /// [`EnvError::Engine`] when the engine fails — including
    /// [`CoreError::PolicyViolation`] when `action` fails
    /// `validate_decision`, which ends the episode as an agent fault.
    pub fn step(&mut self, action: &ScheduleDecision) -> Result<Step, EnvError> {
        let mut episode = self.episode.take().ok_or(EnvError::NoEpisode)?;
        // A send failure means the engine already exited; the recv below
        // observes why.
        let _ = episode.act_tx.send(ToSim::Act(action.clone()));
        match episode.epoch_rx.recv() {
            Ok(epoch) => {
                let (reward, info) = episode.settle_reward(self.weights);
                let obs = self.observe(&mut episode, epoch);
                self.episode = Some(episode);
                Ok(Step {
                    obs,
                    reward,
                    done: false,
                    info,
                })
            }
            Err(_) => match episode.handle.join() {
                Ok(Ok(end)) => {
                    let scalar = self.weights.scalar(&end.metrics);
                    let reward = scalar - episode.prev_scalar;
                    let info = StepInfo::from_metrics(Some(&end.metrics));
                    let (vcpus, pcpus) = &episode.last_views;
                    let obs = Observation::masked(
                        vcpus,
                        pcpus,
                        self.scenario.epochs(),
                        self.scenario.config.timeslice(),
                        self.fields,
                    );
                    self.last_end = Some(end);
                    Ok(Step {
                        obs,
                        reward,
                        done: true,
                        info,
                    })
                }
                Ok(Err(e)) => Err(EnvError::Engine(e)),
                Err(_) => Err(EnvError::EngineThreadPanicked),
            },
        }
    }

    fn observe(&self, episode: &mut LiveEpisode, epoch: Epoch) -> Observation {
        let obs = Observation::masked(
            &epoch.vcpus,
            &epoch.pcpus,
            epoch.timestamp,
            epoch.default_timeslice,
            self.fields,
        );
        episode.last_views = (epoch.vcpus, epoch.pcpus);
        obs
    }
}

impl Drop for Env {
    fn drop(&mut self) {
        if let Some(episode) = self.episode.take() {
            episode.abort();
        }
    }
}

/// Record of one driven episode, for replay comparison.
#[derive(Debug, Clone)]
pub struct EpisodeRun {
    /// Every action taken, in epoch order.
    pub actions: Vec<ScheduleDecision>,
    /// Every reward received, in epoch order.
    pub rewards: Vec<f64>,
    /// FNV-1a digest over the observation stream.
    pub obs_digest: u64,
    /// Terminal summary.
    pub end: EpisodeEnd,
}

/// Drives one full episode with an in-process policy fed **from the
/// observations** — the policy sees exactly what a remote agent would.
/// With a contract-honoring policy this reproduces the monolithic
/// `run_replication` trace bit-for-bit.
///
/// # Errors
///
/// Propagates [`Env::reset`]/[`Env::step`] errors.
pub fn drive_policy(
    env: &mut Env,
    policy: &mut dyn SchedulingPolicy,
    seed: u64,
) -> Result<EpisodeRun, EnvError> {
    drive_with(env, seed, |obs| {
        policy.schedule(&obs.vcpus, &obs.pcpus, obs.timestamp, obs.default_timeslice)
    })
}

/// Replays a recorded action sequence. Feeding back [`EpisodeRun::actions`]
/// from the same seed reproduces the run's digests and rewards exactly.
///
/// # Errors
///
/// Propagates [`Env::reset`]/[`Env::step`] errors; excess epochs beyond
/// the recorded actions receive empty decisions.
pub fn replay_actions(
    env: &mut Env,
    actions: &[ScheduleDecision],
    seed: u64,
) -> Result<EpisodeRun, EnvError> {
    let mut it = actions.iter();
    drive_with(env, seed, |_| {
        it.next().cloned().unwrap_or_else(ScheduleDecision::none)
    })
}

/// The shared episode loop behind [`drive_policy`] and [`replay_actions`].
fn drive_with(
    env: &mut Env,
    seed: u64,
    mut act: impl FnMut(&Observation) -> ScheduleDecision,
) -> Result<EpisodeRun, EnvError> {
    let mut obs = env.reset(seed)?;
    let mut digest = Fnv::new();
    let mut actions = Vec::new();
    let mut rewards = Vec::new();
    loop {
        digest.push(obs.digest());
        let action = act(&obs);
        let step = env.step(&action)?;
        actions.push(action);
        rewards.push(step.reward);
        if step.done {
            digest.push(step.obs.digest());
            let end = env.last_end().cloned().expect("episode end after done");
            return Ok(EpisodeRun {
                actions,
                rewards,
                obs_digest: digest.finish(),
                end,
            });
        }
        obs = step.obs;
    }
}
