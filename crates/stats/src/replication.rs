//! Independent-replication experiment control.
//!
//! Mobius-style termination: run replications until *every* tracked reward
//! variable's confidence interval is narrower than the requested criterion
//! (the paper uses 95% level and a 0.1 interval), bounded by a minimum and
//! maximum replication count.

use crate::ci::ConfidenceInterval;
use crate::error::StatsError;
use crate::welford::Welford;

/// When to stop adding replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingRule {
    /// Confidence level for the intervals, e.g. `0.95`.
    pub level: f64,
    /// Required half-width. Interpreted per [`StoppingRule::relative`].
    pub half_width: f64,
    /// If `true`, `half_width` is relative to the mean (`hw / |mean|`);
    /// if `false` (default), it is absolute — matching the paper's
    /// "<0.1 confidence interval" on metrics that live in `[0, 1]`.
    pub relative: bool,
    /// Never stop before this many replications (default 5).
    pub min_replications: usize,
    /// Always stop at this many replications (default 1000).
    pub max_replications: usize,
}

impl StoppingRule {
    /// A rule with the given confidence `level` and absolute `half_width`
    /// target, 5 minimum and 1000 maximum replications.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < level < 1` and `half_width > 0`.
    #[must_use]
    pub fn new(level: f64, half_width: f64) -> Self {
        assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
        assert!(half_width > 0.0, "half_width must be positive");
        StoppingRule {
            level,
            half_width,
            relative: false,
            min_replications: 5,
            max_replications: 1000,
        }
    }

    /// The paper's setting: 95% confidence, half-width under 0.05 (an
    /// interval of width <0.1 as reported in Figures 8–10).
    #[must_use]
    pub fn paper_default() -> Self {
        StoppingRule::new(0.95, 0.05)
    }

    /// Interprets the half-width target relative to the mean.
    #[must_use]
    pub fn relative(mut self) -> Self {
        self.relative = true;
        self
    }

    /// Sets the minimum number of replications.
    #[must_use]
    pub fn with_min_replications(mut self, n: usize) -> Self {
        self.min_replications = n.max(2);
        self
    }

    /// Sets the maximum number of replications.
    #[must_use]
    pub fn with_max_replications(mut self, n: usize) -> Self {
        self.max_replications = n.max(2);
        self
    }
}

/// Collects per-replication observations of several statistics and decides
/// when enough replications have run.
///
/// Each call to [`ReplicationController::record`] supplies one observation
/// per tracked statistic (one completed replication). See the crate-level
/// example.
#[derive(Debug, Clone)]
pub struct ReplicationController {
    rule: StoppingRule,
    stats: Vec<Welford>,
}

impl ReplicationController {
    /// Creates a controller tracking `num_stats` statistics under `rule`.
    ///
    /// # Panics
    ///
    /// Panics if `num_stats` is zero.
    #[must_use]
    pub fn new(rule: StoppingRule, num_stats: usize) -> Self {
        assert!(num_stats > 0, "must track at least one statistic");
        ReplicationController {
            rule,
            stats: vec![Welford::new(); num_stats],
        }
    }

    /// The active stopping rule.
    #[must_use]
    pub fn rule(&self) -> &StoppingRule {
        &self.rule
    }

    /// Records the results of one replication.
    ///
    /// # Panics
    ///
    /// Panics if `observations.len()` differs from the tracked count.
    pub fn record(&mut self, observations: &[f64]) {
        assert_eq!(
            observations.len(),
            self.stats.len(),
            "observation count must match tracked statistics"
        );
        for (w, &x) in self.stats.iter_mut().zip(observations) {
            w.push(x);
        }
    }

    /// Number of replications recorded so far.
    #[must_use]
    pub fn replications(&self) -> usize {
        self.stats[0].count() as usize
    }

    /// Whether another replication is needed.
    ///
    /// `true` until (a) the minimum count is reached **and** every statistic
    /// meets the half-width criterion, or (b) the maximum count is reached.
    #[must_use]
    pub fn needs_more(&self) -> bool {
        let n = self.replications();
        if n >= self.rule.max_replications {
            return false;
        }
        if n < self.rule.min_replications {
            return true;
        }
        !self.all_converged()
    }

    /// Whether every tracked statistic currently satisfies the criterion.
    #[must_use]
    pub fn all_converged(&self) -> bool {
        self.stats.iter().all(
            |w| match ConfidenceInterval::from_welford(w, self.rule.level) {
                Ok(ci) => {
                    let measure = if self.rule.relative {
                        ci.relative_half_width()
                    } else {
                        ci.half_width
                    };
                    measure <= self.rule.half_width
                }
                Err(_) => false,
            },
        )
    }

    /// Confidence interval for statistic `index`.
    ///
    /// # Errors
    ///
    /// [`StatsError::NotEnoughData`] with fewer than two replications.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn interval(&self, index: usize) -> Result<ConfidenceInterval, StatsError> {
        ConfidenceInterval::from_welford(&self.stats[index], self.rule.level)
    }

    /// Confidence intervals for all tracked statistics.
    ///
    /// # Errors
    ///
    /// [`StatsError::NotEnoughData`] with fewer than two replications.
    pub fn intervals(&self) -> Result<Vec<ConfidenceInterval>, StatsError> {
        self.stats
            .iter()
            .map(|w| ConfidenceInterval::from_welford(w, self.rule.level))
            .collect()
    }

    /// Raw accumulator for statistic `index` (mean, variance, extrema).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn stat(&self, index: usize) -> &Welford {
        &self.stats[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_min_replications() {
        let mut c =
            ReplicationController::new(StoppingRule::new(0.95, 10.0).with_min_replications(7), 1);
        for i in 0..6 {
            assert!(c.needs_more(), "after {i} reps");
            c.record(&[1.0]);
        }
        assert!(c.needs_more(), "still below min");
        c.record(&[1.0]);
        // Zero variance: converged immediately at min count.
        assert!(!c.needs_more());
    }

    #[test]
    fn respects_max_replications() {
        let mut c =
            ReplicationController::new(StoppingRule::new(0.95, 1e-9).with_max_replications(10), 1);
        let mut n = 0;
        while c.needs_more() {
            // Alternating values never converge to a 1e-9 half-width.
            c.record(&[if n % 2 == 0 { 0.0 } else { 100.0 }]);
            n += 1;
            assert!(n <= 10, "must stop at max");
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn converges_on_tight_data() {
        let mut c = ReplicationController::new(StoppingRule::paper_default(), 1);
        let mut n = 0;
        while c.needs_more() {
            c.record(&[0.5 + 0.001 * f64::from(n % 3)]);
            n += 1;
        }
        assert!(n <= 10, "tight data should converge fast, took {n}");
        let ci = c.interval(0).unwrap();
        assert!(ci.half_width <= 0.05);
    }

    #[test]
    fn all_statistics_must_converge() {
        let rule = StoppingRule::new(0.95, 0.5)
            .with_min_replications(3)
            .with_max_replications(500);
        let mut c = ReplicationController::new(rule, 2);
        let mut n: u32 = 0;
        while c.needs_more() {
            // Statistic 0 is constant; statistic 1 is noisy and needs many
            // replications before its CI tightens to 0.5.
            let noisy = if n.is_multiple_of(2) { 0.0 } else { 10.0 };
            c.record(&[1.0, noisy]);
            n += 1;
        }
        assert!(n > 3, "noisy statistic must delay stopping, stopped at {n}");
        assert!(c.interval(1).unwrap().half_width <= 0.5);
    }

    #[test]
    fn relative_rule() {
        let rule = StoppingRule::new(0.95, 0.01)
            .relative()
            .with_min_replications(3)
            .with_max_replications(10_000);
        let mut c = ReplicationController::new(rule, 1);
        let mut i = 0u64;
        while c.needs_more() {
            // mean 1000, noise ±1 → relative half-width shrinks quickly.
            c.record(&[1000.0 + if i.is_multiple_of(2) { 1.0 } else { -1.0 }]);
            i += 1;
        }
        let ci = c.interval(0).unwrap();
        assert!(ci.relative_half_width() <= 0.01);
    }

    #[test]
    #[should_panic(expected = "observation count")]
    fn record_checks_arity() {
        let mut c = ReplicationController::new(StoppingRule::paper_default(), 2);
        c.record(&[1.0]);
    }

    #[test]
    fn interval_errors_before_two_reps() {
        let c = ReplicationController::new(StoppingRule::paper_default(), 1);
        assert!(c.interval(0).is_err());
    }

    #[test]
    fn paper_default_values() {
        let r = StoppingRule::paper_default();
        assert_eq!(r.level, 0.95);
        assert_eq!(r.half_width, 0.05);
        assert!(!r.relative);
    }
}
