//! # vsched-stats — simulation output analysis
//!
//! Mobius terminates a simulation experiment when every reward variable's
//! confidence interval is tight enough (the paper reports every figure "with
//! 95% confidence level and <0.1 confidence interval"). This crate supplies
//! the statistical machinery to do the same:
//!
//! * [`Welford`] — numerically stable streaming mean/variance,
//! * [`TimeWeighted`] — time-weighted integrals for rate rewards
//!   (fraction-of-time-in-state metrics),
//! * [`student_t`] — Student-t quantiles computed from first principles
//!   (regularized incomplete beta + bisection), no tables,
//! * [`ConfidenceInterval`] — mean ± half-width at a configurable level,
//! * [`ReplicationController`] — independent-replication stopping rule:
//!   run until every tracked statistic meets its half-width criterion,
//! * [`BatchMeans`] — single-long-run steady-state estimation,
//! * [`P2Quantile`] — O(1)-memory streaming quantiles (P² algorithm),
//! * [`autocorr`] — autocorrelation / effective-sample-size diagnostics,
//! * [`warmup`] — MSER-5 initial-transient detection.
//!
//! ## Example
//!
//! ```
//! use vsched_stats::{ReplicationController, StoppingRule};
//!
//! let mut ctrl = ReplicationController::new(
//!     StoppingRule::new(0.95, 0.1).with_min_replications(5).with_max_replications(100),
//!     1, // one tracked statistic
//! );
//! let mut x = 0.0_f64;
//! while ctrl.needs_more() {
//!     x += 1.0;
//!     // a fake "replication" producing a noisy observation of 10
//!     ctrl.record(&[10.0 + (x * 0.7).sin() * 0.05]);
//! }
//! let ci = ctrl.interval(0)?;
//! assert!((ci.mean - 10.0).abs() < 0.1);
//! # Ok::<(), vsched_stats::StatsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autocorr;
pub mod batch;
pub mod ci;
pub mod error;
pub mod quantile;
pub mod replication;
pub mod student_t;
pub mod timeweighted;
pub mod warmup;
pub mod welford;

pub use autocorr::{autocorrelation, effective_sample_size, suggest_batch_size};
pub use batch::BatchMeans;
pub use ci::ConfidenceInterval;
pub use error::StatsError;
pub use quantile::P2Quantile;
pub use replication::{ReplicationController, StoppingRule};
pub use timeweighted::TimeWeighted;
pub use warmup::{mser5, WarmupEstimate};
pub use welford::Welford;
