//! Time-weighted statistics for rate rewards.
//!
//! A SAN *rate reward* is a function of the marking accumulated over time:
//! `∫ f(marking(t)) dt / (t1 − t0)`. Metrics like "fraction of time the VCPU
//! is ACTIVE" are exactly this with an indicator `f`. [`TimeWeighted`] tracks
//! a piecewise-constant signal and its time integral.

/// Accumulates the time integral of a piecewise-constant signal.
///
/// Call [`TimeWeighted::update`] whenever the signal changes (or at the end
/// of observation) with the *current* time and the value the signal has held
/// **since the previous update**... more precisely: `update(t, v)` states
/// that the signal had value `v` on the interval `[last_t, t)`.
///
/// # Example
///
/// ```
/// use vsched_stats::TimeWeighted;
///
/// let mut tw = TimeWeighted::new(0.0);
/// tw.update(2.0, 1.0); // value 1 on [0, 2)
/// tw.update(6.0, 0.0); // value 0 on [2, 6)
/// tw.update(10.0, 0.5); // value 0.5 on [6, 10)
/// assert!((tw.time_average() - 0.4).abs() < 1e-12); // (2 + 0 + 2) / 10
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    start: f64,
    last_t: f64,
    integral: f64,
}

impl TimeWeighted {
    /// Starts observing at time `start`.
    #[must_use]
    pub fn new(start: f64) -> Self {
        TimeWeighted {
            start,
            last_t: start,
            integral: 0.0,
        }
    }

    /// Records that the signal held `value` over `[last_update_time, t)`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous update (time cannot run
    /// backwards).
    pub fn update(&mut self, t: f64, value: f64) {
        assert!(
            t >= self.last_t,
            "time-weighted update must be monotone: {t} < {}",
            self.last_t
        );
        self.integral += (t - self.last_t) * value;
        self.last_t = t;
    }

    /// Total accumulated integral `∫ f dt`.
    #[must_use]
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Total elapsed observation time.
    #[must_use]
    pub fn elapsed(&self) -> f64 {
        self.last_t - self.start
    }

    /// Time average `∫ f dt / elapsed`; `0.0` if no time has elapsed.
    #[must_use]
    pub fn time_average(&self) -> f64 {
        let e = self.elapsed();
        if e <= 0.0 {
            0.0
        } else {
            self.integral / e
        }
    }

    /// Discards history and restarts observation at `t` (used after a
    /// warm-up / transient-deletion period).
    pub fn reset(&mut self, t: f64) {
        self.start = t;
        self.last_t = t;
        self.integral = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal() {
        let mut tw = TimeWeighted::new(0.0);
        tw.update(5.0, 2.0);
        tw.update(10.0, 2.0);
        assert_eq!(tw.time_average(), 2.0);
        assert_eq!(tw.integral(), 20.0);
        assert_eq!(tw.elapsed(), 10.0);
    }

    #[test]
    fn indicator_fraction() {
        // On 30% of the time.
        let mut tw = TimeWeighted::new(0.0);
        tw.update(3.0, 1.0);
        tw.update(10.0, 0.0);
        assert!((tw.time_average() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_elapsed_is_zero() {
        let tw = TimeWeighted::new(5.0);
        assert_eq!(tw.time_average(), 0.0);
    }

    #[test]
    fn zero_length_update_is_noop() {
        let mut tw = TimeWeighted::new(0.0);
        tw.update(0.0, 100.0);
        assert_eq!(tw.integral(), 0.0);
    }

    #[test]
    fn nonzero_start() {
        let mut tw = TimeWeighted::new(100.0);
        tw.update(110.0, 1.0);
        assert_eq!(tw.time_average(), 1.0);
        assert_eq!(tw.elapsed(), 10.0);
    }

    #[test]
    fn reset_discards_history() {
        let mut tw = TimeWeighted::new(0.0);
        tw.update(10.0, 1.0);
        tw.reset(10.0);
        tw.update(20.0, 0.0);
        assert_eq!(tw.time_average(), 0.0);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn rejects_backwards_time() {
        let mut tw = TimeWeighted::new(0.0);
        tw.update(5.0, 1.0);
        tw.update(4.0, 1.0);
    }
}
