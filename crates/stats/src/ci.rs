//! Confidence intervals over replication means.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::StatsError;
use crate::student_t;
use crate::welford::Welford;

/// A two-sided Student-t confidence interval.
///
/// # Example
///
/// ```
/// use vsched_stats::ConfidenceInterval;
///
/// let ci = ConfidenceInterval::from_samples(&[9.8, 10.1, 10.0, 9.9, 10.2], 0.95)?;
/// assert!((ci.mean - 10.0).abs() < 0.01);
/// assert!(ci.contains(10.0));
/// # Ok::<(), vsched_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (mean of the replication means).
    pub mean: f64,
    /// Half-width of the interval: the interval is `mean ± half_width`.
    pub half_width: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
    /// Number of observations the interval is based on.
    pub n: u64,
}

impl ConfidenceInterval {
    /// Builds an interval from raw observations.
    ///
    /// # Errors
    ///
    /// * [`StatsError::NotEnoughData`] with fewer than two observations,
    /// * [`StatsError::InvalidParameter`] if `level` is outside `(0, 1)`.
    pub fn from_samples(samples: &[f64], level: f64) -> Result<Self, StatsError> {
        let w: Welford = samples.iter().copied().collect();
        Self::from_welford(&w, level)
    }

    /// Builds an interval from an accumulated [`Welford`] state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConfidenceInterval::from_samples`].
    pub fn from_welford(w: &Welford, level: f64) -> Result<Self, StatsError> {
        if !(0.0..1.0).contains(&level) || level <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "level",
                reason: format!("must be in (0, 1), got {level}"),
            });
        }
        if w.count() < 2 {
            return Err(StatsError::NotEnoughData {
                have: w.count() as usize,
                need: 2,
            });
        }
        let t = student_t::critical_value(level, w.count() - 1);
        Ok(ConfidenceInterval {
            mean: w.mean(),
            half_width: t * w.std_error(),
            level,
            n: w.count(),
        })
    }

    /// Lower bound of the interval.
    #[must_use]
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    #[must_use]
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `value` lies inside the interval.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        (self.low()..=self.high()).contains(&value)
    }

    /// Half-width relative to the mean magnitude; `inf` for a zero mean with
    /// nonzero half-width, `0.0` for a degenerate zero/zero interval.
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        if self.half_width == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} ({:.0}% CI, n={})",
            self.mean,
            self.half_width,
            self.level * 100.0,
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_interval() {
        // n=5, mean=10, s=0.158..., t_{0.975,4}=2.776
        let samples = [9.8, 10.1, 10.0, 9.9, 10.2];
        let ci = ConfidenceInterval::from_samples(&samples, 0.95).unwrap();
        assert!((ci.mean - 10.0).abs() < 1e-12);
        let s = 0.158_113_883_008_419;
        let expected_hw = 2.776_445 * s / 5f64.sqrt();
        assert!((ci.half_width - expected_hw).abs() < 1e-4);
        assert_eq!(ci.n, 5);
    }

    #[test]
    fn bounds_and_contains() {
        let ci = ConfidenceInterval {
            mean: 5.0,
            half_width: 1.0,
            level: 0.95,
            n: 10,
        };
        assert_eq!(ci.low(), 4.0);
        assert_eq!(ci.high(), 6.0);
        assert!(ci.contains(4.5));
        assert!(!ci.contains(6.5));
    }

    #[test]
    fn relative_half_width_cases() {
        let ci = ConfidenceInterval {
            mean: 10.0,
            half_width: 0.5,
            level: 0.95,
            n: 3,
        };
        assert!((ci.relative_half_width() - 0.05).abs() < 1e-12);
        let degenerate = ConfidenceInterval {
            mean: 0.0,
            half_width: 0.0,
            level: 0.95,
            n: 3,
        };
        assert_eq!(degenerate.relative_half_width(), 0.0);
        let zero_mean = ConfidenceInterval {
            mean: 0.0,
            half_width: 0.1,
            level: 0.95,
            n: 3,
        };
        assert!(zero_mean.relative_half_width().is_infinite());
    }

    #[test]
    fn errors() {
        assert!(matches!(
            ConfidenceInterval::from_samples(&[1.0], 0.95),
            Err(StatsError::NotEnoughData { have: 1, need: 2 })
        ));
        assert!(matches!(
            ConfidenceInterval::from_samples(&[1.0, 2.0], 1.5),
            Err(StatsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn coverage_simulation() {
        // CI coverage check: ~95% of intervals over N(0,1)-ish data should
        // contain the true mean. Use a deterministic pseudo-random sequence.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut covered = 0;
        let trials = 400;
        for _ in 0..trials {
            // Irwin-Hall(12) - 6 approximates a standard normal.
            let samples: Vec<f64> = (0..10)
                .map(|_| (0..12).map(|_| next()).sum::<f64>() - 6.0)
                .collect();
            let ci = ConfidenceInterval::from_samples(&samples, 0.95).unwrap();
            if ci.contains(0.0) {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!((0.90..=0.99).contains(&rate), "coverage {rate}");
    }

    #[test]
    fn display_format() {
        let ci = ConfidenceInterval {
            mean: 1.0,
            half_width: 0.25,
            level: 0.95,
            n: 7,
        };
        let s = ci.to_string();
        assert!(s.contains("95%"));
        assert!(s.contains("n=7"));
    }
}
