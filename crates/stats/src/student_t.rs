//! Student-t quantiles from first principles.
//!
//! Confidence intervals over a handful of replications need the t
//! distribution, not the normal. Rather than embedding a lookup table, this
//! module computes the CDF through the regularized incomplete beta function
//! (evaluated with Lentz's continued fraction) and inverts it by bisection.
//! Accuracy is ~1e-10, far beyond what a simulation CI needs.

/// Natural log of the gamma function (Lanczos approximation, g = 7).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9 (Godfrey / numerical recipes style),
    // quoted at published precision even where it exceeds f64.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// # Panics
///
/// Panics if `x` is outside `[0, 1]` or `a`/`b` are not positive.
#[must_use]
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    assert!(a > 0.0 && b > 0.0, "a and b must be positive");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction directly when it converges fast, else the
    // symmetry relation.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the Student-t distribution with `df` degrees of freedom.
///
/// # Panics
///
/// Panics if `df` is not positive.
#[must_use]
pub fn cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t == 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    let p = 0.5 * betai(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided critical value `t*` such that `P(|T| <= t*) = level`.
///
/// For a 95% confidence interval pass `level = 0.95`.
///
/// # Panics
///
/// Panics unless `0 < level < 1` and `df >= 1`.
#[must_use]
pub fn critical_value(level: f64, df: u64) -> f64 {
    assert!(
        (0.0..1.0).contains(&level) && level > 0.0,
        "level must be in (0,1)"
    );
    assert!(df >= 1, "need at least one degree of freedom");
    let target = 0.5 + level / 2.0; // upper-tail quantile
    let dff = df as f64;
    // Bisection on the CDF: monotone, so this always converges.
    let mut lo = 0.0_f64;
    let mut hi = 1e3_f64;
    // Expand hi if necessary (df = 1 and extreme levels).
    while cdf(hi, dff) < target {
        hi *= 10.0;
        if hi > 1e12 {
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if cdf(mid, dff) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn betai_boundaries_and_symmetry() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = betai(2.5, 1.5, 0.3);
        let w = 1.0 - betai(1.5, 2.5, 0.7);
        assert!((v - w).abs() < 1e-12);
    }

    #[test]
    fn betai_uniform_case() {
        // I_x(1,1) = x
        for &x in &[0.1, 0.25, 0.5, 0.9] {
            assert!((betai(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn t_cdf_symmetry() {
        for &df in &[1.0, 3.0, 10.0, 100.0] {
            for &t in &[0.5, 1.0, 2.5] {
                let p = cdf(t, df);
                let q = cdf(-t, df);
                assert!((p + q - 1.0).abs() < 1e-12, "df={df} t={t}");
            }
        }
        assert_eq!(cdf(0.0, 5.0), 0.5);
    }

    #[test]
    fn t_cdf_df1_is_cauchy() {
        // For df=1, CDF(t) = 1/2 + atan(t)/π.
        for &t in &[-3.0_f64, -1.0, 0.5, 2.0, 10.0] {
            let expected = 0.5 + t.atan() / std::f64::consts::PI;
            assert!((cdf(t, 1.0) - expected).abs() < 1e-10, "t={t}");
        }
    }

    #[test]
    fn critical_values_match_tables() {
        // Classic two-sided 95% critical values.
        let cases = [
            (1, 12.706),
            (2, 4.303),
            (5, 2.571),
            (10, 2.228),
            (30, 2.042),
            (120, 1.980),
        ];
        for (df, expected) in cases {
            let got = critical_value(0.95, df);
            assert!(
                (got - expected).abs() < 2e-3,
                "df={df}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn critical_value_converges_to_normal() {
        let got = critical_value(0.95, 1_000_000);
        assert!((got - 1.95996).abs() < 1e-3, "got {got}");
    }

    #[test]
    fn critical_value_99_level() {
        // t_{0.995, 10} = 3.169
        let got = critical_value(0.99, 10);
        assert!((got - 3.169).abs() < 2e-3, "got {got}");
    }

    #[test]
    #[should_panic(expected = "degrees of freedom")]
    fn cdf_rejects_bad_df() {
        let _ = cdf(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "level")]
    fn critical_rejects_bad_level() {
        let _ = critical_value(1.5, 10);
    }
}
