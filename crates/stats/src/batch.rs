//! Batch-means estimation for steady-state simulation.
//!
//! An alternative to independent replications: one long run is cut into
//! contiguous batches whose means are treated as (approximately independent)
//! observations. Useful when model warm-up is expensive relative to the
//! observation window.

use crate::ci::ConfidenceInterval;
use crate::error::StatsError;
use crate::welford::Welford;

/// Fixed-batch-size batch-means accumulator.
///
/// Observations stream in via [`BatchMeans::push`]; every `batch_size`
/// observations close a batch whose mean becomes one sample of the
/// between-batch [`Welford`] statistic.
///
/// # Example
///
/// ```
/// use vsched_stats::BatchMeans;
///
/// let mut bm = BatchMeans::new(100)?;
/// for i in 0..10_000 {
///     bm.push(5.0 + ((i % 7) as f64 - 3.0) * 0.1);
/// }
/// assert_eq!(bm.completed_batches(), 100);
/// let ci = bm.interval(0.95)?;
/// assert!((ci.mean - 5.0).abs() < 0.05);
/// # Ok::<(), vsched_stats::StatsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: usize,
    current: Welford,
    batches: Welford,
}

impl BatchMeans {
    /// Creates an accumulator with the given batch size.
    ///
    /// # Errors
    ///
    /// [`StatsError::InvalidParameter`] if `batch_size` is zero.
    pub fn new(batch_size: usize) -> Result<Self, StatsError> {
        if batch_size == 0 {
            return Err(StatsError::InvalidParameter {
                name: "batch_size",
                reason: "must be positive".into(),
            });
        }
        Ok(BatchMeans {
            batch_size,
            current: Welford::new(),
            batches: Welford::new(),
        })
    }

    /// Adds one raw observation.
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count() as usize == self.batch_size {
            self.batches.push(self.current.mean());
            self.current = Welford::new();
        }
    }

    /// Number of completed batches.
    #[must_use]
    pub fn completed_batches(&self) -> usize {
        self.batches.count() as usize
    }

    /// Observations in the (discarded-on-estimate) partial batch.
    #[must_use]
    pub fn partial_batch_len(&self) -> usize {
        self.current.count() as usize
    }

    /// Grand mean over completed batches.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// Confidence interval over completed batch means.
    ///
    /// # Errors
    ///
    /// [`StatsError::NotEnoughData`] with fewer than two completed batches.
    pub fn interval(&self, level: f64) -> Result<ConfidenceInterval, StatsError> {
        ConfidenceInterval::from_welford(&self.batches, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_close_at_size() {
        let mut bm = BatchMeans::new(10).unwrap();
        for i in 0..25 {
            bm.push(i as f64);
        }
        assert_eq!(bm.completed_batches(), 2);
        assert_eq!(bm.partial_batch_len(), 5);
        // Batch means: 4.5 and 14.5 → grand mean 9.5.
        assert!((bm.mean() - 9.5).abs() < 1e-12);
    }

    #[test]
    fn interval_requires_two_batches() {
        let mut bm = BatchMeans::new(5).unwrap();
        for i in 0..5 {
            bm.push(i as f64);
        }
        assert!(bm.interval(0.95).is_err());
        for i in 0..5 {
            bm.push(i as f64);
        }
        assert!(bm.interval(0.95).is_ok());
    }

    #[test]
    fn zero_batch_size_rejected() {
        assert!(BatchMeans::new(0).is_err());
    }

    #[test]
    fn converges_to_signal_mean() {
        let mut bm = BatchMeans::new(50).unwrap();
        for i in 0..50_000u64 {
            // Periodic signal with mean 3.0.
            bm.push(3.0 + ((i % 10) as f64 - 4.5) * 0.2);
        }
        let ci = bm.interval(0.95).unwrap();
        assert!((ci.mean - 3.0).abs() < 0.01);
    }
}
