//! Warm-up (initial-transient) detection with MSER-5.
//!
//! Replications of the VCPU model start from an empty system; the first
//! ticks are not representative of steady state. Rather than guessing a
//! deletion point, MSER (White, 1997) picks the truncation that minimizes
//! the *marginal standard error* of the remaining observations —
//! batch-averaged over 5 observations in its standard MSER-5 form.

/// Result of an MSER scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmupEstimate {
    /// Number of raw observations to discard.
    pub truncate: usize,
    /// The minimized marginal-standard-error statistic.
    pub mse: f64,
}

/// MSER-5: returns the truncation point (in raw observations) minimizing
/// the marginal standard error over 5-observation batch means.
///
/// Returns `None` when there are fewer than 10 batches (too short to
/// judge), or when the minimizer falls in the second half of the series —
/// the standard validity condition indicating the run is too short for a
/// reliable answer.
#[must_use]
pub fn mser5(xs: &[f64]) -> Option<WarmupEstimate> {
    const BATCH: usize = 5;
    let num_batches = xs.len() / BATCH;
    if num_batches < 10 {
        return None;
    }
    let batches: Vec<f64> = (0..num_batches)
        .map(|b| xs[b * BATCH..(b + 1) * BATCH].iter().sum::<f64>() / BATCH as f64)
        .collect();

    // Suffix sums for O(n) evaluation of each candidate truncation.
    let mut best: Option<(usize, f64)> = None;
    let n = batches.len();
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    // Iterate truncation d from the end toward 0, accumulating suffixes.
    let mut stats = Vec::with_capacity(n);
    for &x in batches.iter().rev() {
        sum += x;
        sum_sq += x * x;
        stats.push((sum, sum_sq));
    }
    for d in 0..n / 2 {
        let kept = n - d;
        let (s, ss) = stats[kept - 1];
        let mean = s / kept as f64;
        let var = (ss / kept as f64 - mean * mean).max(0.0);
        // Marginal standard error criterion: var / kept.
        let mse = var / kept as f64;
        if best.is_none_or(|(_, b)| mse < b) {
            best = Some((d, mse));
        }
    }
    let (d, mse) = best?;
    if d >= n / 2 {
        return None;
    }
    Some(WarmupEstimate {
        truncate: d * BATCH,
        mse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    #[test]
    fn too_short_is_none() {
        assert!(mser5(&[1.0; 20]).is_none());
    }

    #[test]
    fn stationary_series_needs_no_truncation() {
        let mut state = 1u64;
        let xs: Vec<f64> = (0..2_000).map(|_| 5.0 + lcg(&mut state)).collect();
        let est = mser5(&xs).unwrap();
        assert!(
            est.truncate <= 100,
            "stationary data should truncate (almost) nothing, got {}",
            est.truncate
        );
    }

    #[test]
    fn detects_initial_transient() {
        // 300 observations of a decaying transient, then stationary noise.
        let mut state = 2u64;
        let xs: Vec<f64> = (0..3_000)
            .map(|i| {
                let transient = if i < 300 {
                    10.0 * (1.0 - i as f64 / 300.0)
                } else {
                    0.0
                };
                5.0 + transient + lcg(&mut state)
            })
            .collect();
        let est = mser5(&xs).unwrap();
        assert!(
            (150..=600).contains(&est.truncate),
            "should cut roughly the transient (300), got {}",
            est.truncate
        );
    }

    #[test]
    fn truncation_is_batch_aligned() {
        let mut state = 3u64;
        let xs: Vec<f64> = (0..1_000)
            .map(|i| if i < 100 { 50.0 } else { lcg(&mut state) })
            .collect();
        let est = mser5(&xs).unwrap();
        assert_eq!(est.truncate % 5, 0);
        assert!(est.truncate >= 100, "must drop the level shift");
    }
}
