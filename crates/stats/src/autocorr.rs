//! Autocorrelation diagnostics for simulation output series.
//!
//! Batch-means and replication estimators assume (approximately)
//! independent observations; within-run time series are usually
//! autocorrelated. These helpers quantify the correlation and the
//! *effective* number of independent observations, guiding batch-size and
//! run-length choices.

/// Lag-`k` sample autocorrelation of `xs`.
///
/// Returns `0.0` for a constant or too-short series.
#[must_use]
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    let n = xs.len();
    if n < 2 || lag >= n {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
    if var == 0.0 {
        return 0.0;
    }
    let cov: f64 = (0..n - lag)
        .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
        .sum();
    cov / var
}

/// Effective sample size of `xs` under the initial-positive-sequence
/// truncation (Geyer): `n / (1 + 2 Σ ρ_k)`, summing lags while the
/// autocorrelation stays positive.
///
/// A white-noise series returns ≈ `n`; a strongly correlated series much
/// less. The result is clamped to `[1, n]`.
#[must_use]
pub fn effective_sample_size(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return n as f64;
    }
    let mut rho_sum = 0.0;
    for k in 1..n / 2 {
        let rho = autocorrelation(xs, k);
        if rho <= 0.0 {
            break;
        }
        rho_sum += rho;
    }
    (n as f64 / (1.0 + 2.0 * rho_sum)).clamp(1.0, n as f64)
}

/// Suggests a batch size for batch-means estimation: the smallest lag at
/// which the autocorrelation falls below `threshold` (commonly 0.05),
/// doubled for safety. Returns at least 1.
#[must_use]
pub fn suggest_batch_size(xs: &[f64], threshold: f64) -> usize {
    let n = xs.len();
    for k in 1..n / 2 {
        if autocorrelation(xs, k).abs() < threshold {
            return (2 * k).max(1);
        }
    }
    (n / 2).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    #[test]
    fn white_noise_has_no_correlation() {
        let mut state = 3u64;
        let xs: Vec<f64> = (0..20_000).map(|_| lcg(&mut state)).collect();
        assert!(autocorrelation(&xs, 1).abs() < 0.03);
        assert!(autocorrelation(&xs, 7).abs() < 0.03);
        let ess = effective_sample_size(&xs);
        assert!(ess > 15_000.0, "ESS of white noise ≈ n, got {ess}");
    }

    #[test]
    fn ar1_matches_theory() {
        // AR(1) with φ = 0.8: ρ_k = 0.8^k.
        let mut state = 5u64;
        let mut x = 0.0;
        let xs: Vec<f64> = (0..50_000)
            .map(|_| {
                x = 0.8 * x + lcg(&mut state);
                x
            })
            .collect();
        assert!((autocorrelation(&xs, 1) - 0.8).abs() < 0.03);
        assert!((autocorrelation(&xs, 2) - 0.64).abs() < 0.04);
        // ESS ≈ n (1-φ)/(1+φ) = n/9.
        let ess = effective_sample_size(&xs);
        let expected = 50_000.0 / 9.0;
        assert!(
            (ess - expected).abs() / expected < 0.3,
            "ESS {ess}, expected ≈ {expected}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(autocorrelation(&[], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0], 1), 0.0);
        assert_eq!(autocorrelation(&[2.0, 2.0, 2.0], 1), 0.0, "constant series");
        assert_eq!(effective_sample_size(&[]), 0.0);
        assert_eq!(effective_sample_size(&[1.0]), 1.0);
    }

    #[test]
    fn lag_zero_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_size_grows_with_correlation() {
        let mut state = 9u64;
        let white: Vec<f64> = (0..5_000).map(|_| lcg(&mut state)).collect();
        let mut x = 0.0;
        let correlated: Vec<f64> = (0..5_000)
            .map(|_| {
                x = 0.95 * x + lcg(&mut state);
                x
            })
            .collect();
        let b_white = suggest_batch_size(&white, 0.05);
        let b_corr = suggest_batch_size(&correlated, 0.05);
        assert!(
            b_corr > b_white,
            "correlated series needs bigger batches: {b_white} vs {b_corr}"
        );
    }
}
