//! Streaming sample moments via Welford's algorithm.

/// Numerically stable streaming mean / variance / extrema accumulator.
///
/// # Example
///
/// ```
/// use vsched_stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (divides by `n − 1`); `0.0` for fewer than
    /// two observations.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (divides by `n`); `0.0` when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean, `s / sqrt(n)`.
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation; `+inf` when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford / Chan).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut w = Welford::new();
        for x in iter {
            w.push(x);
        }
        w
    }
}

impl Extend<f64> for Welford {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroish() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut w = Welford::new();
        w.push(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.min(), 3.5);
        assert_eq!(w.max(), 3.5);
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let w: Welford = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-10);
        assert!((w.sample_variance() - var).abs() < 1e-8);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let (left, right) = data.split_at(200);
        let mut a: Welford = left.iter().copied().collect();
        let b: Welford = right.iter().copied().collect();
        a.merge(&b);
        let seq: Welford = data.iter().copied().collect();
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - seq.sample_variance()).abs() < 1e-8);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = Welford::new();
        let b: Welford = [1.0, 2.0, 3.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.mean(), 2.0);
        let mut c: Welford = [4.0].into_iter().collect();
        c.merge(&Welford::new());
        assert_eq!(c.mean(), 4.0);
    }

    #[test]
    fn numerical_stability_large_offset() {
        // Classic catastrophic-cancellation scenario.
        let w: Welford = [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0]
            .into_iter()
            .collect();
        assert!((w.mean() - (1e9 + 10.0)).abs() < 1e-3);
        assert!((w.sample_variance() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn extend_trait() {
        let mut w = Welford::new();
        w.extend([1.0, 2.0, 3.0]);
        assert_eq!(w.count(), 3);
        assert_eq!(w.mean(), 2.0);
    }
}
