//! Streaming quantile estimation with the P² algorithm.
//!
//! Latency-style simulation outputs (barrier residence times, scheduling
//! delays) are summarized by tail quantiles, but storing every observation
//! of a long run is wasteful. The P² algorithm (Jain & Chlamtac, 1985)
//! estimates a quantile online with five markers and O(1) memory by
//! adjusting marker heights with a piecewise-parabolic fit.

/// Streaming estimator of a single quantile.
///
/// # Example
///
/// ```
/// use vsched_stats::P2Quantile;
///
/// let mut q = P2Quantile::new(0.5)?; // median
/// for i in 1..=1001 {
///     q.push(f64::from(i));
/// }
/// let est = q.estimate().unwrap();
/// assert!((est - 501.0).abs() < 1.0);
/// # Ok::<(), vsched_stats::StatsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based observation counts).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Position increments.
    dn: [f64; 5],
    count: usize,
    /// First five observations, before the markers initialize.
    init: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile (e.g. `0.95`).
    ///
    /// # Errors
    ///
    /// [`crate::StatsError::InvalidParameter`] unless `0 < p < 1`.
    pub fn new(p: f64) -> Result<Self, crate::StatsError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(crate::StatsError::InvalidParameter {
                name: "p",
                reason: format!("quantile must be in (0, 1), got {p}"),
            });
        }
        Ok(P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        })
    }

    /// The target quantile.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.init.push(x);
            if self.count == 5 {
                self.init.sort_by(|a, b| a.total_cmp(b));
                for (qi, &v) in self.q.iter_mut().zip(&self.init) {
                    *qi = v;
                }
            }
            return;
        }

        // Find the cell k containing x and update extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x < self.q[1] {
            0
        } else if x < self.q[2] {
            1
        } else if x < self.q[3] {
            2
        } else if x <= self.q[4] {
            3
        } else {
            self.q[4] = x;
            3
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate, or `None` with fewer than five observations...
    /// with 1–4 observations an exact small-sample quantile is returned.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count <= 5 {
            let mut sorted = self.init.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let idx = ((self.p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            return Some(sorted[idx]);
        }
        Some(self.q[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_uniform(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*state >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn rejects_bad_p() {
        assert!(P2Quantile::new(0.0).is_err());
        assert!(P2Quantile::new(1.0).is_err());
        assert!(P2Quantile::new(-0.5).is_err());
        assert!(P2Quantile::new(0.95).is_ok());
    }

    #[test]
    fn empty_has_no_estimate() {
        let q = P2Quantile::new(0.5).unwrap();
        assert!(q.estimate().is_none());
        assert_eq!(q.count(), 0);
    }

    #[test]
    fn small_samples_are_exact() {
        let mut q = P2Quantile::new(0.5).unwrap();
        q.push(3.0);
        assert_eq!(q.estimate(), Some(3.0));
        q.push(1.0);
        q.push(2.0);
        assert_eq!(q.estimate(), Some(2.0), "median of {{1,2,3}}");
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut q = P2Quantile::new(0.5).unwrap();
        let mut state = 7u64;
        for _ in 0..100_000 {
            q.push(lcg_uniform(&mut state));
        }
        let est = q.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.01, "median {est}");
    }

    #[test]
    fn p95_of_uniform_stream() {
        let mut q = P2Quantile::new(0.95).unwrap();
        let mut state = 11u64;
        for _ in 0..100_000 {
            q.push(lcg_uniform(&mut state));
        }
        let est = q.estimate().unwrap();
        assert!((est - 0.95).abs() < 0.01, "p95 {est}");
    }

    #[test]
    fn p99_of_exponential_stream() {
        // Exponential(1): p99 = -ln(0.01) ≈ 4.605.
        let mut q = P2Quantile::new(0.99).unwrap();
        let mut state = 13u64;
        for _ in 0..200_000 {
            let u = lcg_uniform(&mut state);
            q.push(-(1.0 - u).ln());
        }
        let est = q.estimate().unwrap();
        assert!((est - 4.605).abs() < 0.15, "p99 {est}");
    }

    #[test]
    fn monotone_ramp() {
        let mut q = P2Quantile::new(0.25).unwrap();
        for i in 0..10_000 {
            q.push(f64::from(i));
        }
        let est = q.estimate().unwrap();
        assert!((est - 2_500.0).abs() < 100.0, "q25 {est}");
    }

    #[test]
    fn accessors() {
        let mut q = P2Quantile::new(0.9).unwrap();
        assert_eq!(q.p(), 0.9);
        for i in 0..10 {
            q.push(f64::from(i));
        }
        assert_eq!(q.count(), 10);
    }
}
