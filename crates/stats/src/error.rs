//! Error type for statistics computations.

use std::error::Error;
use std::fmt;

/// Errors from statistical estimators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// An estimate was requested from fewer observations than it needs
    /// (e.g. a confidence interval from fewer than two replications).
    NotEnoughData {
        /// How many observations were available.
        have: usize,
        /// How many the estimator requires.
        need: usize,
    },
    /// A parameter was outside its domain (e.g. a confidence level not in
    /// `(0, 1)`).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Why the value is invalid.
        reason: String,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::NotEnoughData { have, need } => {
                write!(f, "not enough data: have {have} observations, need {need}")
            }
            StatsError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StatsError::NotEnoughData { have: 1, need: 2 };
        assert!(e.to_string().contains("have 1"));
        let e = StatsError::InvalidParameter {
            name: "level",
            reason: "must be in (0,1)".into(),
        };
        assert!(e.to_string().contains("level"));
    }
}
