//! Property tests for [`ReplicationController`] — the invariants the
//! parallel batched executor (`vsched-exec`) relies on for determinism:
//!
//! * merging observations in ascending order with a per-record
//!   `needs_more` check yields the same recorded prefix (and therefore
//!   bit-identical intervals) regardless of how the stream is chunked
//!   into speculative batches;
//! * `needs_more` is a pure query, and stays `false` once the
//!   replication cap is reached no matter what else is recorded;
//! * the recorded count always lands in `[min_replications, max_replications]`
//!   when enough data is available.

use proptest::prelude::*;
use vsched_stats::{ReplicationController, StoppingRule};

const ARITY: usize = 2;

fn rule(min: usize, extra: usize, half_width: f64) -> StoppingRule {
    StoppingRule::new(0.95, half_width)
        .with_min_replications(min)
        .with_max_replications(min + extra)
}

/// The sequential reference: record one observation at a time while the
/// controller asks for more.
fn drive_sequential(rule: StoppingRule, data: &[(f64, f64)]) -> ReplicationController {
    let mut controller = ReplicationController::new(rule, ARITY);
    let mut stream = data.iter();
    while controller.needs_more() {
        let Some(&(a, b)) = stream.next() else { break };
        controller.record(&[a, b]);
    }
    controller
}

/// The batched driver, as `vsched-exec` merges speculative parallel
/// batches: take arbitrarily-sized chunks of the stream, merge each chunk
/// in ascending order re-checking `needs_more` before every record, and
/// discard the surplus once the rule is satisfied.
fn drive_chunked(
    rule: StoppingRule,
    data: &[(f64, f64)],
    chunks: &[usize],
) -> ReplicationController {
    let mut controller = ReplicationController::new(rule, ARITY);
    let mut pos = 0;
    let mut next_chunk = 0;
    'merge: while controller.needs_more() && pos < data.len() {
        let size = chunks[next_chunk % chunks.len()].max(1);
        next_chunk += 1;
        let batch = &data[pos..(pos + size).min(data.len())];
        pos += batch.len();
        for &(a, b) in batch {
            if !controller.needs_more() {
                break 'merge; // surplus speculative replications discarded
            }
            controller.record(&[a, b]);
        }
    }
    controller
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn batch_chunking_never_changes_intervals(
        min in 2usize..6,
        extra in 0usize..9,
        half_width in 0.001f64..0.5,
        data in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..32),
        chunks in proptest::collection::vec(1usize..6, 1..6),
    ) {
        let sequential = drive_sequential(rule(min, extra, half_width), &data);
        let chunked = drive_chunked(rule(min, extra, half_width), &data, &chunks);
        prop_assert_eq!(sequential.replications(), chunked.replications());
        if sequential.replications() >= 2 {
            for i in 0..ARITY {
                let a = sequential.interval(i).unwrap();
                let b = chunked.interval(i).unwrap();
                prop_assert_eq!(a.mean.to_bits(), b.mean.to_bits());
                prop_assert_eq!(a.half_width.to_bits(), b.half_width.to_bits());
            }
        }
    }

    #[test]
    fn needs_more_is_a_pure_query(
        min in 2usize..6,
        extra in 0usize..9,
        data in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..32),
    ) {
        let controller = drive_sequential(rule(min, extra, 0.05), &data);
        let first = controller.needs_more();
        let n = controller.replications();
        for _ in 0..3 {
            prop_assert_eq!(controller.needs_more(), first);
            prop_assert_eq!(controller.replications(), n);
        }
    }

    #[test]
    fn converged_at_cap_stays_converged(
        min in 2usize..6,
        extra in 0usize..9,
        data in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 24..40),
    ) {
        // Tiny half-width so only the replication cap can stop the run.
        let rule = rule(min, extra, 1e-9);
        let cap = rule.max_replications;
        let mut controller = drive_sequential(rule, &data);
        prop_assert!(!controller.needs_more());
        prop_assert_eq!(controller.replications(), cap);
        // Force-feeding more observations must not reopen the experiment.
        for &(a, b) in &data[..3] {
            controller.record(&[a, b]);
            prop_assert!(!controller.needs_more());
        }
    }

    #[test]
    fn recorded_count_respects_rule_bounds(
        min in 2usize..6,
        extra in 0usize..9,
        half_width in 0.001f64..0.5,
        data in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 24..40),
    ) {
        let rule = rule(min, extra, half_width);
        let (lo, hi) = (rule.min_replications, rule.max_replications);
        let controller = drive_sequential(rule, &data);
        prop_assert!(controller.replications() >= lo);
        prop_assert!(controller.replications() <= hi);
    }
}
