//! Golden-figure regression tests against the committed
//! `bench_results/*.json` snapshots.
//!
//! Two layers:
//!
//! 1. **Invariant checks** parse every committed row and assert the
//!    qualitative shape the paper reports (RRS fairness, SCS starvation,
//!    RCS's middle ground, utilization falling with the sync rate). These
//!    catch a regenerated-but-wrong snapshot.
//! 2. **Sparse regeneration** reruns a handful of cells through the real
//!    experiment pipeline and compares them to the snapshot within a
//!    tolerance band. Replication seeding is deterministic, so a drift
//!    beyond the band means the simulation itself changed behaviour.

use serde_json::Value;
use vsched_bench::{paper_config, run_cell};
use vsched_core::{Engine, PolicyKind};

/// Tolerance for regenerated cells vs. the committed snapshot. Seeds are
/// deterministic, so regeneration is expected to be near-exact; the band
/// only absorbs deliberate small numerical changes.
const REGEN_TOLERANCE: f64 = 0.02;

fn golden(name: &str) -> Vec<Value> {
    let path = format!(
        "{}/../../bench_results/{name}.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden file {path}: {e}"));
    let root: Value = serde_json::from_str(&text).expect("golden file parses");
    root.get("rows")
        .and_then(Value::as_array)
        .expect("golden file has rows")
        .clone()
}

fn num(row: &Value, key: &str) -> f64 {
    row.get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("row missing number `{key}`"))
}

fn nums(row: &Value, key: &str) -> Vec<f64> {
    row.get(key)
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("row missing array `{key}`"))
        .iter()
        .map(|v| v.as_f64().expect("numeric array"))
        .collect()
}

fn text<'a>(row: &'a Value, key: &str) -> &'a str {
    row.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("row missing string `{key}`"))
}

fn find(rows: &[Value], pred: impl Fn(&Value) -> bool) -> &Value {
    rows.iter().find(|r| pred(r)).expect("golden row exists")
}

#[test]
fn fig8_golden_shape() {
    let rows = golden("fig8_fairness");
    assert_eq!(rows.len(), 12, "4 PCPU counts x 3 policies");
    for row in &rows {
        let reps = num(row, "replications") as usize;
        assert!((5..=20).contains(&reps), "replications out of rule bounds");
        let means = nums(row, "availability_mean");
        assert_eq!(means.len(), 4, "fig8 tracks four VCPUs");
        let policy = text(row, "policy");
        let pcpus = num(row, "pcpus") as usize;
        let spread = means.iter().copied().fold(f64::MIN, f64::max)
            - means.iter().copied().fold(f64::MAX, f64::min);
        // RRS is the fairness baseline: equal availability on every VCPU.
        if policy == "RRS" {
            assert!(spread < 0.05, "RRS must be fair, spread {spread}");
        }
        if pcpus == 1 {
            match policy {
                // SCS on one PCPU starves VM1/VM2 completely.
                "SCS" => {
                    assert!(means[0] < 0.01 && means[1] < 0.01);
                    assert!(means[2] > 0.4 && means[3] > 0.4);
                }
                // RCS keeps every VCPU alive (its co-scheduling relaxation).
                "RCS" => assert!(means.iter().all(|&m| m > 0.05)),
                _ => {}
            }
        }
        // Enough PCPUs for every VCPU: nothing waits under any policy.
        if pcpus == 4 {
            assert!(means.iter().all(|&m| m > 0.99), "{policy} @4: {means:?}");
        }
    }
}

#[test]
fn fig9_golden_shape() {
    let rows = golden("fig9_pcpu_util");
    assert_eq!(rows.len(), 9, "3 VM sets x 3 policies");
    for row in &rows {
        let set = num(row, "set") as usize;
        let policy = text(row, "policy");
        let avg = num(row, "avg_pcpu_utilization");
        let per_pcpu = nums(row, "per_pcpu_mean");
        assert_eq!(per_pcpu.len(), 4);
        match (set, policy) {
            // Set 1 (VCPUs == PCPUs): every policy saturates the host.
            (1, _) => assert!(avg > 0.95, "set1 {policy}: {avg}"),
            // Overcommit: strict co-scheduling idles PCPUs waiting for
            // full-VM gangs; RRS and RCS keep the host busy.
            (_, "SCS") => {
                assert!(avg < 0.9, "SCS must waste PCPU time, got {avg}");
                let idlest = per_pcpu.iter().copied().fold(f64::MAX, f64::min);
                assert!(idlest < 0.55, "SCS leaves a PCPU mostly idle");
            }
            _ => assert!(avg > 0.95, "set{set} {policy}: {avg}"),
        }
    }
    // The ordering the paper highlights: SCS clearly below both others.
    for set in [2.0, 3.0] {
        let get = |p: &str| {
            let row = find(&rows, |r| num(r, "set") == set && text(r, "policy") == p);
            num(row, "avg_pcpu_utilization")
        };
        assert!(get("SCS") < get("RRS") - 0.05);
        assert!(get("SCS") < get("RCS") - 0.05);
    }
}

#[test]
fn fig10_golden_shape() {
    let rows = golden("fig10_vcpu_util");
    assert_eq!(rows.len(), 12, "3 VM sets x 4 sync rates");
    let util = |row: &Value, policy: &str| {
        row.get("utilization")
            .and_then(|u| u.get(policy))
            .and_then(Value::as_f64)
            .expect("utilization cell")
    };
    for row in &rows {
        let set = num(row, "set") as usize;
        let (rrs, scs, rcs) = (util(row, "RRS"), util(row, "SCS"), util(row, "RCS"));
        if set == 1 {
            // No overcommit: policies are indistinguishable.
            assert!((rrs - scs).abs() < 1e-9 && (rrs - rcs).abs() < 1e-9);
        } else {
            // Overcommit: RRS pays the most sync latency, so it is strictly
            // lowest; SCS and RCS trade places within a narrow band (at
            // sync 1:2 in set 3 RCS actually edges out SCS), so no strict
            // SCS >= RCS ordering is asserted.
            assert!(rrs <= scs + 1e-9, "set{set}: RRS above SCS");
            assert!(rrs <= rcs + 1e-9, "set{set}: RRS above RCS");
            assert!((scs - rcs).abs() < 0.05, "SCS/RCS band too wide");
        }
    }
    // Utilization falls monotonically as the sync rate rises 1:5 -> 1:2.
    for set in 1..=3 {
        for policy in ["RRS", "SCS", "RCS"] {
            let series: Vec<f64> = ["1:5", "1:4", "1:3", "1:2"]
                .iter()
                .map(|sync| {
                    let row = find(&rows, |r| {
                        num(r, "set") as usize == set && text(r, "sync") == *sync
                    });
                    util(row, policy)
                })
                .collect();
            assert!(
                series.windows(2).all(|w| w[0] > w[1]),
                "set{set} {policy}: sync cost not monotone: {series:?}"
            );
        }
    }
}

/// Regenerates a sparse selection of cells through the live pipeline and
/// compares them to the committed snapshots.
#[test]
fn sparse_regeneration_matches_golden() {
    // Fig 8, pcpus = 4, RRS: per-VCPU availability.
    let fig8 = golden("fig8_fairness");
    let row = find(&fig8, |r| {
        num(r, "pcpus") == 4.0 && text(r, "policy") == "RRS"
    });
    let report = run_cell(
        paper_config(4, &[2, 1, 1], (1, 5)),
        PolicyKind::RoundRobin,
        Engine::San,
    );
    for (regen, gold) in report
        .vcpu_availability
        .iter()
        .map(|ci| ci.mean)
        .zip(nums(row, "availability_mean"))
    {
        assert!(
            (regen - gold).abs() < REGEN_TOLERANCE,
            "fig8 availability drifted: regenerated {regen}, golden {gold}"
        );
    }

    // Fig 9, set 2 (2+3 VCPUs), SCS: the starvation cell.
    let fig9 = golden("fig9_pcpu_util");
    let row = find(&fig9, |r| {
        num(r, "set") == 2.0 && text(r, "policy") == "SCS"
    });
    let report = run_cell(
        paper_config(4, &[2, 3], (1, 5)),
        PolicyKind::StrictCo,
        Engine::San,
    );
    let regen = report.avg_pcpu_utilization();
    let gold = num(row, "avg_pcpu_utilization");
    assert!(
        (regen - gold).abs() < REGEN_TOLERANCE,
        "fig9 SCS cell drifted: regenerated {regen}, golden {gold}"
    );

    // Fig 10, set 1, sync 1:5, RRS: the no-overcommit baseline.
    let fig10 = golden("fig10_vcpu_util");
    let row = find(&fig10, |r| num(r, "set") == 1.0 && text(r, "sync") == "1:5");
    let report = run_cell(
        paper_config(4, &[2, 2], (1, 5)),
        PolicyKind::RoundRobin,
        Engine::San,
    );
    let regen = report.avg_vcpu_utilization();
    let gold = row
        .get("utilization")
        .and_then(|u| u.get("RRS"))
        .and_then(Value::as_f64)
        .unwrap();
    assert!(
        (regen - gold).abs() < REGEN_TOLERANCE,
        "fig10 RRS cell drifted: regenerated {regen}, golden {gold}"
    );
}
