//! Text-table output for the figure binaries.
//!
//! The implementation moved to `vsched_campaign::table` when the campaign
//! engine landed (the renderers there produce the very same tables); this
//! module re-exports it so existing `vsched_bench::report` users keep
//! compiling. JSON output is handled by the campaign's atomic result
//! store and figure writer — see `vsched_campaign::sweep`.

pub use vsched_campaign::table::{ci_cell, Table};
