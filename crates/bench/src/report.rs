//! Text-table and JSON output for the figure binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes a JSON value under `bench_results/<name>.json`, creating the
/// directory if needed. Failures are reported but non-fatal — the console
/// table is the primary output.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = Path::new("bench_results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(body) => {
            if let Err(e) = fs::write(&path, body) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[wrote {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Formats a confidence interval as `mean±hw`.
#[must_use]
pub fn ci_cell(ci: &vsched_stats::ConfidenceInterval) -> String {
    format!("{:.3}±{:.3}", ci.mean, ci.half_width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header", "b"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long_header"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn ci_cell_format() {
        let ci = vsched_stats::ConfidenceInterval {
            mean: 0.5,
            half_width: 0.012,
            level: 0.95,
            n: 5,
        };
        assert_eq!(ci_cell(&ci), "0.500±0.012");
    }
}
