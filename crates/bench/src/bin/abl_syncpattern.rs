//! ABL4 — synchronization-pattern ablation.
//!
//! The paper defines the sync ratio verbally: "the 1:5 ratio means that
//! for five workloads there is one synchronization point". That sentence
//! admits two readings — a Bernoulli coin with p = 1/5 per workload (our
//! default) or a deterministic *every fifth workload* pattern. This
//! ablation runs Figure 10's oversubscribed cell under both readings at
//! every sync rate, showing the reproduction is insensitive to the
//! choice.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin abl_syncpattern
//! ```

use serde_json::json;
use vsched_bench::report::{write_json, Table};
use vsched_core::{Engine, ExperimentBuilder, PolicyKind, SystemConfig, VmSpec, WorkloadSpec};

fn config(sync_k: u32, deterministic: bool) -> SystemConfig {
    let mut w = WorkloadSpec::paper_default()
        .with_sync_ratio(1, sync_k)
        .expect("valid ratio");
    if deterministic {
        w.sync_probability = 0.0;
        w = w.with_sync_every(sync_k).expect("valid k");
    }
    let mut b = SystemConfig::builder().pcpus(4);
    for &n in &[2usize, 4] {
        b = b.vm_spec(VmSpec {
            vcpus: n,
            workload: w.clone(),
            weight: 1,
        });
    }
    b.build().expect("valid config")
}

fn main() {
    let mut table = Table::new(
        "ABL4: Bernoulli vs every-k-th sync points, VMs {2,4}, 4 PCPUs (avg VCPU util)",
        &["sync", "policy", "Bernoulli", "every k-th", "|Δ|"],
    );
    let mut rows = Vec::new();
    for k in [5u32, 3, 2] {
        for policy in PolicyKind::paper_trio() {
            let run = |deterministic: bool| {
                ExperimentBuilder::new(config(k, deterministic), policy.clone())
                    .engine(Engine::Direct)
                    .warmup(2_000)
                    .horizon(40_000)
                    .replications_exact(5)
                    .run()
                    .expect("ablation runs")
                    .avg_vcpu_utilization()
            };
            let bernoulli = run(false);
            let every_kth = run(true);
            table.row(vec![
                format!("1:{k}"),
                policy.label().to_string(),
                format!("{bernoulli:.3}"),
                format!("{every_kth:.3}"),
                format!("{:.3}", (bernoulli - every_kth).abs()),
            ]);
            rows.push(json!({
                "sync": format!("1:{k}"),
                "policy": policy.label(),
                "bernoulli": bernoulli,
                "every_kth": every_kth,
            }));
        }
    }
    table.print();
    println!();
    println!("expected: small |Δ| everywhere — the figures do not hinge on how the");
    println!("paper's ratio sentence is read.");
    write_json("abl_syncpattern", &json!({ "rows": rows }));
}
