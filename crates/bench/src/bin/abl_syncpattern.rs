//! ABL4 — synchronization-pattern ablation: Bernoulli sync points vs the
//! deterministic every-k-th reading of the paper's ratio sentence.
//!
//! Thin shim over the `abl_syncpattern` experiment of
//! `configs/paper.sweep.json`; see `vsched-campaign` for the engine.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin abl_syncpattern
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    vsched_bench::campaign_shim("abl_syncpattern")
}
