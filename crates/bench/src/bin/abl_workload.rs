//! ABL3 — workload-distribution ablation: the Figure 10 comparison under
//! a spectrum of load distributions (resonant, low-variance, heavy-tail,
//! rate-limited).
//!
//! Thin shim over the `abl_workload` experiment of
//! `configs/paper.sweep.json`; see `vsched-campaign` for the engine.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin abl_workload
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    vsched_bench::campaign_shim("abl_workload")
}
