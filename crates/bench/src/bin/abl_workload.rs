//! ABL3 — workload-distribution ablation.
//!
//! The paper's generator is "configurable to any distribution and rate"
//! but evaluates only one (unspecified) distribution. This ablation
//! re-runs the Figure 10 comparison under a spectrum of load-duration
//! distributions with the same mean (10 ticks) and increasing variance,
//! plus a rate-limited (interarrival) variant. Two regimes emerge:
//!
//! * a **resonance** regime (deterministic loads dividing the timeslice):
//!   jobs never straddle a preemption, round-robin pays no sync latency;
//! * a **heavy-tail** regime (exponential): long sync jobs outlive gang
//!   windows, eroding — even inverting — the co-scheduling advantage.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin abl_workload
//! ```

use serde_json::json;
use vsched_bench::report::{write_json, Table};
use vsched_core::{Engine, ExperimentBuilder, PolicyKind, SystemConfig, VmSpec, WorkloadSpec};
use vsched_des::Dist;

fn config(load: Dist, interarrival: Option<Dist>) -> SystemConfig {
    let workload = WorkloadSpec {
        load,
        sync_probability: 0.2,
        sync_mechanism: Default::default(),
        sync_every: None,
        interarrival,
    };
    let mut b = SystemConfig::builder().pcpus(4);
    for &n in &[2usize, 4] {
        b = b.vm_spec(VmSpec {
            vcpus: n,
            workload: workload.clone(),
            weight: 1,
        });
    }
    b.build().expect("valid config")
}

fn main() {
    let cases: Vec<(&str, Dist, Option<Dist>)> = vec![
        (
            "det(10) [resonant]",
            Dist::deterministic(10.0).unwrap(),
            None,
        ),
        ("det(13)", Dist::deterministic(13.0).unwrap(), None),
        ("uniform(8,12)", Dist::uniform(8.0, 12.0).unwrap(), None),
        ("uniform(5,15)", Dist::uniform(5.0, 15.0).unwrap(), None),
        ("erlang(16,10)", Dist::erlang(16, 10.0).unwrap(), None),
        ("erlang(4,10)", Dist::erlang(4, 10.0).unwrap(), None),
        ("exponential(10)", Dist::exponential(10.0).unwrap(), None),
        (
            "uniform(5,15), arrivals exp(12)",
            Dist::uniform(5.0, 15.0).unwrap(),
            Some(Dist::exponential(12.0).unwrap()),
        ),
    ];
    let mut table = Table::new(
        "ABL3: avg VCPU utilization by load distribution, VMs {2,4}, 4 PCPUs, sync 1:5",
        &["load", "RRS", "SCS", "RCS", "SCS-RRS gap"],
    );
    let mut rows = Vec::new();
    for (name, load, inter) in &cases {
        let mut utils = Vec::new();
        for policy in PolicyKind::paper_trio() {
            let report = ExperimentBuilder::new(config(load.clone(), inter.clone()), policy)
                .engine(Engine::Direct)
                .warmup(2_000)
                .horizon(40_000)
                .replications_exact(5)
                .run()
                .expect("ablation runs");
            utils.push(report.avg_vcpu_utilization());
        }
        table.row(vec![
            (*name).to_string(),
            format!("{:.3}", utils[0]),
            format!("{:.3}", utils[1]),
            format!("{:.3}", utils[2]),
            format!("{:+.3}", utils[1] - utils[0]),
        ]);
        rows.push(json!({
            "load": name,
            "rrs": utils[0],
            "scs": utils[1],
            "rcs": utils[2],
        }));
    }
    table.print();
    println!();
    println!("expected: positive SCS-RRS gap for low-variance loads;");
    println!("          ~zero gap for resonant deterministic loads;");
    println!("          shrinking/negative gap for heavy-tailed loads.");
    write_json("abl_workload", &json!({ "rows": rows }));
}
