//! Figure 9 — "The averaged PCPU Utilization (of four PCPUs) in different
//! VM setups" at 95% confidence.
//!
//! Thin shim over the `fig9_pcpu_util` experiment of
//! `configs/paper.sweep.json`; see `vsched-campaign` for the engine.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin fig9_pcpu_util
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    vsched_bench::campaign_shim("fig9_pcpu_util")
}
