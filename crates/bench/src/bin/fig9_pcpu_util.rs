//! Figure 9 — "The averaged PCPU Utilization (of four PCPUs) in different
//! VM setups" at 95% confidence.
//!
//! Setup (paper §IV.B): three VM sets — {2+2}, {2+3}, {2+4} VCPUs; sync
//! ratio 1:5; 4 PCPUs throughout; policies RRS / SCS / RCS; metric =
//! average PCPU utilization (fraction of time ASSIGNED). This experiment
//! exposes the CPU-fragmentation problem of strict co-scheduling.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin fig9_pcpu_util
//! ```

use serde_json::json;
use vsched_bench::report::{write_json, Table};
use vsched_bench::{paper_config, run_cell};
use vsched_core::{Engine, PolicyKind};

const SETS: [&[usize]; 3] = [&[2, 2], &[2, 3], &[2, 4]];

fn main() {
    let mut table = Table::new(
        "Figure 9: average PCPU utilization, 4 PCPUs, sync 1:5 (95% CI)",
        &["VM set", "VCPUs", "policy", "reps", "avg PCPU util", "±"],
    );
    let mut json_rows = Vec::new();
    for (i, set) in SETS.iter().enumerate() {
        for policy in PolicyKind::paper_trio() {
            let config = paper_config(4, set, (1, 5));
            let report = run_cell(config, policy.clone(), Engine::San);
            let mean = report.avg_pcpu_utilization();
            // Conservative aggregate half-width: the max across PCPUs.
            let hw = report
                .pcpu_utilization
                .iter()
                .map(|ci| ci.half_width)
                .fold(0.0, f64::max);
            table.row(vec![
                format!("set {}", i + 1),
                set.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("+"),
                policy.label().to_string(),
                report.replications.to_string(),
                format!("{mean:.3}"),
                format!("{hw:.3}"),
            ]);
            json_rows.push(json!({
                "set": i + 1,
                "vms": set,
                "policy": policy.label(),
                "replications": report.replications,
                "avg_pcpu_utilization": mean,
                "per_pcpu_mean": report.pcpu_utilization_means(),
            }));
        }
    }
    table.print();
    println!();
    println!("paper shape checks:");
    println!("  - set 1 (4 VCPUs = 4 PCPUs): every policy saturates the PCPUs");
    println!("  - sets 2-3 (VCPUs > PCPUs): SCS loses PCPU time to fragmentation");
    println!("  - RCS stays above 90% PCPU utilization in every set");
    write_json("fig9_pcpu_util", &json!({ "rows": json_rows }));
}
