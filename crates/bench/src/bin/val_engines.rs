//! VAL1 — model-fidelity cross-validation (the paper's Discussion §V asks
//! for exactly this evaluation).
//!
//! Runs every paper configuration through both engines — the SAN engine
//! (the faithful Mobius-style implementation) and the independently coded
//! direct time-stepped engine — and reports the largest disagreement in
//! each metric. Agreement within the confidence-interval width is the
//! fidelity evidence.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin val_engines
//! ```

use serde_json::json;
use vsched_bench::report::{write_json, Table};
use vsched_bench::{paper_config, run_cell};
use vsched_core::{Engine, PolicyKind, SystemConfig};

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn main() {
    let cells: Vec<(&str, SystemConfig)> = vec![
        ("fig8 @1 PCPU", paper_config(1, &[2, 1, 1], (1, 5))),
        ("fig8 @3 PCPUs", paper_config(3, &[2, 1, 1], (1, 5))),
        ("fig9 set2", paper_config(4, &[2, 3], (1, 5))),
        ("fig10 set3 1:2", paper_config(4, &[2, 4], (1, 2))),
    ];
    let mut table = Table::new(
        "VAL1: SAN vs direct engine, max |Δ| per metric",
        &["config", "policy", "Δ avail", "Δ vcpu util", "Δ pcpu util"],
    );
    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    for (name, config) in &cells {
        for policy in PolicyKind::paper_trio() {
            let san = run_cell(config.clone(), policy.clone(), Engine::San);
            let direct = run_cell(config.clone(), policy.clone(), Engine::Direct);
            let d_avail = max_abs_diff(
                &san.vcpu_availability_means(),
                &direct.vcpu_availability_means(),
            );
            let d_util = max_abs_diff(
                &san.vcpu_utilization_means(),
                &direct.vcpu_utilization_means(),
            );
            let d_pcpu = max_abs_diff(
                &san.pcpu_utilization_means(),
                &direct.pcpu_utilization_means(),
            );
            worst = worst.max(d_avail).max(d_util).max(d_pcpu);
            table.row(vec![
                (*name).to_string(),
                policy.label().to_string(),
                format!("{d_avail:.4}"),
                format!("{d_util:.4}"),
                format!("{d_pcpu:.4}"),
            ]);
            rows.push(json!({
                "config": name,
                "policy": policy.label(),
                "delta_availability": d_avail,
                "delta_vcpu_utilization": d_util,
                "delta_pcpu_utilization": d_pcpu,
            }));
        }
    }
    table.print();
    println!();
    println!("worst disagreement across all cells: {worst:.4}");
    println!("(the paper's reporting criterion is a CI width of 0.1, i.e. ±0.05)");
    write_json("val_engines", &json!({ "rows": rows, "worst": worst }));
}
