//! VAL1 — model-fidelity cross-validation: every paper configuration
//! through both engines, reporting the largest per-metric disagreement.
//!
//! Thin shim over the `val_engines` experiment of
//! `configs/paper.sweep.json`; see `vsched-campaign` for the engine.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin val_engines
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    vsched_bench::campaign_shim("val_engines")
}
