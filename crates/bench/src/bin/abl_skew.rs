//! ABL2 — RCS skew-threshold ablation: efficiency vs. fairness as relaxed
//! co-scheduling's only tuning knob sweeps from strict to free.
//!
//! Thin shim over the `abl_skew` experiment of `configs/paper.sweep.json`;
//! see `vsched-campaign` for the engine.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin abl_skew
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    vsched_bench::campaign_shim("abl_skew")
}
