//! ABL2 — RCS skew-threshold ablation.
//!
//! The skew threshold is relaxed co-scheduling's only tuning knob: it
//! trades synchronization latency (tight threshold ≈ strict co-scheduling)
//! against scheduling freedom (loose threshold ≈ round-robin). This
//! ablation sweeps it on two axes:
//!
//! * **efficiency** — avg VCPU utilization on the oversubscribed Figure 10
//!   setup (VMs {2,4}, 4 PCPUs),
//! * **fairness** — the availability spread on the Figure 8 setup
//!   (VMs {2,1,1}, 1 PCPU), where strictness starves the SMP VM.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin abl_skew
//! ```

use serde_json::json;
use vsched_bench::paper_config;
use vsched_bench::report::{write_json, Table};
use vsched_core::{Engine, ExperimentBuilder, MetricsReport, PolicyKind};

fn run(config: vsched_core::SystemConfig, policy: PolicyKind) -> MetricsReport {
    ExperimentBuilder::new(config, policy)
        .engine(Engine::Direct)
        .warmup(2_000)
        .horizon(40_000)
        .replications_exact(5)
        .run()
        .expect("ablation runs")
}

fn spread(xs: &[f64]) -> f64 {
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    let min = xs.iter().cloned().fold(f64::MAX, f64::min);
    max - min
}

fn main() {
    let mut table = Table::new(
        "ABL2: RCS skew threshold sweep (resume = threshold/2)",
        &[
            "threshold",
            "util {2,4}@4P",
            "pcpu util",
            "avail spread {2,1,1}@1P",
            "SMP VM avail",
        ],
    );
    let mut rows = Vec::new();
    for threshold in [2u64, 5, 10, 20, 40, 80] {
        let policy = PolicyKind::RelaxedCo {
            skew_threshold: threshold,
            skew_resume: threshold / 2,
        };
        let eff = run(paper_config(4, &[2, 4], (1, 5)), policy.clone());
        let fair = run(paper_config(1, &[2, 1, 1], (1, 5)), policy);
        let smp_avail =
            (fair.vcpu_availability_means()[0] + fair.vcpu_availability_means()[1]) / 2.0;
        table.row(vec![
            threshold.to_string(),
            format!("{:.3}", eff.avg_vcpu_utilization()),
            format!("{:.3}", eff.avg_pcpu_utilization()),
            format!("{:.3}", spread(&fair.vcpu_availability_means())),
            format!("{smp_avail:.3}"),
        ]);
        rows.push(json!({
            "threshold": threshold,
            "vcpu_utilization": eff.avg_vcpu_utilization(),
            "pcpu_utilization": eff.avg_pcpu_utilization(),
            "availability_spread": spread(&fair.vcpu_availability_means()),
            "smp_vm_availability": smp_avail,
        }));
    }
    // Anchors for comparison.
    let rrs = run(paper_config(4, &[2, 4], (1, 5)), PolicyKind::RoundRobin);
    let scs = run(paper_config(4, &[2, 4], (1, 5)), PolicyKind::StrictCo);
    table.print();
    println!();
    println!(
        "anchors on the efficiency axis: RRS = {:.3}, SCS = {:.3}",
        rrs.avg_vcpu_utilization(),
        scs.avg_vcpu_utilization()
    );
    println!("expected: tight thresholds approach SCS efficiency; loose ones approach RRS.");
    write_json("abl_skew", &json!({ "rows": rows }));
}
