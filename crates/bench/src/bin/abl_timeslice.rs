//! ABL1 — timeslice ablation: how the Figure 10 result depends on the
//! hypervisor timeslice.
//!
//! Thin shim over the `abl_timeslice` experiment of
//! `configs/paper.sweep.json`; see `vsched-campaign` for the engine.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin abl_timeslice
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    vsched_bench::campaign_shim("abl_timeslice")
}
