//! ABL1 — timeslice ablation.
//!
//! The paper fixes the hypervisor timeslice implicitly; this ablation
//! shows how the Figure 10 result depends on it. The synchronization
//! latency of round-robin comes from a preempted lock holder waiting a
//! whole rotation for its next slice, so the RRS↔co-scheduling gap should
//! *grow* with the timeslice, while SCS (whose gangs always run together)
//! should be flat.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin abl_timeslice
//! ```

use serde_json::json;
use vsched_bench::report::{write_json, Table};
use vsched_core::{Engine, ExperimentBuilder, PolicyKind, SystemConfig};

fn config(timeslice: u64) -> SystemConfig {
    SystemConfig::builder()
        .pcpus(4)
        .vm(2)
        .vm(4)
        .sync_ratio(1, 5)
        .timeslice(timeslice)
        .build()
        .expect("valid config")
}

fn main() {
    let mut table = Table::new(
        "ABL1: avg VCPU utilization vs timeslice, VMs {2,4}, 4 PCPUs, sync 1:5",
        &["timeslice", "RRS", "SCS", "RCS", "SCS-RRS gap"],
    );
    let mut rows = Vec::new();
    for timeslice in [5u64, 10, 20, 30, 50, 100] {
        let mut utils = Vec::new();
        for policy in PolicyKind::paper_trio() {
            let report = ExperimentBuilder::new(config(timeslice), policy)
                .engine(Engine::Direct)
                .warmup(2_000)
                .horizon(40_000)
                .replications_exact(5)
                .run()
                .expect("ablation runs");
            utils.push(report.avg_vcpu_utilization());
        }
        table.row(vec![
            timeslice.to_string(),
            format!("{:.3}", utils[0]),
            format!("{:.3}", utils[1]),
            format!("{:.3}", utils[2]),
            format!("{:+.3}", utils[1] - utils[0]),
        ]);
        rows.push(json!({
            "timeslice": timeslice,
            "rrs": utils[0],
            "scs": utils[1],
            "rcs": utils[2],
        }));
    }
    table.print();
    println!();
    println!("expected: the SCS-RRS gap grows with the timeslice; SCS is flat.");
    write_json("abl_timeslice", &json!({ "rows": rows }));
}
