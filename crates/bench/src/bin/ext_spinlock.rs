//! EXT1 — spinlock synchronization (the paper's §V(ii) future work):
//! lock-holder preemption measured as useful work vs. spin waste.
//!
//! Thin shim over the `ext_spinlock` experiment of
//! `configs/paper.sweep.json`; see `vsched-campaign` for the engine.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin ext_spinlock
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    vsched_bench::campaign_shim("ext_spinlock")
}
