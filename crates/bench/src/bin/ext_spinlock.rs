//! EXT1 — spinlock synchronization (the paper's §V(ii) future work).
//!
//! Re-runs the Figure 10 comparison with synchronization points as
//! spinlock **critical sections** instead of barriers: a sync job holds a
//! per-VM lock for its whole duration and sibling sync jobs *spin* (burn
//! PCPU without progress). This exposes the §II.B lock-holder-preemption
//! problem directly — the metric split shows how much of each VCPU's
//! scheduled time is useful work vs. spin waste per policy.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin ext_spinlock
//! ```

use serde_json::json;
use vsched_bench::report::{write_json, Table};
use vsched_core::{Engine, ExperimentBuilder, PolicyKind, SystemConfig, VmSpec, WorkloadSpec};
use vsched_des::Dist;

fn config(vm_sizes: &[usize], sync_probability: f64) -> SystemConfig {
    let workload = WorkloadSpec {
        load: Dist::Uniform {
            low: 5.0,
            high: 15.0,
        },
        sync_probability,
        sync_mechanism: Default::default(),
        sync_every: None,
        interarrival: None,
    }
    .with_spinlock();
    let mut b = SystemConfig::builder().pcpus(4);
    for &n in vm_sizes {
        b = b.vm_spec(VmSpec {
            vcpus: n,
            workload: workload.clone(),
            weight: 1,
        });
    }
    b.build().expect("valid config")
}

fn main() {
    let mut table = Table::new(
        "EXT1: spinlock critical sections, 4 PCPUs (useful util / spin waste)",
        &["VM set", "sync", "policy", "useful", "spin", "avail"],
    );
    let mut rows = Vec::new();
    for set in [&[2usize, 3][..], &[4, 2]] {
        for sync in [(1u32, 5u32), (1, 3)] {
            for policy in PolicyKind::paper_trio() {
                let p = f64::from(sync.0) / f64::from(sync.1);
                let report = ExperimentBuilder::new(config(set, p), policy.clone())
                    .engine(Engine::San)
                    .warmup(1_000)
                    .horizon(20_000)
                    .replications_exact(5)
                    .run()
                    .expect("experiment runs");
                table.row(vec![
                    set.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("+"),
                    format!("{}:{}", sync.0, sync.1),
                    policy.label().to_string(),
                    format!("{:.3}", report.avg_vcpu_utilization()),
                    format!("{:.3}", report.avg_vcpu_spin()),
                    format!("{:.3}", report.avg_vcpu_availability()),
                ]);
                rows.push(json!({
                    "vms": set,
                    "sync": format!("{}:{}", sync.0, sync.1),
                    "policy": policy.label(),
                    "useful_utilization": report.avg_vcpu_utilization(),
                    "spin_fraction": report.avg_vcpu_spin(),
                    "availability": report.avg_vcpu_availability(),
                }));
            }
        }
    }
    table.print();
    println!();
    println!("expected: co-scheduling converts RRS's holder-preemption spin into useful");
    println!("work; the residual spin under SCS is the intrinsic contention of");
    println!("concurrent critical sections.");
    write_json("ext_spinlock", &json!({ "rows": rows }));
}
