//! Figure 8 — "The availability of four VCPUs in three VMs
//! (2 VCPUs + 1 VCPU + 1 VCPU)" at 95% confidence.
//!
//! Setup (paper §IV.A): three VMs — one 2-VCPU VM (VCPU1.1, VCPU1.2) and
//! two 1-VCPU VMs (VCPU2.1, VCPU3.1); sync ratio 1:5; PCPUs varied 1 → 4;
//! policies RRS / SCS / RCS; metric = per-VCPU availability (fraction of
//! time ACTIVE).
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin fig8_fairness
//! ```

use serde_json::json;
use vsched_bench::report::{ci_cell, write_json, Table};
use vsched_bench::{paper_config, run_cell};
use vsched_core::{Engine, PolicyKind};

fn main() {
    let mut table = Table::new(
        "Figure 8: VCPU availability, VMs {2,1,1}, sync 1:5 (95% CI)",
        &[
            "PCPUs", "policy", "reps", "VCPU1.1", "VCPU1.2", "VCPU2.1", "VCPU3.1",
        ],
    );
    let mut json_rows = Vec::new();
    for pcpus in 1..=4 {
        for policy in PolicyKind::paper_trio() {
            let config = paper_config(pcpus, &[2, 1, 1], (1, 5));
            let report = run_cell(config, policy.clone(), Engine::San);
            let cells: Vec<String> = report.vcpu_availability.iter().map(ci_cell).collect();
            table.row(
                [
                    pcpus.to_string(),
                    policy.label().to_string(),
                    report.replications.to_string(),
                ]
                .into_iter()
                .chain(cells)
                .collect(),
            );
            json_rows.push(json!({
                "pcpus": pcpus,
                "policy": policy.label(),
                "replications": report.replications,
                "availability_mean": report.vcpu_availability_means(),
                "availability_half_width": report
                    .vcpu_availability
                    .iter()
                    .map(|ci| ci.half_width)
                    .collect::<Vec<_>>(),
            }));
        }
    }
    table.print();
    println!();
    println!("paper shape checks:");
    println!("  - RRS rows are uniform across all four VCPUs at every PCPU count");
    println!("  - SCS at 1 PCPU starves VCPU1.1/VCPU1.2 (strict co-start impossible)");
    println!("  - RCS at 1 PCPU serves VCPU1.1/VCPU1.2, but below the 1-VCPU VMs");
    println!("  - all policies converge toward full availability at 4 PCPUs");
    write_json("fig8_fairness", &json!({ "rows": json_rows }));
}
