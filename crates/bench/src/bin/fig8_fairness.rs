//! Figure 8 — "The availability of four VCPUs in three VMs
//! (2 VCPUs + 1 VCPU + 1 VCPU)" at 95% confidence.
//!
//! Thin shim over the `fig8_fairness` experiment of
//! `configs/paper.sweep.json`; see `vsched-campaign` for the engine.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin fig8_fairness
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    vsched_bench::campaign_shim("fig8_fairness")
}
