//! EXT2 — the full scheduler roundup.
//!
//! The paper evaluates three algorithms; this framework ships eight. One
//! table compares them all on the three paper metrics over the two
//! regimes that matter: the balanced Figure 8 setup and the
//! oversubscribed Figure 10 setup. Fairness is reported as the max−min
//! spread of per-VCPU availability.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin ext_policy_roundup
//! ```

use serde_json::json;
use vsched_bench::report::{write_json, Table};
use vsched_bench::{paper_config, run_cell};
use vsched_core::{Engine, PolicyKind};

fn spread(xs: &[f64]) -> f64 {
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    let min = xs.iter().cloned().fold(f64::MAX, f64::min);
    max - min
}

fn all_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::RoundRobin,
        PolicyKind::StrictCo,
        PolicyKind::relaxed_co_default(),
        PolicyKind::Balance,
        PolicyKind::credit_default(),
        PolicyKind::sedf_default(),
        PolicyKind::bvt_default(),
        PolicyKind::Fcfs,
    ]
}

fn main() {
    let mut table = Table::new(
        "EXT2: all eight schedulers on the paper's two regimes",
        &[
            "policy",
            "fair spread {2,1,1}@2P",
            "min avail",
            "util {2,4}@4P",
            "pcpu util",
        ],
    );
    let mut rows = Vec::new();
    for policy in all_policies() {
        let fair = run_cell(
            paper_config(2, &[2, 1, 1], (1, 5)),
            policy.clone(),
            Engine::Direct,
        );
        let over = run_cell(
            paper_config(4, &[2, 4], (1, 3)),
            policy.clone(),
            Engine::Direct,
        );
        let avail = fair.vcpu_availability_means();
        let min_avail = avail.iter().cloned().fold(f64::MAX, f64::min);
        table.row(vec![
            policy.label().to_string(),
            format!("{:.3}", spread(&avail)),
            format!("{min_avail:.3}"),
            format!("{:.3}", over.avg_vcpu_utilization()),
            format!("{:.3}", over.avg_pcpu_utilization()),
        ]);
        rows.push(json!({
            "policy": policy.label(),
            "fairness_spread": spread(&avail),
            "min_availability": min_avail,
            "vcpu_utilization": over.avg_vcpu_utilization(),
            "pcpu_utilization": over.avg_pcpu_utilization(),
        }));
    }
    table.print();
    println!();
    println!("reading guide: a good general-purpose scheduler has a small fairness");
    println!("spread, non-zero min availability (no starvation), high VCPU");
    println!("utilization (low sync latency) and high PCPU utilization (no");
    println!("fragmentation) — the four axes the paper's three figures trade off.");
    println!();
    println!("note: CRD and SEDF show a large *per-VCPU* spread by design — they are");
    println!("VM-entitlement-fair: on {{2,1,1}} VMs each VM earns an equal share, so a");
    println!("2-VCPU VM's VCPUs each receive half of what a lone VCPU does.");
    write_json("ext_policy_roundup", &json!({ "rows": rows }));
}
