//! EXT2 — the full scheduler roundup: all eight policies on the paper's
//! three metrics over the balanced and oversubscribed regimes.
//!
//! Thin shim over the `ext_policy_roundup` experiment of
//! `configs/paper.sweep.json`; see `vsched-campaign` for the engine.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin ext_policy_roundup
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    vsched_bench::campaign_shim("ext_policy_roundup")
}
