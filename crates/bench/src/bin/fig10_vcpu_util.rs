//! Figure 10 — "The averaged VCPU Utilization with four PCPUs in different
//! VM setups" at 95% confidence.
//!
//! Thin shim over the `fig10_vcpu_util` experiment of
//! `configs/paper.sweep.json`; see `vsched-campaign` for the engine.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin fig10_vcpu_util
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    vsched_bench::campaign_shim("fig10_vcpu_util")
}
