//! Figure 10 — "The averaged VCPU Utilization with four PCPUs in different
//! VM setups" at 95% confidence.
//!
//! Setup (paper §IV.C): three VM sets — {2+2}, {2+3}, {2+4} VCPUs; sync
//! ratio varied 1:5 → 1:2; 4 PCPUs throughout; policies RRS / SCS / RCS;
//! metric = average VCPU utilization (fraction of a VCPU's scheduled time
//! spent BUSY — the reward variable "monitors the READY and BUSY states").
//! This experiment exposes synchronization latency.
//!
//! ```sh
//! cargo run --release -p vsched-bench --bin fig10_vcpu_util
//! ```

use serde_json::json;
use vsched_bench::report::{write_json, Table};
use vsched_bench::{paper_config, run_cell};
use vsched_core::{Engine, PolicyKind};

const SETS: [&[usize]; 3] = [&[2, 2], &[2, 3], &[2, 4]];
const SYNC_RATES: [(u32, u32); 4] = [(1, 5), (1, 4), (1, 3), (1, 2)];

fn main() {
    let mut table = Table::new(
        "Figure 10: average VCPU utilization, 4 PCPUs (95% CI)",
        &["VM set", "VCPUs", "sync", "RRS", "SCS", "RCS"],
    );
    let mut json_rows = Vec::new();
    for (i, set) in SETS.iter().enumerate() {
        for sync in SYNC_RATES {
            let mut cells = Vec::new();
            let mut cell_json = serde_json::Map::new();
            for policy in PolicyKind::paper_trio() {
                let config = paper_config(4, set, sync);
                let report = run_cell(config, policy.clone(), Engine::San);
                let mean = report.avg_vcpu_utilization();
                cells.push(format!("{mean:.3}"));
                cell_json.insert(policy.label().to_string(), json!(mean));
            }
            table.row(
                [
                    format!("set {}", i + 1),
                    set.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("+"),
                    format!("{}:{}", sync.0, sync.1),
                ]
                .into_iter()
                .chain(cells)
                .collect(),
            );
            json_rows.push(json!({
                "set": i + 1,
                "vms": set,
                "sync": format!("{}:{}", sync.0, sync.1),
                "utilization": cell_json,
            }));
        }
    }
    table.print();
    println!();
    println!("paper shape checks:");
    println!("  - set 1 (VCPUs = PCPUs): utilization high, no difference between policies");
    println!("  - sets 2-3 (VCPUs > PCPUs): SCS highest, RCS slightly lower, RRS last");
    println!("  - RRS degrades sharply as the sync rate rises 1:5 -> 1:2");
    write_json("fig10_vcpu_util", &json!({ "rows": json_rows }));
}
