//! Shared harness code for the figure-regeneration binaries and the
//! criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the experiment index). Since the campaign engine
//! landed, every binary is a thin shim over one experiment of the
//! checked-in `configs/paper.sweep.json` campaign ([`campaign_shim`]):
//! results come from the content-addressed store (`target/campaign-store`)
//! and the JSON lands under `bench_results/`. Run the whole campaign at
//! once with `vsched sweep configs/paper.sweep.json`.

pub mod report;

use std::path::Path;
use std::process::ExitCode;

use vsched_campaign::{run_sweep, SweepOptions};
use vsched_core::{Engine, ExperimentBuilder, MetricsReport, PolicyKind, SystemConfig};
use vsched_stats::StoppingRule;

/// Runs one named experiment of the repository's paper campaign
/// (`configs/paper.sweep.json`) — the body of every figure binary.
///
/// Cached cells are served from the store, so re-running a binary after a
/// completed sweep renders instantly and byte-identically.
#[must_use]
pub fn campaign_shim(experiment: &str) -> ExitCode {
    let spec = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("configs")
        .join("paper.sweep.json");
    let opts = SweepOptions {
        only: Some(experiment.to_string()),
        ..SweepOptions::default()
    };
    match run_sweep(&spec, &opts) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Builds the paper's standard configuration: `pcpus` physical CPUs, VMs
/// of the given sizes, sync ratio `points:per_workloads`.
///
/// # Panics
///
/// Panics on an invalid combination (never happens for the values the
/// binaries use).
#[must_use]
pub fn paper_config(pcpus: usize, vm_sizes: &[usize], sync: (u32, u32)) -> SystemConfig {
    let mut b = SystemConfig::builder()
        .pcpus(pcpus)
        .sync_ratio(sync.0, sync.1);
    for &n in vm_sizes {
        b = b.vm(n);
    }
    b.build().expect("benchmark configurations are valid")
}

/// Runs one experiment cell with the paper's stopping rule (95% level,
/// interval < 0.1), capped at 20 replications to keep figure regeneration
/// quick.
///
/// # Panics
///
/// Panics if the simulation fails — benchmark configurations must run.
#[must_use]
pub fn run_cell(config: SystemConfig, policy: PolicyKind, engine: Engine) -> MetricsReport {
    ExperimentBuilder::new(config, policy)
        .engine(engine)
        .warmup(1_000)
        .horizon(20_000)
        .stopping_rule(
            StoppingRule::paper_default()
                .with_min_replications(5)
                .with_max_replications(20),
        )
        .run()
        .expect("benchmark experiment must run")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_builds() {
        let c = paper_config(4, &[2, 1, 1], (1, 5));
        assert_eq!(c.pcpus(), 4);
        assert_eq!(c.total_vcpus(), 4);
    }

    #[test]
    fn run_cell_produces_report() {
        let c = paper_config(2, &[1, 1], (1, 5));
        let r = run_cell(c, PolicyKind::RoundRobin, Engine::Direct);
        assert!(r.replications >= 5);
        assert_eq!(r.vcpu_availability.len(), 2);
    }
}
