//! Microbenchmarks of the DES kernel's future-event list — the hot path of
//! every simulation.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;
use vsched_des::{EventQueue, SimTime, Xoshiro256StarStar};

fn bench_schedule_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(30);
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("schedule_then_drain", n), &n, |b, &n| {
            let mut rng = Xoshiro256StarStar::seed_from(1);
            b.iter_batched(
                || {
                    (0..n)
                        .map(|_| rng.next_f64() * 1000.0)
                        .collect::<Vec<f64>>()
                },
                |times| {
                    let mut q = EventQueue::new();
                    for &t in &times {
                        q.schedule(SimTime::new(t), 0, ());
                    }
                    while let Some(ev) = q.pop() {
                        black_box(ev);
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_hold_model(c: &mut Criterion) {
    // The classic "hold" benchmark: steady-state queue of fixed size, each
    // operation pops one event and schedules another.
    let mut group = c.benchmark_group("event_queue_hold");
    group.sample_size(30);
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("hold", n), &n, |b, &n| {
            let mut q = EventQueue::new();
            let mut rng = Xoshiro256StarStar::seed_from(2);
            let mut now = 0.0;
            for _ in 0..n {
                q.schedule(SimTime::new(rng.next_f64() * 100.0), 0, ());
            }
            b.iter(|| {
                let (t, _, ()) = q.pop().expect("queue never empties");
                now = t.as_f64();
                q.schedule(SimTime::new(now + rng.next_f64() * 100.0), 0, ());
            });
        });
    }
    group.finish();
}

fn bench_cancellation(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_cancel");
    group.sample_size(30);
    group.bench_function("schedule_cancel_half_drain_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = Xoshiro256StarStar::seed_from(3);
            let ids: Vec<_> = (0..10_000)
                .map(|_| q.schedule(SimTime::new(rng.next_f64() * 1000.0), 0, ()))
                .collect();
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            while let Some(ev) = q.pop() {
                black_box(ev);
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_schedule_pop,
    bench_hold_model,
    bench_cancellation
);
criterion_main!(benches);
