//! Scaling of the batched replication executor across worker counts.
//!
//! Two views:
//!
//! * `replication_scaling/*` — a real exact-count experiment (Direct
//!   engine) at 1/2/4/8 workers. Speedup tracks physical cores: on a
//!   4-core host expect >1.5x at 4 workers; on a 1-core host expect flat
//!   timings (which also bounds the executor's overhead).
//! * `executor_overlap/*` — the same pool driving latency-bound tasks
//!   (sleeps), isolating pool overlap from core count: wall-clock here
//!   scales with workers even on a single-CPU machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use vsched_bench::paper_config;
use vsched_core::{Engine, ExperimentBuilder, PolicyKind};

const REPLICATIONS: usize = 16;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_replications(c: &mut Criterion) {
    let config = paper_config(4, &[2, 1, 1], (1, 5));
    let mut group = c.benchmark_group("replication_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(REPLICATIONS as u64));
    for jobs in WORKER_COUNTS {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                ExperimentBuilder::new(config.clone(), PolicyKind::RoundRobin)
                    .engine(Engine::Direct)
                    .warmup(200)
                    .horizon(2_000)
                    .replications_exact(REPLICATIONS)
                    .jobs(jobs)
                    .run()
                    .expect("benchmark experiment")
            });
        });
    }
    group.finish();
}

fn bench_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor_overlap");
    group.sample_size(10);
    group.throughput(Throughput::Elements(REPLICATIONS as u64));
    for jobs in WORKER_COUNTS {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                vsched_exec::run_indexed(jobs, 0, REPLICATIONS, |rep| {
                    std::thread::sleep(Duration::from_millis(2));
                    Ok::<u64, ()>(rep)
                })
                .expect("sleep task cannot fail")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replications, bench_overlap);
criterion_main!(benches);
