//! Benchmarks of the CTMC solver (state-space generation + steady-state
//! power iteration) across chain sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vsched_des::Dist;
use vsched_san::{solve_steady_state, solve_transient, CtmcOptions, Model, ModelBuilder};

fn mm1k(k: i64) -> Model {
    let mut mb = ModelBuilder::new();
    let queue = mb.place("queue", 0).expect("fresh model");
    mb.activity("arrive")
        .expect("fresh model")
        .timed(Dist::exponential(1.0).expect("valid"))
        .guard("capacity", move |m| m.tokens(queue) < k)
        .output_arc(queue, 1)
        .done()
        .expect("valid");
    mb.activity("serve")
        .expect("fresh model")
        .timed(Dist::exponential(0.8).expect("valid"))
        .input_arc(queue, 1)
        .done()
        .expect("valid");
    mb.build().expect("valid")
}

/// A tandem of queues — the state space grows as K^n.
fn tandem(stages: usize, k: i64) -> Model {
    let mut mb = ModelBuilder::new();
    let places: Vec<_> = (0..stages)
        .map(|i| mb.place(&format!("q{i}"), 0).expect("fresh"))
        .collect();
    let first = places[0];
    mb.activity("arrive")
        .expect("fresh")
        .timed(Dist::exponential(1.0).expect("valid"))
        .guard("cap", move |m| m.tokens(first) < k)
        .output_arc(first, 1)
        .done()
        .expect("valid");
    for i in 0..stages {
        let mut a = mb
            .activity(&format!("serve{i}"))
            .expect("fresh")
            .timed(Dist::exponential(0.7).expect("valid"))
            .input_arc(places[i], 1);
        if i + 1 < stages {
            let next = places[i + 1];
            a = a
                .guard("cap", move |m| m.tokens(next) < k)
                .output_arc(next, 1);
        }
        a.done().expect("valid");
    }
    mb.build().expect("valid")
}

fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctmc_steady_state");
    group.sample_size(20);
    for k in [10i64, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("mm1k", k), &k, |b, &k| {
            b.iter(|| {
                let mut model = mm1k(k);
                solve_steady_state(&mut model, CtmcOptions::default()).expect("solves")
            });
        });
    }
    for stages in [2usize, 3] {
        let label = format!("tandem{stages}_k8");
        group.bench_with_input(BenchmarkId::new("tandem", label), &stages, |b, &s| {
            b.iter(|| {
                let mut model = tandem(s, 8);
                solve_steady_state(&mut model, CtmcOptions::default()).expect("solves")
            });
        });
    }
    group.finish();
}

fn bench_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctmc_transient");
    group.sample_size(20);
    for t in [10.0f64, 100.0] {
        group.bench_with_input(BenchmarkId::new("mm1k100_at", t as u64), &t, |b, &t| {
            b.iter(|| {
                let mut model = mm1k(100);
                solve_transient(&mut model, t, CtmcOptions::default()).expect("solves")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steady_state, bench_transient);
criterion_main!(benches);
