//! Wall-clock cost of regenerating one replication of each paper figure —
//! the "rapid evaluation" claim (§I) quantified. One criterion benchmark
//! per figure cell, on the SAN engine, at the paper's horizons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vsched_core::{san_model::SanSystem, PolicyKind, SystemConfig};

fn config(pcpus: usize, vms: &[usize], sync: (u32, u32)) -> SystemConfig {
    let mut b = SystemConfig::builder()
        .pcpus(pcpus)
        .sync_ratio(sync.0, sync.1);
    for &n in vms {
        b = b.vm(n);
    }
    b.build().expect("valid config")
}

fn one_replication(cfg: SystemConfig, policy: &PolicyKind) -> vsched_core::SampleMetrics {
    let mut sys = SanSystem::new(cfg, policy.create(), 7).expect("model builds");
    sys.run(1_000).expect("warmup");
    sys.reset_metrics();
    sys.run(20_000).expect("measurement");
    sys.metrics()
}

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_replication");
    group.sample_size(10);
    for pcpus in [1usize, 4] {
        for policy in PolicyKind::paper_trio() {
            let label = format!("{}pcpu_{}", pcpus, policy.label());
            group.bench_with_input(BenchmarkId::new("cell", label), &(), |b, ()| {
                b.iter(|| one_replication(config(pcpus, &[2, 1, 1], (1, 5)), &policy));
            });
        }
    }
    group.finish();
}

fn bench_fig9_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_fig10_replication");
    group.sample_size(10);
    for (set_name, set) in [("2+2", &[2usize, 2][..]), ("2+4", &[2, 4])] {
        for policy in PolicyKind::paper_trio() {
            let label = format!("{set_name}_{}", policy.label());
            group.bench_with_input(BenchmarkId::new("cell", label), &(), |b, ()| {
                b.iter(|| one_replication(config(4, set, (1, 5)), &policy));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8, bench_fig9_fig10);
criterion_main!(benches);
