//! Engine throughput: simulated ticks per second for the SAN engine (the
//! paper's Mobius-style execution) and the direct engine, across system
//! sizes — the quantitative backing for the paper's "rapid evaluation"
//! claim and for our own SAN-overhead accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vsched_core::{direct::DirectSim, san_model::SanSystem, PolicyKind, SystemConfig};

const TICKS: u64 = 2_000;

fn config(pcpus: usize, vms: &[usize]) -> SystemConfig {
    let mut b = SystemConfig::builder().pcpus(pcpus).sync_ratio(1, 5);
    for &n in vms {
        b = b.vm(n);
    }
    b.build().expect("valid config")
}

fn scale_cases() -> Vec<(String, usize, Vec<usize>)> {
    vec![
        ("small_2vm_3vcpu".into(), 2, vec![2, 1]),
        ("paper_2vm_6vcpu".into(), 4, vec![2, 4]),
        ("large_4vm_12vcpu".into(), 8, vec![4, 4, 2, 2]),
        ("huge_8vm_24vcpu".into(), 16, vec![4, 4, 4, 4, 2, 2, 2, 2]),
    ]
}

/// Model-size scaling axis for the incremental reevaluation core:
/// doubling VM counts from 1 to 16 (2 VCPUs each), every size run in
/// both reevaluation modes so the incremental speedup — and how it grows
/// with model size — is read straight off the report.
fn incremental_cases() -> Vec<(String, usize, Vec<usize>)> {
    [1usize, 2, 4, 8, 16]
        .into_iter()
        .map(|vms| (format!("{vms}vm"), vms.max(2), vec![2; vms]))
        .collect()
}

fn bench_san(c: &mut Criterion) {
    let mut group = c.benchmark_group("san_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TICKS));
    for (name, pcpus, vms) in scale_cases() {
        group.bench_with_input(BenchmarkId::new("ticks", &name), &(), |b, ()| {
            b.iter(|| {
                let mut sys =
                    SanSystem::new(config(pcpus, &vms), PolicyKind::RoundRobin.create(), 42)
                        .expect("model builds");
                sys.run(TICKS).expect("runs");
                sys.metrics()
            });
        });
    }
    group.finish();
}

fn bench_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("direct_engine");
    group.sample_size(20);
    group.throughput(Throughput::Elements(TICKS));
    for (name, pcpus, vms) in scale_cases() {
        group.bench_with_input(BenchmarkId::new("ticks", &name), &(), |b, ()| {
            b.iter(|| {
                let mut sim =
                    DirectSim::new(config(pcpus, &vms), PolicyKind::RoundRobin.create(), 42);
                sim.run(TICKS).expect("runs");
                sim.metrics()
            });
        });
    }
    group.finish();
}

fn bench_san_incremental_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("san_reevaluation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TICKS));
    for (name, pcpus, vms) in incremental_cases() {
        for (mode, full) in [("incremental", false), ("full_rescan", true)] {
            group.bench_with_input(BenchmarkId::new(mode, &name), &full, |b, &full| {
                b.iter(|| {
                    let mut sys =
                        SanSystem::new(config(pcpus, &vms), PolicyKind::RoundRobin.create(), 42)
                            .expect("model builds");
                    sys.set_full_rescan(full);
                    sys.run(TICKS).expect("runs");
                    sys.metrics()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_san,
    bench_direct,
    bench_san_incremental_vs_full
);
criterion_main!(benches);
