//! Per-tick decision cost of each scheduling policy, isolated from the
//! simulation engines: how expensive is the pluggable `schedule()` call
//! itself?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vsched_core::{PcpuView, PolicyKind, VcpuId, VcpuStatus, VcpuView};

/// A half-loaded snapshot: even globals INACTIVE with pending work, odd
/// globals BUSY on PCPU `g/2`.
fn snapshot(vm_sizes: &[usize], pcpus: usize) -> (Vec<VcpuView>, Vec<PcpuView>) {
    let mut vcpus = Vec::new();
    for (vm, &n) in vm_sizes.iter().enumerate() {
        for sibling in 0..n {
            let global = vcpus.len();
            let busy = global % 2 == 1 && global / 2 < pcpus;
            vcpus.push(VcpuView {
                id: VcpuId {
                    vm,
                    sibling,
                    global,
                },
                status: if busy {
                    VcpuStatus::Busy
                } else {
                    VcpuStatus::Inactive
                },
                remaining_load: 5,
                sync_point: global % 5 == 0,
                assigned_pcpu: busy.then_some(global / 2),
                timeslice_remaining: u64::from(busy) * 7,
                last_scheduled_in: Some(100),
                vm_weight: 1,
                present: true,
            });
        }
    }
    let pcpu_views = (0..pcpus)
        .map(|id| PcpuView {
            id,
            assigned: vcpus
                .iter()
                .find(|v| v.assigned_pcpu == Some(id))
                .map(|v| v.id),
        })
        .collect();
    (vcpus, pcpu_views)
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_decision");
    group.sample_size(50);
    let kinds = [
        PolicyKind::RoundRobin,
        PolicyKind::StrictCo,
        PolicyKind::relaxed_co_default(),
        PolicyKind::Balance,
        PolicyKind::credit_default(),
        PolicyKind::sedf_default(),
        PolicyKind::bvt_default(),
        PolicyKind::Fcfs,
    ];
    for kind in kinds {
        for &(vms, pcpus) in &[(4usize, 4usize), (16, 16)] {
            let sizes = vec![2usize; vms];
            let (vcpus, pcpu_views) = snapshot(&sizes, pcpus);
            let label = format!("{}_{}vcpus", kind.label(), vcpus.len());
            group.bench_with_input(BenchmarkId::new("schedule", label), &(), |b, ()| {
                let mut policy = kind.create();
                let mut t = 0u64;
                b.iter(|| {
                    t += 1;
                    black_box(policy.schedule(&vcpus, &pcpu_views, t, 30))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
