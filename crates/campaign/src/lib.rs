//! # vsched-campaign
//!
//! Declarative parameter-sweep campaigns for the vsched simulation
//! framework — the experiment-management layer the paper's evaluation
//! implies: Figures 8–10 are sweeps over policies × PCPUs × VM sets ×
//! sync ratios, and this crate turns such sweeps into data.
//!
//! A campaign is described by a JSON *sweep spec* ([`spec::SweepSpec`]):
//! named experiments, each a `base` cell config plus `axes` whose
//! cartesian product the planner ([`plan()`]) expands into fully-resolved
//! [`spec::CellConfig`] cells. Each cell gets a content-addressed key
//! ([`key::cell_key`]) — a hash of its canonical JSON plus the engine
//! version — under which its result lives in an on-disk store
//! ([`store::ResultStore`]). The orchestrator ([`orchestrator`]) runs
//! only the missing cells, work-stealing across cells on the shared
//! `vsched-exec` pool, committing each result atomically; the renderers
//! ([`mod@render`]) then rebuild the paper's figures from the store.
//!
//! The consequences fall out of the design rather than being bolted on:
//!
//! * **Crash safety / resume** — results commit atomically per cell, so a
//!   killed campaign re-run completes exactly the missing cells.
//! * **Precise invalidation** — editing one axis value changes only the
//!   affected cells' keys; everything else stays cached. Bumping
//!   [`key::ENGINE_VERSION`] invalidates the world.
//! * **Cross-experiment dedup** — identical cells in different figures
//!   (e.g. the Figure 9 grid reappearing inside Figure 10's 1:5 column)
//!   simulate once.
//! * **Determinism** — figures render from the store alone, so a warm
//!   re-run is byte-identical to the cold run and performs zero
//!   simulations.
//!
//! The whole pipeline is driven by [`sweep::run_sweep`], which backs the
//! `vsched sweep` CLI subcommand and the thin bench-binary shims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fsio;
pub mod key;
pub mod orchestrator;
pub mod plan;
pub mod render;
pub mod spec;
pub mod store;
pub mod sweep;
pub mod table;

pub use error::CampaignError;
pub use key::{cell_key, ENGINE_VERSION};
pub use plan::{plan, Plan, PlannedCell, PlannedExperiment};
pub use render::{render, RenderedFigure};
pub use spec::{
    AxisSpec, CellConfig, CreditParams, DistSpec, EngineSpec, ExperimentSpec, PointSpec,
    PolicySpec, RcsParams, ReplicationSpec, ShardsSpec, SweepSpec, SyncMechanismSpec,
};
pub use store::{ResultStore, StoredCell};
pub use sweep::{run_sweep, SweepOptions, SweepOutcome};
