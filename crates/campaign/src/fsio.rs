//! Atomic file writes and path-annotated reads.
//!
//! Result-store cells and rendered figure files are written with the
//! classic temp-file-plus-rename dance so that a campaign killed mid-write
//! never leaves a truncated or half-written JSON file behind: `rename(2)`
//! within one directory is atomic on POSIX, so readers observe either the
//! old file, the new file, or no file — never a prefix.
//!
//! Reads of user-supplied paths (sweep specs, fuzz reproducers) go through
//! [`read_file`], which returns a typed [`CampaignError::Io`] naming the
//! offending path instead of a bare `io::Error` (or worse, a panic), so a
//! mistyped file name surfaces as a proper diagnostic.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::CampaignError;

/// Per-process counter so concurrent writers in one process never share a
/// temp file even when targeting the same path.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `contents` to `path` atomically: the bytes land in a unique
/// sibling temp file first and are renamed into place only once fully
/// flushed. The parent directory must already exist.
///
/// # Errors
///
/// Any [`io::Error`] from the write or the rename; the temp file is
/// removed on a failed rename.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp_name = format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        seq
    );
    let tmp = path.with_file_name(tmp_name);
    fs::write(&tmp, contents)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Reads a user-supplied file to a string, annotating any failure with the
/// path involved.
///
/// # Errors
///
/// [`CampaignError::Io`] naming `path` if it cannot be read.
pub fn read_file(path: &Path) -> Result<String, CampaignError> {
    fs::read_to_string(path).map_err(|e| CampaignError::io(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vsched-fsio-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = temp_dir("basic");
        let path = dir.join("out.json");
        write_atomic(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        // No temp files survive.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "leftover temp files: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_parent_fails_cleanly() {
        let dir = temp_dir("missing");
        let path = dir.join("no-such-subdir").join("out.json");
        assert!(write_atomic(&path, "x").is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_file_names_the_path_on_error() {
        let dir = temp_dir("read");
        let path = dir.join("present.txt");
        write_atomic(&path, "hello").unwrap();
        assert_eq!(read_file(&path).unwrap(), "hello");
        let missing = dir.join("no-such-file.txt");
        let err = read_file(&missing).unwrap_err();
        assert!(err.to_string().contains("no-such-file.txt"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
