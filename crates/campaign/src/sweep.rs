//! The campaign front door: load a spec, plan it, run it, render it.
//!
//! [`run_sweep`] is what both the `vsched sweep` CLI subcommand and the
//! bench-binary shims call. One invocation:
//!
//! 1. loads and validates the spec,
//! 2. expands every experiment into keyed cells ([`mod@crate::plan`]),
//! 3. dedupes cells *across* experiments and simulates whatever the store
//!    is missing ([`crate::orchestrator`]),
//! 4. re-loads every cell from the store and renders the figures
//!    ([`mod@crate::render`]), writing each `<name>.json` atomically.
//!
//! Step 4 always reads from the store, never from in-memory results, so a
//! warm invocation (everything cached, zero simulations) produces
//! byte-identical output to the cold one.

use std::path::{Path, PathBuf};

use crate::error::CampaignError;
use crate::fsio::write_atomic;
use crate::orchestrator::{dedup_cells, ensure_cells};
use crate::plan::{plan, PlannedCell, PlannedExperiment};
use crate::render::{render, RenderedFigure};
use crate::spec::SweepSpec;
use crate::store::{ResultStore, StoredCell};

/// Knobs for one [`run_sweep`] invocation.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Result-store directory; overrides the spec's `store` field.
    pub store_dir: Option<PathBuf>,
    /// Figure output directory; overrides the spec's `output` field.
    pub out_dir: Option<PathBuf>,
    /// Worker threads for cell simulation; `None` for one per core.
    pub jobs: Option<usize>,
    /// Run only the experiment with this name.
    pub only: Option<String>,
    /// Simulate at most this many missing cells, then stop without
    /// rendering incomplete experiments (the kill-mid-campaign test hook).
    pub max_cells: Option<usize>,
    /// Plan and report, but simulate and render nothing.
    pub dry_run: bool,
    /// Suppress all stdout (tables, progress, summary).
    pub quiet: bool,
}

/// What a sweep did.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The rendered figures, in experiment order.
    pub figures: Vec<RenderedFigure>,
    /// Total planned cells across the selected experiments (with
    /// cross-experiment duplicates).
    pub planned_cells: usize,
    /// Distinct cells after key dedup.
    pub unique_cells: usize,
    /// Distinct cells served from the store.
    pub cached: usize,
    /// Distinct cells simulated by this invocation.
    pub simulated: usize,
    /// Experiments left unrendered because cells are still missing (only
    /// possible under `max_cells` or `dry_run`).
    pub skipped_experiments: Vec<String>,
}

fn resolve_dir(
    spec_dir: &Path,
    explicit: Option<&Path>,
    from_spec: Option<&str>,
    default: &str,
) -> PathBuf {
    match explicit {
        Some(p) => p.to_path_buf(),
        None => spec_dir.join(from_spec.unwrap_or(default)),
    }
}

fn collect_stored(
    store: &ResultStore,
    exp: &PlannedExperiment,
) -> Result<Option<Vec<StoredCell>>, CampaignError> {
    let mut out = Vec::with_capacity(exp.cells.len());
    for cell in &exp.cells {
        match store.load(&cell.key)? {
            Some(stored) => out.push(stored),
            None => return Ok(None),
        }
    }
    Ok(Some(out))
}

/// Runs a campaign end to end. See the module docs for the phases.
///
/// # Errors
///
/// Any [`CampaignError`]: unreadable or invalid spec, simulation failure,
/// store I/O failure, or a renderer/cell shape mismatch.
pub fn run_sweep(spec_path: &Path, opts: &SweepOptions) -> Result<SweepOutcome, CampaignError> {
    let spec = SweepSpec::load(spec_path)?;
    let spec_dir = spec_path.parent().unwrap_or_else(|| Path::new("."));
    let store_dir = resolve_dir(
        spec_dir,
        opts.store_dir.as_deref(),
        spec.store.as_deref(),
        ".campaign-store",
    );
    let out_dir = resolve_dir(
        spec_dir,
        opts.out_dir.as_deref(),
        spec.output.as_deref(),
        "results",
    );
    let full_plan = plan(&spec)?;
    let selected: Vec<&PlannedExperiment> = match &opts.only {
        Some(name) => {
            let exp = full_plan
                .experiments
                .iter()
                .find(|e| &e.name == name)
                .ok_or_else(|| {
                    CampaignError::spec(format!("no experiment named `{name}` in the spec"))
                })?;
            vec![exp]
        }
        None => full_plan.experiments.iter().collect(),
    };

    let store = ResultStore::open(&store_dir)?;
    let all_cells: Vec<&PlannedCell> = selected.iter().flat_map(|e| e.cells.iter()).collect();
    let planned_cells = all_cells.len();
    let unique = dedup_cells(all_cells.iter().copied());

    if !opts.quiet {
        println!(
            "campaign: {} experiment(s), {} planned cell(s), {} unique",
            selected.len(),
            planned_cells,
            unique.len()
        );
    }

    if opts.dry_run {
        let cached = unique.iter().filter(|c| store.contains(&c.key)).count();
        if !opts.quiet {
            for exp in &selected {
                println!(
                    "  {}: {} cell(s) -> report `{}`",
                    exp.name,
                    exp.cells.len(),
                    exp.report
                );
            }
            println!(
                "sweep: {} unique cells, {cached} cached, 0 simulated (dry run)",
                unique.len()
            );
        }
        return Ok(SweepOutcome {
            figures: Vec::new(),
            planned_cells,
            unique_cells: unique.len(),
            cached,
            simulated: 0,
            skipped_experiments: selected.iter().map(|e| e.name.clone()).collect(),
        });
    }

    let jobs = vsched_exec::resolve_jobs(opts.jobs);
    let quiet = opts.quiet;
    let stats = ensure_cells(
        &store,
        &all_cells,
        jobs,
        opts.max_cells,
        &|done, total, cell| {
            if !quiet {
                let what = cell.config.summary().unwrap_or_else(|_| cell.key.clone());
                println!("  [{done}/{total}] {} ({what})", cell.key);
            }
        },
    )?;

    std::fs::create_dir_all(&out_dir).map_err(|e| CampaignError::io(&out_dir, e))?;
    let mut figures = Vec::new();
    let mut skipped = Vec::new();
    for exp in &selected {
        match collect_stored(&store, exp)? {
            Some(stored) => {
                let figure = render(exp, &stored)?;
                let body = serde_json::to_string_pretty(&figure.json)
                    .map_err(|e| CampaignError::spec(format!("serialize {}: {e}", exp.name)))?;
                let path = out_dir.join(format!("{}.json", figure.name));
                write_atomic(&path, &body).map_err(|e| CampaignError::io(&path, e))?;
                if !opts.quiet {
                    print!("{}", figure.text);
                    println!("[wrote {}]", path.display());
                    println!();
                }
                figures.push(figure);
            }
            None => skipped.push(exp.name.clone()),
        }
    }
    if !opts.quiet {
        if !skipped.is_empty() {
            println!(
                "incomplete (cells still missing, re-run to finish): {}",
                skipped.join(", ")
            );
        }
        println!(
            "sweep: {} unique cells, {} cached, {} simulated",
            stats.unique, stats.cached, stats.simulated
        );
    }
    Ok(SweepOutcome {
        figures,
        planned_cells,
        unique_cells: stats.unique,
        cached: stats.cached,
        simulated: stats.simulated,
        skipped_experiments: skipped,
    })
}
