//! Cell orchestration on the shared `vsched-exec` pool.
//!
//! The orchestrator is deliberately thin: it dedupes planned cells by key,
//! asks the store which are missing, and drives the missing ones through
//! [`vsched_exec::run_indexed`] — the same work-stealing indexed executor
//! the replication engine uses, so cells are claimed dynamically by
//! whichever worker frees up first (cross-cell work stealing). Each cell
//! runs its replications single-threaded ([`CellConfig::run_report`]
//! disables replication parallelism for both static and trace cells);
//! parallelism lives at the cell level, where cells vastly outnumber
//! cores in a real campaign.
//!
//! Results are committed to the store atomically as each cell finishes,
//! which is the whole crash-safety story: killing the process loses at
//! most the cells still in flight.
//!
//! [`CellConfig::run_report`]: crate::spec::CellConfig::run_report

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::CampaignError;
use crate::plan::PlannedCell;
use crate::store::ResultStore;

/// What [`ensure_cells`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Distinct cells requested (after key dedup).
    pub unique: usize,
    /// Cells already present in the store.
    pub cached: usize,
    /// Cells simulated by this call.
    pub simulated: usize,
}

/// Deduplicates cells by key, preserving first-occurrence order.
#[must_use]
pub fn dedup_cells<'a>(cells: impl IntoIterator<Item = &'a PlannedCell>) -> Vec<&'a PlannedCell> {
    let mut seen = std::collections::HashSet::new();
    cells
        .into_iter()
        .filter(|c| seen.insert(c.key.as_str()))
        .collect()
}

/// Makes sure the store holds a result for every given cell, simulating
/// the missing ones on up to `jobs` worker threads.
///
/// `max_cells` caps how many *missing* cells are simulated — the test
/// hook for killing a campaign partway. `progress` is invoked after each
/// completed simulation with `(done, total_missing, cell)`.
///
/// # Errors
///
/// [`CampaignError::Core`] if a simulation fails (lowest cell index wins,
/// as in a sequential run), [`CampaignError::Io`] if the store cannot be
/// written.
pub fn ensure_cells(
    store: &ResultStore,
    cells: &[&PlannedCell],
    jobs: usize,
    max_cells: Option<usize>,
    progress: &(dyn Fn(usize, usize, &PlannedCell) + Sync),
) -> Result<RunStats, CampaignError> {
    let unique = dedup_cells(cells.iter().copied());
    let mut missing: Vec<&PlannedCell> = unique
        .iter()
        .copied()
        .filter(|c| !store.contains(&c.key))
        .collect();
    let cached = unique.len() - missing.len();
    if let Some(cap) = max_cells {
        missing.truncate(cap);
    }
    let total = missing.len();
    let done = AtomicUsize::new(0);
    vsched_exec::run_indexed(jobs, 0, total, |i| {
        #[allow(clippy::cast_possible_truncation)]
        let cell = missing[i as usize];
        let report = cell.config.run_report()?;
        store.put(&ResultStore::entry(
            cell.key.clone(),
            cell.config.clone(),
            report,
        ))?;
        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
        progress(n, total, cell);
        Ok::<(), CampaignError>(())
    })?;
    Ok(RunStats {
        unique: unique.len(),
        cached,
        simulated: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan;
    use crate::spec::SweepSpec;

    fn tiny_plan() -> crate::plan::Plan {
        let spec = SweepSpec::from_json(
            r#"{ "experiments": [ {
                "name": "t",
                "base": { "pcpus": 1, "vms": [1], "warmup": 100, "horizon": 500,
                          "replications": 2, "engine": "direct" },
                "axes": [ { "name": "policy", "points": [
                    { "set": { "policy": "rrs" } },
                    { "set": { "policy": "scs" } },
                    { "set": { "policy": "rrs" } } ] } ] } ] }"#,
        )
        .unwrap();
        plan(&spec).unwrap()
    }

    #[test]
    fn dedup_cache_and_resume() {
        let dir = std::env::temp_dir().join(format!("vsched-orch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let p = tiny_plan();
        let cells: Vec<&PlannedCell> = p.experiments[0].cells.iter().collect();
        // 3 planned cells, but two are identical (both rrs).
        let stats = ensure_cells(&store, &cells, 2, Some(1), &|_, _, _| {}).unwrap();
        assert_eq!(stats.unique, 2);
        assert_eq!(stats.cached, 0);
        assert_eq!(stats.simulated, 1, "max_cells kills the campaign early");
        // Resume: only the remaining cell runs.
        let stats = ensure_cells(&store, &cells, 2, None, &|_, _, _| {}).unwrap();
        assert_eq!(stats.cached, 1);
        assert_eq!(stats.simulated, 1);
        // Warm: everything cached.
        let stats = ensure_cells(&store, &cells, 2, None, &|_, _, _| {}).unwrap();
        assert_eq!(stats.cached, 2);
        assert_eq!(stats.simulated, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
