//! Campaign error type.

use std::fmt;
use std::path::PathBuf;

use vsched_core::CoreError;

/// Everything that can go wrong while planning or running a campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// Filesystem failure, annotated with the path involved.
    Io {
        /// The file or directory being read or written.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The sweep spec is malformed (bad JSON, unknown field, bad shape).
    Spec {
        /// Human-readable description including the spec location.
        reason: String,
    },
    /// A cell config failed core validation or a simulation failed.
    Core(CoreError),
    /// A renderer needed a cell the store does not hold (only possible
    /// after a partial run, e.g. under a `max_cells` limit).
    MissingCell {
        /// The experiment whose figure could not be rendered.
        experiment: String,
        /// The content-addressed key of the missing cell.
        key: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io { path, source } => {
                write!(f, "io error at {}: {source}", path.display())
            }
            CampaignError::Spec { reason } => write!(f, "sweep spec error: {reason}"),
            CampaignError::Core(e) => write!(f, "{e}"),
            CampaignError::MissingCell { experiment, key } => write!(
                f,
                "experiment `{experiment}` is missing cell {key} from the result store"
            ),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io { source, .. } => Some(source),
            CampaignError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for CampaignError {
    fn from(e: CoreError) -> Self {
        CampaignError::Core(e)
    }
}

impl CampaignError {
    /// Wraps an [`std::io::Error`] with the path it occurred at.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        CampaignError::Io {
            path: path.into(),
            source,
        }
    }

    /// Builds a [`CampaignError::Spec`] from any displayable reason.
    pub fn spec(reason: impl fmt::Display) -> Self {
        CampaignError::Spec {
            reason: reason.to_string(),
        }
    }
}
