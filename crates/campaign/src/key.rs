//! Content-addressed cell keys.
//!
//! A cell's key is a 64-bit FNV-1a hash over the engine version string and
//! the cell's canonical JSON (the serialized [`CellConfig`], which fixes
//! field order and materializes defaults — see [`crate::spec`]). The key
//! therefore changes exactly when something that can change the simulation
//! *result* changes:
//!
//! * any resolved config field (policy, topology, workload, horizon, seed, …),
//! * the engine version constant, bumped when simulation semantics change.
//!
//! Two spellings of the same cell — in different experiments, or relying on
//! defaults vs. writing them out — collapse to one key, so a campaign runs
//! each distinct simulation once no matter how many figures consume it.

use crate::spec::CellConfig;

/// Version tag of the simulation semantics baked into every cell key.
///
/// Bump this whenever a change to the kernel, the engines, the policies,
/// or replication seeding could alter simulation output: every existing
/// store entry then misses and is recomputed, rather than silently serving
/// stale numbers.
pub const ENGINE_VERSION: &str = "vsched-engine/1";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(init, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// The canonical serialized form of a cell — what [`cell_key`] hashes.
#[must_use]
pub fn canonical_json(config: &CellConfig) -> String {
    serde_json::to_string(config).expect("CellConfig serialization is infallible")
}

/// Computes the content-addressed key of a cell, as 16 lower-case hex
/// digits.
#[must_use]
pub fn cell_key(config: &CellConfig) -> String {
    let mut h = fnv1a(FNV_OFFSET, ENGINE_VERSION.as_bytes());
    h = fnv1a(h, b"\0");
    h = fnv1a(h, canonical_json(config).as_bytes());
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(json: &str) -> CellConfig {
        serde_json::from_str(json).unwrap()
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(FNV_OFFSET, b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn key_is_stable_and_spelling_insensitive() {
        // Omitted defaults and written-out defaults hash identically.
        let implicit = cell(r#"{ "pcpus": 4, "vms": [2, 4] }"#);
        let explicit = cell(
            r#"{ "pcpus": 4, "vms": [2, 4], "sync_ratio": [1, 5], "timeslice": 30,
                 "engine": "san", "warmup": 1000, "horizon": 20000, "seed": 24301 }"#,
        );
        assert_eq!(canonical_json(&implicit), canonical_json(&explicit));
        assert_eq!(cell_key(&implicit), cell_key(&explicit));
        assert_eq!(cell_key(&implicit).len(), 16);
    }

    #[test]
    fn key_changes_with_any_axis() {
        let base = cell(r#"{ "pcpus": 4, "vms": [2, 4] }"#);
        let variants = [
            r#"{ "pcpus": 3, "vms": [2, 4] }"#,
            r#"{ "pcpus": 4, "vms": [2, 3] }"#,
            r#"{ "pcpus": 4, "vms": [2, 4], "sync_ratio": [1, 2] }"#,
            r#"{ "pcpus": 4, "vms": [2, 4], "timeslice": 10 }"#,
            r#"{ "pcpus": 4, "vms": [2, 4], "policy": "scs" }"#,
            r#"{ "pcpus": 4, "vms": [2, 4], "engine": "direct" }"#,
            r#"{ "pcpus": 4, "vms": [2, 4], "seed": 1 }"#,
            r#"{ "pcpus": 4, "vms": [2, 4], "replications": 5 }"#,
        ];
        let base_key = cell_key(&base);
        for v in variants {
            assert_ne!(cell_key(&cell(v)), base_key, "variant {v} must rekey");
        }
    }
}
