//! Aligned text tables and cell formatting for rendered figures.
//!
//! Moved here from `vsched-bench` so the campaign renderers and the bench
//! binaries share one implementation; `vsched_bench::report` re-exports
//! these names for compatibility.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a confidence interval as `mean±hw`.
#[must_use]
pub fn ci_cell(ci: &vsched_stats::ConfidenceInterval) -> String {
    format!("{:.3}±{:.3}", ci.mean, ci.half_width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header", "b"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long_header"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn ci_cell_format() {
        let ci = vsched_stats::ConfidenceInterval {
            mean: 0.5,
            half_width: 0.012,
            level: 0.95,
            n: 5,
        };
        assert_eq!(ci_cell(&ci), "0.500±0.012");
    }
}
