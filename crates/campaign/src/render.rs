//! Figure renderers: from stored cell results to the exact tables and
//! JSON documents the original ten bench binaries produced.
//!
//! A renderer is selected by the experiment's `report` id and consumes the
//! experiment's cells *in planned order* (grid row-major, then extras), so
//! each renderer just re-applies the nesting structure of the binary it
//! replaces. Because renderers always read from the store — never from
//! in-memory results of the current run — a warm re-render is byte-for-byte
//! identical to the cold run that populated the store.

use serde_json::json;

use crate::error::CampaignError;
use crate::plan::PlannedExperiment;
use crate::spec::{CellConfig, PolicySpec};
use crate::store::StoredCell;
use crate::table::{ci_cell, Table};

/// A rendered figure: console text plus the JSON document.
#[derive(Debug, Clone)]
pub struct RenderedFigure {
    /// The experiment name (and output file stem).
    pub name: String,
    /// The console output: aligned table plus commentary.
    pub text: String,
    /// The JSON document written to `<name>.json`.
    pub json: serde_json::Value,
}

/// Renders an experiment from its stored cells (aligned with
/// `exp.cells`).
///
/// # Errors
///
/// [`CampaignError::Spec`] for an unknown report id or a cell/report
/// shape mismatch.
pub fn render(
    exp: &PlannedExperiment,
    cells: &[StoredCell],
) -> Result<RenderedFigure, CampaignError> {
    if cells.len() != exp.cells.len() {
        return Err(CampaignError::spec(format!(
            "experiment `{}`: {} stored cells for {} planned",
            exp.name,
            cells.len(),
            exp.cells.len()
        )));
    }
    let (text, json) = match exp.report.as_str() {
        "fig8" => fig8(exp, cells)?,
        "fig9" => fig9(exp, cells)?,
        "fig10" => fig10(exp, cells)?,
        "abl_timeslice" => abl_timeslice(exp, cells)?,
        "abl_skew" => abl_skew(exp, cells)?,
        "abl_workload" => abl_workload(exp, cells)?,
        "abl_syncpattern" => abl_syncpattern(exp, cells)?,
        "ext_spinlock" => ext_spinlock(exp, cells)?,
        "ext_policy_roundup" => ext_policy_roundup(exp, cells)?,
        "val_engines" => val_engines(exp, cells)?,
        "summary" => summary(exp, cells)?,
        other => {
            return Err(CampaignError::spec(format!(
                "experiment `{}`: unknown report `{other}`",
                exp.name
            )))
        }
    };
    Ok(RenderedFigure {
        name: exp.name.clone(),
        text,
        json,
    })
}

type Rendered = Result<(String, serde_json::Value), CampaignError>;

fn text_of(table: &Table, epilogue: &[String]) -> String {
    let mut text = table.render();
    text.push('\n');
    for line in epilogue {
        text.push_str(line);
        text.push('\n');
    }
    text
}

fn lines(strs: &[&str]) -> Vec<String> {
    strs.iter().map(|s| (*s).to_string()).collect()
}

fn policy_label(config: &CellConfig) -> Result<&'static str, CampaignError> {
    Ok(config.policy.to_kind()?.label())
}

fn vms_joined(config: &CellConfig) -> String {
    config
        .vms
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("+")
}

fn sync_label(config: &CellConfig) -> String {
    format!("{}:{}", config.sync_ratio.0, config.sync_ratio.1)
}

fn expect_grid(
    exp: &PlannedExperiment,
    lens: &[usize],
    extras: usize,
) -> Result<(), CampaignError> {
    if exp.axis_lens != lens || exp.cells.len() != exp.grid_cells + extras {
        return Err(CampaignError::spec(format!(
            "experiment `{}`: report `{}` needs axes {lens:?} plus {extras} extra cells, \
             got axes {:?} plus {} extras",
            exp.name,
            exp.report,
            exp.axis_lens,
            exp.cells.len() - exp.grid_cells
        )));
    }
    Ok(())
}

fn spread(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::MIN, f64::max);
    let min = xs.iter().copied().fold(f64::MAX, f64::min);
    max - min
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn fig8(exp: &PlannedExperiment, cells: &[StoredCell]) -> Rendered {
    expect_grid(exp, &[4, 3], 0)?;
    let mut table = Table::new(
        "Figure 8: VCPU availability, VMs {2,1,1}, sync 1:5 (95% CI)",
        &[
            "PCPUs", "policy", "reps", "VCPU1.1", "VCPU1.2", "VCPU2.1", "VCPU3.1",
        ],
    );
    let mut json_rows = Vec::new();
    for cell in cells {
        let report = &cell.report;
        let row_cells: Vec<String> = report.vcpu_availability.iter().map(ci_cell).collect();
        table.row(
            [
                cell.config.pcpus.to_string(),
                policy_label(&cell.config)?.to_string(),
                report.replications.to_string(),
            ]
            .into_iter()
            .chain(row_cells)
            .collect(),
        );
        json_rows.push(json!({
            "pcpus": cell.config.pcpus,
            "policy": policy_label(&cell.config)?,
            "replications": report.replications,
            "availability_mean": report.vcpu_availability_means(),
            "availability_half_width": report
                .vcpu_availability
                .iter()
                .map(|ci| ci.half_width)
                .collect::<Vec<_>>(),
        }));
    }
    let epilogue = lines(&[
        "",
        "paper shape checks:",
        "  - RRS rows are uniform across all four VCPUs at every PCPU count",
        "  - SCS at 1 PCPU starves VCPU1.1/VCPU1.2 (strict co-start impossible)",
        "  - RCS at 1 PCPU serves VCPU1.1/VCPU1.2, but below the 1-VCPU VMs",
        "  - all policies converge toward full availability at 4 PCPUs",
    ]);
    Ok((text_of(&table, &epilogue), json!({ "rows": json_rows })))
}

fn fig9(exp: &PlannedExperiment, cells: &[StoredCell]) -> Rendered {
    expect_grid(exp, &[3, 3], 0)?;
    let mut table = Table::new(
        "Figure 9: average PCPU utilization, 4 PCPUs, sync 1:5 (95% CI)",
        &["VM set", "VCPUs", "policy", "reps", "avg PCPU util", "±"],
    );
    let mut json_rows = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let set_idx = i / exp.axis_lens[1];
        let report = &cell.report;
        let mean = report.avg_pcpu_utilization();
        // Conservative aggregate half-width: the max across PCPUs.
        let hw = report
            .pcpu_utilization
            .iter()
            .map(|ci| ci.half_width)
            .fold(0.0, f64::max);
        table.row(vec![
            format!("set {}", set_idx + 1),
            vms_joined(&cell.config),
            policy_label(&cell.config)?.to_string(),
            report.replications.to_string(),
            format!("{mean:.3}"),
            format!("{hw:.3}"),
        ]);
        json_rows.push(json!({
            "set": set_idx + 1,
            "vms": cell.config.vms,
            "policy": policy_label(&cell.config)?,
            "replications": report.replications,
            "avg_pcpu_utilization": mean,
            "per_pcpu_mean": report.pcpu_utilization_means(),
        }));
    }
    let epilogue = lines(&[
        "",
        "paper shape checks:",
        "  - set 1 (4 VCPUs = 4 PCPUs): every policy saturates the PCPUs",
        "  - sets 2-3 (VCPUs > PCPUs): SCS loses PCPU time to fragmentation",
        "  - RCS stays above 90% PCPU utilization in every set",
    ]);
    Ok((text_of(&table, &epilogue), json!({ "rows": json_rows })))
}

fn fig10(exp: &PlannedExperiment, cells: &[StoredCell]) -> Rendered {
    expect_grid(exp, &[3, 4, 3], 0)?;
    let policies = exp.axis_lens[2];
    let mut table = Table::new(
        "Figure 10: average VCPU utilization, 4 PCPUs (95% CI)",
        &["VM set", "VCPUs", "sync", "RRS", "SCS", "RCS"],
    );
    let mut json_rows = Vec::new();
    for (chunk_idx, chunk) in cells.chunks(policies).enumerate() {
        let set_idx = chunk_idx / exp.axis_lens[1];
        let first = &chunk[0];
        let mut row_cells = Vec::new();
        let mut cell_json = serde_json::Map::new();
        for cell in chunk {
            let mean = cell.report.avg_vcpu_utilization();
            row_cells.push(format!("{mean:.3}"));
            cell_json.insert(policy_label(&cell.config)?.to_string(), json!(mean));
        }
        table.row(
            [
                format!("set {}", set_idx + 1),
                vms_joined(&first.config),
                sync_label(&first.config),
            ]
            .into_iter()
            .chain(row_cells)
            .collect(),
        );
        json_rows.push(json!({
            "set": set_idx + 1,
            "vms": first.config.vms,
            "sync": sync_label(&first.config),
            "utilization": cell_json,
        }));
    }
    let epilogue = lines(&[
        "",
        "paper shape checks:",
        "  - set 1 (VCPUs = PCPUs): utilization high, no difference between policies",
        "  - sets 2-3 (VCPUs > PCPUs): SCS highest, RCS slightly lower, RRS last",
        "  - RRS degrades sharply as the sync rate rises 1:5 -> 1:2",
    ]);
    Ok((text_of(&table, &epilogue), json!({ "rows": json_rows })))
}

fn abl_timeslice(exp: &PlannedExperiment, cells: &[StoredCell]) -> Rendered {
    expect_grid(exp, &[6, 3], 0)?;
    let mut table = Table::new(
        "ABL1: avg VCPU utilization vs timeslice, VMs {2,4}, 4 PCPUs, sync 1:5",
        &["timeslice", "RRS", "SCS", "RCS", "SCS-RRS gap"],
    );
    let mut rows = Vec::new();
    for chunk in cells.chunks(exp.axis_lens[1]) {
        let utils: Vec<f64> = chunk
            .iter()
            .map(|c| c.report.avg_vcpu_utilization())
            .collect();
        let timeslice = chunk[0].config.timeslice;
        table.row(vec![
            timeslice.to_string(),
            format!("{:.3}", utils[0]),
            format!("{:.3}", utils[1]),
            format!("{:.3}", utils[2]),
            format!("{:+.3}", utils[1] - utils[0]),
        ]);
        rows.push(json!({
            "timeslice": timeslice,
            "rrs": utils[0],
            "scs": utils[1],
            "rcs": utils[2],
        }));
    }
    let epilogue = lines(&[
        "",
        "expected: the SCS-RRS gap grows with the timeslice; SCS is flat.",
    ]);
    Ok((text_of(&table, &epilogue), json!({ "rows": rows })))
}

fn rcs_threshold(config: &CellConfig) -> Result<u64, CampaignError> {
    match &config.policy {
        PolicySpec::Rcs { rcs } => Ok(rcs.skew_threshold),
        other => Err(CampaignError::spec(format!(
            "abl_skew grid cell must use a parameterized rcs policy, got {other:?}"
        ))),
    }
}

fn abl_skew(exp: &PlannedExperiment, cells: &[StoredCell]) -> Rendered {
    expect_grid(exp, &[6, 2], 2)?;
    let mut table = Table::new(
        "ABL2: RCS skew threshold sweep (resume = threshold/2)",
        &[
            "threshold",
            "util {2,4}@4P",
            "pcpu util",
            "avail spread {2,1,1}@1P",
            "SMP VM avail",
        ],
    );
    let mut rows = Vec::new();
    for pair in cells[..exp.grid_cells].chunks(2) {
        let (eff, fair) = (&pair[0].report, &pair[1].report);
        let threshold = rcs_threshold(&pair[0].config)?;
        let smp_avail =
            (fair.vcpu_availability_means()[0] + fair.vcpu_availability_means()[1]) / 2.0;
        table.row(vec![
            threshold.to_string(),
            format!("{:.3}", eff.avg_vcpu_utilization()),
            format!("{:.3}", eff.avg_pcpu_utilization()),
            format!("{:.3}", spread(&fair.vcpu_availability_means())),
            format!("{smp_avail:.3}"),
        ]);
        rows.push(json!({
            "threshold": threshold,
            "vcpu_utilization": eff.avg_vcpu_utilization(),
            "pcpu_utilization": eff.avg_pcpu_utilization(),
            "availability_spread": spread(&fair.vcpu_availability_means()),
            "smp_vm_availability": smp_avail,
        }));
    }
    // Anchors for comparison (the two extra cells: RRS then SCS).
    let rrs = &cells[exp.grid_cells].report;
    let scs = &cells[exp.grid_cells + 1].report;
    let mut epilogue = lines(&[""]);
    epilogue.push(format!(
        "anchors on the efficiency axis: RRS = {:.3}, SCS = {:.3}",
        rrs.avg_vcpu_utilization(),
        scs.avg_vcpu_utilization()
    ));
    epilogue.push(
        "expected: tight thresholds approach SCS efficiency; loose ones approach RRS.".into(),
    );
    Ok((text_of(&table, &epilogue), json!({ "rows": rows })))
}

fn abl_workload(exp: &PlannedExperiment, cells: &[StoredCell]) -> Rendered {
    expect_grid(exp, &[8, 3], 0)?;
    let mut table = Table::new(
        "ABL3: avg VCPU utilization by load distribution, VMs {2,4}, 4 PCPUs, sync 1:5",
        &["load", "RRS", "SCS", "RCS", "SCS-RRS gap"],
    );
    let mut rows = Vec::new();
    for (chunk_idx, chunk) in cells.chunks(exp.axis_lens[1]).enumerate() {
        let name = &exp.cells[chunk_idx * exp.axis_lens[1]].labels[0];
        let utils: Vec<f64> = chunk
            .iter()
            .map(|c| c.report.avg_vcpu_utilization())
            .collect();
        table.row(vec![
            name.clone(),
            format!("{:.3}", utils[0]),
            format!("{:.3}", utils[1]),
            format!("{:.3}", utils[2]),
            format!("{:+.3}", utils[1] - utils[0]),
        ]);
        rows.push(json!({
            "load": name,
            "rrs": utils[0],
            "scs": utils[1],
            "rcs": utils[2],
        }));
    }
    let epilogue = lines(&[
        "",
        "expected: positive SCS-RRS gap for low-variance loads;",
        "          ~zero gap for resonant deterministic loads;",
        "          shrinking/negative gap for heavy-tailed loads.",
    ]);
    Ok((text_of(&table, &epilogue), json!({ "rows": rows })))
}

fn abl_syncpattern(exp: &PlannedExperiment, cells: &[StoredCell]) -> Rendered {
    expect_grid(exp, &[], 18)?;
    let mut table = Table::new(
        "ABL4: Bernoulli vs every-k-th sync points, VMs {2,4}, 4 PCPUs (avg VCPU util)",
        &["sync", "policy", "Bernoulli", "every k-th", "|Δ|"],
    );
    let mut rows = Vec::new();
    for pair in cells.chunks(2) {
        let bern_cell = &pair[0];
        let every_cell = &pair[1];
        if every_cell.config.sync_every.is_none() || bern_cell.config.sync_every.is_some() {
            return Err(CampaignError::spec(
                "abl_syncpattern extras must alternate Bernoulli / every-k-th",
            ));
        }
        let bernoulli = bern_cell.report.avg_vcpu_utilization();
        let every_kth = every_cell.report.avg_vcpu_utilization();
        table.row(vec![
            sync_label(&bern_cell.config),
            policy_label(&bern_cell.config)?.to_string(),
            format!("{bernoulli:.3}"),
            format!("{every_kth:.3}"),
            format!("{:.3}", (bernoulli - every_kth).abs()),
        ]);
        rows.push(json!({
            "sync": sync_label(&bern_cell.config),
            "policy": policy_label(&bern_cell.config)?,
            "bernoulli": bernoulli,
            "every_kth": every_kth,
        }));
    }
    let epilogue = lines(&[
        "",
        "expected: small |Δ| everywhere — the figures do not hinge on how the",
        "paper's ratio sentence is read.",
    ]);
    Ok((text_of(&table, &epilogue), json!({ "rows": rows })))
}

fn ext_spinlock(exp: &PlannedExperiment, cells: &[StoredCell]) -> Rendered {
    expect_grid(exp, &[2, 2, 3], 0)?;
    let mut table = Table::new(
        "EXT1: spinlock critical sections, 4 PCPUs (useful util / spin waste)",
        &["VM set", "sync", "policy", "useful", "spin", "avail"],
    );
    let mut rows = Vec::new();
    for cell in cells {
        let report = &cell.report;
        table.row(vec![
            vms_joined(&cell.config),
            sync_label(&cell.config),
            policy_label(&cell.config)?.to_string(),
            format!("{:.3}", report.avg_vcpu_utilization()),
            format!("{:.3}", report.avg_vcpu_spin()),
            format!("{:.3}", report.avg_vcpu_availability()),
        ]);
        rows.push(json!({
            "vms": cell.config.vms,
            "sync": sync_label(&cell.config),
            "policy": policy_label(&cell.config)?,
            "useful_utilization": report.avg_vcpu_utilization(),
            "spin_fraction": report.avg_vcpu_spin(),
            "availability": report.avg_vcpu_availability(),
        }));
    }
    let epilogue = lines(&[
        "",
        "expected: co-scheduling converts RRS's holder-preemption spin into useful",
        "work; the residual spin under SCS is the intrinsic contention of",
        "concurrent critical sections.",
    ]);
    Ok((text_of(&table, &epilogue), json!({ "rows": rows })))
}

fn ext_policy_roundup(exp: &PlannedExperiment, cells: &[StoredCell]) -> Rendered {
    expect_grid(exp, &[8, 2], 0)?;
    let mut table = Table::new(
        "EXT2: all eight schedulers on the paper's two regimes",
        &[
            "policy",
            "fair spread {2,1,1}@2P",
            "min avail",
            "util {2,4}@4P",
            "pcpu util",
        ],
    );
    let mut rows = Vec::new();
    for pair in cells.chunks(2) {
        let (fair, over) = (&pair[0].report, &pair[1].report);
        let label = policy_label(&pair[0].config)?;
        let avail = fair.vcpu_availability_means();
        let min_avail = avail.iter().copied().fold(f64::MAX, f64::min);
        table.row(vec![
            label.to_string(),
            format!("{:.3}", spread(&avail)),
            format!("{min_avail:.3}"),
            format!("{:.3}", over.avg_vcpu_utilization()),
            format!("{:.3}", over.avg_pcpu_utilization()),
        ]);
        rows.push(json!({
            "policy": label,
            "fairness_spread": spread(&avail),
            "min_availability": min_avail,
            "vcpu_utilization": over.avg_vcpu_utilization(),
            "pcpu_utilization": over.avg_pcpu_utilization(),
        }));
    }
    let epilogue = lines(&[
        "",
        "reading guide: a good general-purpose scheduler has a small fairness",
        "spread, non-zero min availability (no starvation), high VCPU",
        "utilization (low sync latency) and high PCPU utilization (no",
        "fragmentation) — the four axes the paper's three figures trade off.",
        "",
        "note: CRD and SEDF show a large *per-VCPU* spread by design — they are",
        "VM-entitlement-fair: on {2,1,1} VMs each VM earns an equal share, so a",
        "2-VCPU VM's VCPUs each receive half of what a lone VCPU does.",
    ]);
    Ok((text_of(&table, &epilogue), json!({ "rows": rows })))
}

fn val_engines(exp: &PlannedExperiment, cells: &[StoredCell]) -> Rendered {
    expect_grid(exp, &[4, 3, 2], 0)?;
    let mut table = Table::new(
        "VAL1: SAN vs direct engine, max |Δ| per metric",
        &["config", "policy", "Δ avail", "Δ vcpu util", "Δ pcpu util"],
    );
    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    for (pair_idx, pair) in cells.chunks(2).enumerate() {
        let name = &exp.cells[pair_idx * 2].labels[0];
        let (san, direct) = (&pair[0].report, &pair[1].report);
        let d_avail = max_abs_diff(
            &san.vcpu_availability_means(),
            &direct.vcpu_availability_means(),
        );
        let d_util = max_abs_diff(
            &san.vcpu_utilization_means(),
            &direct.vcpu_utilization_means(),
        );
        let d_pcpu = max_abs_diff(
            &san.pcpu_utilization_means(),
            &direct.pcpu_utilization_means(),
        );
        worst = worst.max(d_avail).max(d_util).max(d_pcpu);
        table.row(vec![
            name.clone(),
            policy_label(&pair[0].config)?.to_string(),
            format!("{d_avail:.4}"),
            format!("{d_util:.4}"),
            format!("{d_pcpu:.4}"),
        ]);
        rows.push(json!({
            "config": name,
            "policy": policy_label(&pair[0].config)?,
            "delta_availability": d_avail,
            "delta_vcpu_utilization": d_util,
            "delta_pcpu_utilization": d_pcpu,
        }));
    }
    let mut epilogue = lines(&[""]);
    epilogue.push(format!("worst disagreement across all cells: {worst:.4}"));
    epilogue.push("(the paper's reporting criterion is a CI width of 0.1, i.e. ±0.05)".into());
    Ok((
        text_of(&table, &epilogue),
        json!({ "rows": rows, "worst": worst }),
    ))
}

fn summary(exp: &PlannedExperiment, cells: &[StoredCell]) -> Rendered {
    let mut table = Table::new(
        format!("{}: campaign summary", exp.name),
        &[
            "cell",
            "policy",
            "engine",
            "reps",
            "avail",
            "vcpu util",
            "pcpu util",
        ],
    );
    let mut rows = Vec::new();
    for (planned, cell) in exp.cells.iter().zip(cells) {
        let report = &cell.report;
        let label = if planned.labels.is_empty() {
            cell.config.summary()?
        } else {
            planned.labels.join(" / ")
        };
        table.row(vec![
            label.clone(),
            policy_label(&cell.config)?.to_string(),
            cell.config.engine.label().to_string(),
            report.replications.to_string(),
            format!("{:.3}", report.avg_vcpu_availability()),
            format!("{:.3}", report.avg_vcpu_utilization()),
            format!("{:.3}", report.avg_pcpu_utilization()),
        ]);
        rows.push(json!({
            "cell": label,
            "key": cell.key,
            "policy": policy_label(&cell.config)?,
            "engine": cell.config.engine.label(),
            "replications": report.replications,
            "avg_availability": report.avg_vcpu_availability(),
            "avg_vcpu_utilization": report.avg_vcpu_utilization(),
            "avg_pcpu_utilization": report.avg_pcpu_utilization(),
        }));
    }
    Ok((text_of(&table, &[]), json!({ "rows": rows })))
}
