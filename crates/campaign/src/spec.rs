//! The declarative sweep specification and the fully-resolved cell config.
//!
//! A sweep spec is a JSON document describing one or more *experiments*,
//! each of which is a cartesian grid: a `base` cell config plus a list of
//! `axes`, where every axis contributes a list of *points* (partial
//! overrides). The planner ([`mod@crate::plan`]) expands the grid row-major
//! (first axis slowest) into fully-resolved [`CellConfig`]s; cells that
//! cannot be expressed as a product (coupled parameters) go in `extra`.
//!
//! [`CellConfig`] is the canonical unit of work: one system configuration,
//! one policy, one engine, one replication policy, one seed. Its
//! serialized form — struct field order, defaults filled in, `None`s
//! omitted — is the *canonical JSON* that [`crate::key::cell_key`] hashes,
//! so two spellings of the same cell (say, one relying on a default the
//! other writes out) share a store entry.
//!
//! Every struct here is `deny_unknown_fields`: a typo'd field in a spec
//! fails loudly at parse time instead of being silently defaulted.

use serde::{Deserialize, Serialize};
use vsched_core::{
    CoreError, Engine, ExperimentBuilder, MetricsReport, PolicyKind, ShardMode, SystemConfig,
    VmSpec, WorkloadSpec,
};
use vsched_stats::StoppingRule;

// The serde spellings of kernel parameters moved to `vsched-core` (the
// trace frontend parses them too); re-exported here unchanged, so the
// canonical cell JSON — and every content-addressed store key — is
// identical to before the move.
pub use vsched_core::spec::{DistSpec, SyncMechanismSpec};

/// A scheduling policy in a config file: a bare label (`"rrs"`) or a
/// parameterized object (`{"rcs": {"skew_threshold": 5, "skew_resume": 2}}`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum PolicySpec {
    /// Bare label: `rrs`, `scs`, `rcs`, `balance`, `credit`, `sedf`,
    /// `bvt`, `fcfs`.
    Label(String),
    /// Parameterized relaxed co-scheduling.
    Rcs {
        /// The RCS parameters.
        rcs: RcsParams,
    },
    /// Parameterized credit scheduler.
    Credit {
        /// The credit parameters.
        credit: CreditParams,
    },
    /// Parameterized SEDF scheduler.
    Sedf {
        /// The SEDF parameters.
        sedf: SedfParams,
    },
    /// Parameterized BVT scheduler.
    Bvt {
        /// The BVT parameters.
        bvt: BvtParams,
    },
}

/// RCS parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct RcsParams {
    /// Co-stop threshold (progress lead, in ticks).
    pub skew_threshold: u64,
    /// Resume level.
    pub skew_resume: u64,
}

/// Credit-scheduler parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CreditParams {
    /// Credit refill period in ticks.
    pub refill_period: u64,
}

/// SEDF parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SedfParams {
    /// Reservation period in ticks.
    pub period: u64,
}

/// BVT parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct BvtParams {
    /// Maximum wake-up lag in weighted virtual-time units.
    pub max_lag: u64,
}

impl PolicySpec {
    /// Resolves to a [`PolicyKind`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an unknown label.
    pub fn to_kind(&self) -> Result<PolicyKind, CoreError> {
        match self {
            PolicySpec::Label(label) => match label.to_ascii_lowercase().as_str() {
                "rrs" | "round-robin" | "roundrobin" => Ok(PolicyKind::RoundRobin),
                "scs" | "strict-co" | "strictco" => Ok(PolicyKind::StrictCo),
                "rcs" | "relaxed-co" | "relaxedco" => Ok(PolicyKind::relaxed_co_default()),
                "balance" | "bal" => Ok(PolicyKind::Balance),
                "credit" | "crd" => Ok(PolicyKind::credit_default()),
                "sedf" => Ok(PolicyKind::sedf_default()),
                "bvt" => Ok(PolicyKind::bvt_default()),
                "fcfs" => Ok(PolicyKind::Fcfs),
                other => Err(CoreError::InvalidConfig {
                    reason: format!("unknown policy `{other}`"),
                }),
            },
            PolicySpec::Rcs { rcs } => Ok(PolicyKind::RelaxedCo {
                skew_threshold: rcs.skew_threshold,
                skew_resume: rcs.skew_resume,
            }),
            PolicySpec::Credit { credit } => Ok(PolicyKind::Credit {
                refill_period: credit.refill_period,
            }),
            PolicySpec::Sedf { sedf } => Ok(PolicyKind::Sedf {
                period: sedf.period,
            }),
            PolicySpec::Bvt { bvt } => Ok(PolicyKind::Bvt {
                max_lag: bvt.max_lag,
            }),
        }
    }

    /// The canonical spec of a [`PolicyKind`]: default parameters collapse
    /// to the bare label (so the spec hashes to the same cell key as a
    /// hand-written `"rcs"`), non-default parameters stay explicit.
    /// Round-trips: `from_kind(k).to_kind() == k` for every kind.
    ///
    /// # Panics
    ///
    /// Panics on [`PolicyKind::Fault`], the verification-internal
    /// fault-injection wrapper, which has no campaign spec form.
    #[must_use]
    pub fn from_kind(kind: &PolicyKind) -> PolicySpec {
        let label = |s: &str| PolicySpec::Label(s.into());
        match *kind {
            PolicyKind::RoundRobin => label("rrs"),
            PolicyKind::StrictCo => label("scs"),
            PolicyKind::RelaxedCo {
                skew_threshold,
                skew_resume,
            } => {
                if *kind == PolicyKind::relaxed_co_default() {
                    label("rcs")
                } else {
                    PolicySpec::Rcs {
                        rcs: RcsParams {
                            skew_threshold,
                            skew_resume,
                        },
                    }
                }
            }
            PolicyKind::Balance => label("balance"),
            PolicyKind::Credit { refill_period } => {
                if *kind == PolicyKind::credit_default() {
                    label("credit")
                } else {
                    PolicySpec::Credit {
                        credit: CreditParams { refill_period },
                    }
                }
            }
            PolicyKind::Sedf { period } => {
                if *kind == PolicyKind::sedf_default() {
                    label("sedf")
                } else {
                    PolicySpec::Sedf {
                        sedf: SedfParams { period },
                    }
                }
            }
            PolicyKind::Bvt { max_lag } => {
                if *kind == PolicyKind::bvt_default() {
                    label("bvt")
                } else {
                    PolicySpec::Bvt {
                        bvt: BvtParams { max_lag },
                    }
                }
            }
            PolicyKind::Fcfs => label("fcfs"),
            // The fault-injection wrapper exists for verification fixtures
            // only; it deliberately has no spec form — a sweep cell that
            // sabotages its own policy would poison the result store.
            PolicyKind::Fault { .. } => {
                panic!("fault-injection wrappers have no campaign spec")
            }
        }
    }
}

/// Simulation engine selection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase", deny_unknown_fields)]
pub enum EngineSpec {
    /// The SAN engine (the paper's Mobius-style implementation; default).
    #[default]
    San,
    /// The independently coded direct time-stepped engine.
    Direct,
}

impl EngineSpec {
    /// The corresponding runner engine.
    #[must_use]
    pub fn to_engine(self) -> Engine {
        match self {
            EngineSpec::San => Engine::San,
            EngineSpec::Direct => Engine::Direct,
        }
    }

    /// Lower-case name, as written in spec files.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineSpec::San => "san",
            EngineSpec::Direct => "direct",
        }
    }
}

/// How many replications a cell runs: a bare count (`5`) for an exact
/// number, or `{"min": 5, "max": 20}` for the paper's sequential stopping
/// rule (95% level, CI width < 0.1) bracketed by those bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ReplicationSpec {
    /// Run exactly this many replications.
    Exact(usize),
    /// Run the paper's stopping rule between the given bounds.
    Rule {
        /// Minimum replications before the rule may stop.
        min: usize,
        /// Hard cap on replications.
        max: usize,
    },
}

impl Default for ReplicationSpec {
    fn default() -> Self {
        ReplicationSpec::Rule { min: 5, max: 20 }
    }
}

impl ReplicationSpec {
    /// Rejects replication counts no run could satisfy.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an exact count of zero, a rule
    /// minimum of zero, or inverted rule bounds.
    pub fn validate(&self) -> Result<(), CoreError> {
        let invalid = |reason: String| Err(CoreError::InvalidConfig { reason });
        match *self {
            ReplicationSpec::Exact(0) => invalid("replications must be at least 1".into()),
            ReplicationSpec::Rule { min: 0, .. } => {
                invalid("replication rule minimum must be at least 1".into())
            }
            ReplicationSpec::Rule { min, max } if min > max => invalid(format!(
                "replication rule minimum ({min}) exceeds maximum ({max})"
            )),
            _ => Ok(()),
        }
    }
}

/// Intra-replication sharding of the SAN engine in a config file: an
/// explicit shard count (`"shards": 4`; `0` and `1` mean sequential) or
/// the word `"auto"`, which lets the engine choose sequential vs. sharded
/// per model size and available parallelism.
///
/// Sharded execution is bit-identical to sequential by contract (enforced
/// by the proptest and fuzz stack), so this is a pure wall-clock knob: it
/// is **excluded from the canonical cell JSON**, and cells differing only
/// in `shards` share one store key and one cached result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ShardsSpec {
    /// Explicit shard count; `0` (the default) and `1` run sequentially.
    Count(usize),
    /// The word `"auto"` (anything else is rejected at validation).
    Word(String),
}

impl Default for ShardsSpec {
    fn default() -> Self {
        ShardsSpec::Count(0)
    }
}

impl ShardsSpec {
    /// Rejects spellings other than a count or the word `"auto"`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] naming the bad value.
    pub fn validate(&self) -> Result<(), CoreError> {
        match self {
            ShardsSpec::Count(_) => Ok(()),
            ShardsSpec::Word(w) if w == "auto" => Ok(()),
            ShardsSpec::Word(w) => Err(CoreError::InvalidConfig {
                reason: format!("shards must be a count or \"auto\", got \"{w}\""),
            }),
        }
    }

    /// The engine-level mode this spelling resolves to.
    #[must_use]
    pub fn to_shard_mode(&self) -> ShardMode {
        match self {
            ShardsSpec::Count(0 | 1) => ShardMode::Off,
            ShardsSpec::Count(n) => ShardMode::Fixed(*n),
            ShardsSpec::Word(_) => ShardMode::Auto,
        }
    }
}

fn default_sync_ratio() -> (u32, u32) {
    (1, 5)
}

fn default_timeslice() -> u64 {
    30
}

fn default_load() -> DistSpec {
    DistSpec::Uniform {
        low: 5.0,
        high: 15.0,
    }
}

fn default_policy() -> PolicySpec {
    PolicySpec::Label("rrs".into())
}

fn default_warmup() -> u64 {
    1_000
}

fn default_horizon() -> u64 {
    20_000
}

fn default_seed() -> u64 {
    0x5eed
}

/// Overrides of one VM's workload, relative to the cell's shared workload
/// fields. Every field is optional; omissions inherit the cell-level
/// value. Used by heterogeneous scenarios (e.g. the policy tournament's
/// corpus), where VMs differ in load, sync behavior, or both.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct VmWorkloadSpec {
    /// Job-duration distribution override.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub load: Option<DistSpec>,
    /// Synchronization-ratio override.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sync_ratio: Option<(u32, u32)>,
    /// Deterministic every-`k`-th sync-point override.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sync_every: Option<u32>,
    /// Synchronization-mechanism override.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sync_mechanism: Option<SyncMechanismSpec>,
    /// Interarrival-distribution override.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub interarrival: Option<DistSpec>,
}

impl VmWorkloadSpec {
    /// Whether this override changes nothing. Cell builders drop all-noop
    /// override lists so the canonical form (and store key) collapses to
    /// the homogeneous spelling.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        *self == VmWorkloadSpec::default()
    }
}

/// A fully-resolved campaign cell: everything one simulation run depends
/// on. The serialized form of this struct (after a parse round-trip, so
/// defaults are materialized and field order is fixed) is the canonical
/// representation hashed by [`crate::key::cell_key`].
///
/// All VMs share one workload characterization by default — the paper's
/// evaluation setting. Heterogeneous cells (per-VM weights or workload
/// overrides) use the optional `weights` / `vm_workloads` fields; when
/// those are omitted the serialized form — and therefore the store key —
/// is identical to a pre-extension cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CellConfig {
    /// Number of physical CPUs. Omitted for trace cells (the trace header
    /// carries the platform) — except CSV traces, whose datasets carry no
    /// platform, where it supplies the PCPU count.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub pcpus: usize,
    /// VCPU count of each VM, e.g. `[2, 1, 1]`. Empty (and omitted from
    /// the canonical form) for trace cells: the trace defines the VMs.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub vms: Vec<usize>,
    /// Path to a workload trace (`.jsonl` standard format, or `.csv`
    /// Azure-style lifetimes). When set, the cell is **trace-driven**: the
    /// trace supplies topology and workload, and the cell's `policy`,
    /// `engine`, `warmup`, `horizon`, `seed` and `replications` control
    /// the run. The path enters the canonical cell JSON, so distinct
    /// traces get distinct store keys.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<String>,
    /// Proportional-share weight of each VM (default: all 1). When set,
    /// the length must match `vms`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub weights: Option<Vec<u32>>,
    /// Synchronization ratio as the paper writes it: `[1, 5]` is 1:5.
    #[serde(default = "default_sync_ratio")]
    pub sync_ratio: (u32, u32),
    /// Direct Bernoulli sync-point probability. Overrides `sync_ratio`;
    /// mutually exclusive with `sync_every`. Lets cells express
    /// fuzz-generated scenarios whose probability is not a small ratio.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sync_probability: Option<f64>,
    /// Deterministic pattern: every `k`-th workload is a sync point. When
    /// set, the Bernoulli `sync_ratio` probability is disabled.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sync_every: Option<u32>,
    /// `"barrier"` (default) or `"spinlock"`.
    #[serde(default)]
    pub sync_mechanism: SyncMechanismSpec,
    /// Scheduler timeslice in ticks (default 30).
    #[serde(default = "default_timeslice")]
    pub timeslice: u64,
    /// Job-duration distribution (default: the paper's uniform `[5, 15)`).
    #[serde(default = "default_load")]
    pub load: DistSpec,
    /// Interarrival distribution; omit for a saturated generator.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub interarrival: Option<DistSpec>,
    /// Per-VM workload overrides of the shared fields above. When set,
    /// the length must match `vms`; entry `i` overrides VM `i`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub vm_workloads: Option<Vec<VmWorkloadSpec>>,
    /// The scheduling policy (default `"rrs"`).
    #[serde(default = "default_policy")]
    pub policy: PolicySpec,
    /// `"san"` (default) or `"direct"`.
    #[serde(default)]
    pub engine: EngineSpec,
    /// Warm-up ticks per replication (default 1000).
    #[serde(default = "default_warmup")]
    pub warmup: u64,
    /// Observed ticks per replication (default 20000).
    #[serde(default = "default_horizon")]
    pub horizon: u64,
    /// Replication policy (default: stopping rule, min 5, max 20).
    #[serde(default)]
    pub replications: ReplicationSpec,
    /// Base RNG seed (default `0x5eed`).
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Intra-replication sharding of the SAN engine: a count or `"auto"`
    /// (default: sequential). A pure wall-clock knob — sharded runs are
    /// bit-identical to sequential, so this field is excluded from the
    /// canonical form and never changes a store key. Ignored by the
    /// `direct` engine.
    #[serde(default, skip_serializing_if = "never")]
    pub shards: ShardsSpec,
}

impl CellConfig {
    /// Rejects out-of-range parameters up front, before any simulation (or
    /// store hashing) sees the cell: a zero timeslice, an unsatisfiable
    /// replication policy, or policy parameters outside their domain
    /// ([`PolicyKind::validate`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), CoreError> {
        let invalid = |reason: String| Err(CoreError::InvalidConfig { reason });
        if self.timeslice == 0 {
            return invalid("timeslice must be at least 1 tick".into());
        }
        self.shards.validate()?;
        if let Some(trace) = &self.trace {
            // The trace defines the topology; conflicting static fields
            // are rejected rather than silently ignored.
            if !self.vms.is_empty() {
                return invalid("trace cells must omit `vms` (the trace defines the VMs)".into());
            }
            if self.weights.is_some() || self.vm_workloads.is_some() {
                return invalid(
                    "trace cells must omit `weights`/`vm_workloads` (per-VM shape lives in the trace)"
                        .into(),
                );
            }
            let is_csv = std::path::Path::new(trace)
                .extension()
                .is_some_and(|e| e.eq_ignore_ascii_case("csv"));
            if is_csv && self.pcpus == 0 {
                return invalid(format!(
                    "CSV trace `{trace}` carries no platform: set `pcpus`"
                ));
            }
            if !is_csv && self.pcpus != 0 {
                return invalid(format!(
                    "trace `{trace}` carries its own platform: omit `pcpus`"
                ));
            }
        } else if self.pcpus == 0 || self.vms.is_empty() {
            return invalid("need at least 1 PCPU and 1 VM (or a `trace`)".into());
        }
        if let Some(weights) = &self.weights {
            if weights.len() != self.vms.len() {
                return invalid(format!(
                    "weights has {} entries for {} VMs",
                    weights.len(),
                    self.vms.len()
                ));
            }
            if weights.contains(&0) {
                return invalid("VM weights must be at least 1".into());
            }
        }
        if let Some(p) = self.sync_probability {
            if !(0.0..=1.0).contains(&p) {
                return invalid(format!("sync_probability {p} outside [0, 1]"));
            }
            if self.sync_every.is_some() {
                return invalid("sync_probability and sync_every are mutually exclusive".into());
            }
        }
        if let Some(overrides) = &self.vm_workloads {
            if overrides.len() != self.vms.len() {
                return invalid(format!(
                    "vm_workloads has {} entries for {} VMs",
                    overrides.len(),
                    self.vms.len()
                ));
            }
        }
        self.replications.validate()?;
        self.policy.to_kind()?.validate()
    }

    /// Loads and compiles this cell's trace schedule.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when the cell has no `trace`, or with
    /// the trace reader/compiler's `path:line`-annotated message when the
    /// file is missing or malformed.
    pub fn schedule(&self) -> Result<vsched_trace::TraceSchedule, CoreError> {
        let Some(trace) = &self.trace else {
            return Err(CoreError::InvalidConfig {
                reason: "cell has no `trace` field".into(),
            });
        };
        let csv_meta = vsched_trace::TraceMeta::new(self.pcpus);
        vsched_trace::load_trace(std::path::Path::new(trace), &csv_meta).map_err(|e| {
            CoreError::InvalidConfig {
                reason: e.to_string(),
            }
        })
    }

    /// Builds the [`SystemConfig`] this cell describes. For trace cells
    /// this is the trace's **union** topology (every VM that ever
    /// appears) — what lint inspects and what sizes the metric vectors.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for invalid parameters (no VMs, zero
    /// timeslice, bad sync ratio, …) or an unreadable trace.
    pub fn system(&self) -> Result<SystemConfig, CoreError> {
        self.validate()?;
        if self.trace.is_some() {
            return Ok(self.schedule()?.config().clone());
        }
        let mut workload = WorkloadSpec::paper_default();
        workload.load = self.load.to_dist()?;
        workload = workload.with_sync_ratio(self.sync_ratio.0, self.sync_ratio.1)?;
        if let Some(k) = self.sync_every {
            workload.sync_probability = 0.0;
            workload = workload.with_sync_every(k)?;
        }
        if let Some(p) = self.sync_probability {
            workload.sync_probability = p;
        }
        workload.sync_mechanism = self.sync_mechanism.to_mechanism();
        workload.interarrival = match &self.interarrival {
            Some(d) => Some(d.to_dist()?),
            None => None,
        };
        let mut b = SystemConfig::builder()
            .pcpus(self.pcpus)
            .timeslice(self.timeslice);
        for (i, &vcpus) in self.vms.iter().enumerate() {
            let mut vm_workload = workload.clone();
            if let Some(ov) = self.vm_workloads.as_ref().map(|o| &o[i]) {
                if let Some(load) = &ov.load {
                    vm_workload.load = load.to_dist()?;
                }
                if let Some((a, b)) = ov.sync_ratio {
                    vm_workload = vm_workload.with_sync_ratio(a, b)?;
                }
                if let Some(k) = ov.sync_every {
                    vm_workload.sync_probability = 0.0;
                    vm_workload = vm_workload.with_sync_every(k)?;
                }
                if let Some(mechanism) = ov.sync_mechanism {
                    vm_workload.sync_mechanism = mechanism.to_mechanism();
                }
                if let Some(inter) = &ov.interarrival {
                    vm_workload.interarrival = Some(inter.to_dist()?);
                }
            }
            b = b.vm_spec(VmSpec {
                vcpus,
                workload: vm_workload,
                weight: self.weights.as_ref().map_or(1, |w| w[i]),
            });
        }
        b.build()
    }

    /// Resolves the policy.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an unknown policy label.
    pub fn policy_kind(&self) -> Result<PolicyKind, CoreError> {
        self.policy.to_kind()
    }

    /// Builds a ready-to-run [`ExperimentBuilder`] for this cell.
    ///
    /// The builder is configured single-threaded (`parallel(false)`):
    /// campaigns parallelize across *cells* on the shared `vsched-exec`
    /// pool, and replication results are bit-identical either way.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`CellConfig::system`] and
    /// [`CellConfig::policy_kind`]; rejects trace cells (which run
    /// through [`CellConfig::run_report`], not the static builder).
    pub fn builder(&self) -> Result<ExperimentBuilder, CoreError> {
        self.validate()?;
        if self.trace.is_some() {
            return Err(CoreError::InvalidConfig {
                reason: "trace cells have no static builder; use run_report()".into(),
            });
        }
        let mut b = ExperimentBuilder::new(self.system()?, self.policy_kind()?)
            .engine(self.engine.to_engine())
            .warmup(self.warmup)
            .horizon(self.horizon)
            .seed(self.seed)
            .shard_mode(self.shards.to_shard_mode())
            .parallel(false);
        b = match self.replications {
            ReplicationSpec::Exact(n) => b.replications_exact(n),
            ReplicationSpec::Rule { min, max } => b.stopping_rule(
                StoppingRule::paper_default()
                    .with_min_replications(min)
                    .with_max_replications(max),
            ),
        };
        Ok(b)
    }

    /// Runs the cell to completion — the orchestrator's single entry
    /// point. Static cells go through [`CellConfig::builder`]; trace
    /// cells compile their schedule and run a
    /// [`vsched_trace::TraceExperiment`] with this cell's policy, engine,
    /// warmup, horizon and seed, then aggregate the per-replication
    /// samples into the same [`MetricsReport`] shape, so the result store
    /// and every renderer are agnostic to how the cell was driven.
    ///
    /// Trace cells use a fixed replication count (there is no stopping
    /// rule mid-trace): `replications: N` runs N; the default rule runs
    /// its `min`.
    ///
    /// # Errors
    ///
    /// Validation, trace-loading and engine errors.
    pub fn run_report(&self) -> Result<MetricsReport, CoreError> {
        self.validate()?;
        if self.trace.is_none() {
            return self.builder()?.run();
        }
        let schedule = self.schedule()?;
        let (vcpus, pcpus) = (schedule.config().total_vcpus(), schedule.config().pcpus());
        let replications = match self.replications {
            ReplicationSpec::Exact(n) => n,
            ReplicationSpec::Rule { min, .. } => min,
        };
        let report = vsched_trace::TraceExperiment::new(schedule, self.policy_kind()?)
            .engine(self.engine.to_engine())
            .warmup(self.warmup)
            .horizon(self.horizon)
            .seed(self.seed)
            .shard_mode(self.shards.to_shard_mode())
            .replications(replications)
            .parallel(false)
            .run()?;
        report.metrics_report(vcpus, pcpus, StoppingRule::paper_default().level)
    }

    /// One-line description for progress reporting, e.g.
    /// `rcs 4p [2,4] 1:5 san` — or, for a trace cell,
    /// `rcs trace:churn_small.jsonl san`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an unknown policy label.
    pub fn summary(&self) -> Result<String, CoreError> {
        if let Some(trace) = &self.trace {
            let name = std::path::Path::new(trace)
                .file_name()
                .map_or_else(|| trace.clone(), |f| f.to_string_lossy().into_owned());
            return Ok(format!(
                "{} trace:{} {}",
                self.policy_kind()?.label(),
                name,
                self.engine.label()
            ));
        }
        let vms: Vec<String> = self.vms.iter().map(ToString::to_string).collect();
        Ok(format!(
            "{} {}p [{}] {}:{} {}",
            self.policy_kind()?.label(),
            self.pcpus,
            vms.join(","),
            self.sync_ratio.0,
            self.sync_ratio.1,
            self.engine.label()
        ))
    }
}

/// `skip_serializing_if` gate for `pcpus`: `0` means "the trace supplies
/// the platform" and is omitted from the canonical form; every static
/// cell has a nonzero count, so pre-trace store keys are unchanged.
#[allow(clippy::trivially_copy_pass_by_ref)]
fn is_zero(n: &usize) -> bool {
    *n == 0
}

/// `skip_serializing_if` gate for `shards`: always true. Sharding cannot
/// change results (bit-identity contract), so it never enters the
/// canonical form or the store key — see [`ShardsSpec`].
fn never(_: &ShardsSpec) -> bool {
    true
}

fn default_version() -> u32 {
    1
}

fn default_report() -> String {
    "summary".into()
}

/// One point on an axis (or one `extra` cell): a partial override of the
/// experiment's base cell config, with an optional display label.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct PointSpec {
    /// Display label used by renderers (e.g. a workload-case name).
    /// Defaults to the compact JSON of `set`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub label: Option<String>,
    /// Field overrides, as a JSON object of [`CellConfig`] fields.
    pub set: serde_json::Value,
}

/// One sweep axis: a name and the points the grid takes along it.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct AxisSpec {
    /// Axis name (documentation and error messages).
    pub name: String,
    /// The points; the grid takes each in order.
    pub points: Vec<PointSpec>,
}

/// One experiment: a named grid of cells plus the report that renders it.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ExperimentSpec {
    /// Experiment name; also the output file stem (`<name>.json`).
    pub name: String,
    /// Renderer id (see `crate::render`); default `"summary"`.
    #[serde(default = "default_report")]
    pub report: String,
    /// Base cell config, as a JSON object of [`CellConfig`] fields.
    pub base: serde_json::Value,
    /// The sweep axes; the grid is their cartesian product, expanded
    /// row-major (first axis slowest). May be empty for a single cell.
    #[serde(default)]
    pub axes: Vec<AxisSpec>,
    /// Additional cells that do not fit the product structure (coupled
    /// parameters), appended after the grid.
    #[serde(default)]
    pub extra: Vec<PointSpec>,
}

/// A complete sweep specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SweepSpec {
    /// Spec format version; must be 1.
    #[serde(default = "default_version")]
    pub version: u32,
    /// Result-store directory, relative to the spec file. Defaults to
    /// `.campaign-store` next to the spec; `--store` overrides.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub store: Option<String>,
    /// Output directory for rendered figures, relative to the spec file.
    /// Defaults to `results` next to the spec; `--out-dir` overrides.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub output: Option<String>,
    /// The experiments.
    pub experiments: Vec<ExperimentSpec>,
}

impl SweepSpec {
    /// Parses a sweep spec from JSON text and validates its shape.
    ///
    /// # Errors
    ///
    /// [`crate::CampaignError::Spec`] for malformed JSON, an unsupported
    /// version, no experiments, or duplicate experiment names.
    pub fn from_json(text: &str) -> Result<Self, crate::CampaignError> {
        let spec: SweepSpec = serde_json::from_str(text).map_err(crate::CampaignError::spec)?;
        if spec.version != 1 {
            return Err(crate::CampaignError::spec(format!(
                "unsupported spec version {} (expected 1)",
                spec.version
            )));
        }
        if spec.experiments.is_empty() {
            return Err(crate::CampaignError::spec("no experiments defined"));
        }
        let mut seen = std::collections::HashSet::new();
        for exp in &spec.experiments {
            if !seen.insert(exp.name.as_str()) {
                return Err(crate::CampaignError::spec(format!(
                    "duplicate experiment name `{}`",
                    exp.name
                )));
            }
        }
        Ok(spec)
    }

    /// Reads and parses a sweep spec file.
    ///
    /// # Errors
    ///
    /// [`crate::CampaignError::Io`] if the file cannot be read, plus the
    /// conditions of [`SweepSpec::from_json`].
    pub fn load(path: &std::path::Path) -> Result<Self, crate::CampaignError> {
        let text = std::fs::read_to_string(path).map_err(|e| crate::CampaignError::io(path, e))?;
        Self::from_json(&text)
            .map_err(|e| crate::CampaignError::spec(format!("{}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsched_core::config::SyncMechanism;

    #[test]
    fn minimal_cell_uses_paper_defaults() {
        let cell: CellConfig = serde_json::from_str(r#"{ "pcpus": 4, "vms": [2, 1, 1] }"#).unwrap();
        assert_eq!(cell.sync_ratio, (1, 5));
        assert_eq!(cell.timeslice, 30);
        assert_eq!(cell.engine, EngineSpec::San);
        assert_eq!(cell.warmup, 1_000);
        assert_eq!(cell.horizon, 20_000);
        assert_eq!(cell.replications, ReplicationSpec::Rule { min: 5, max: 20 });
        assert_eq!(cell.seed, 0x5eed);
        let system = cell.system().unwrap();
        assert_eq!(system.pcpus(), 4);
        assert_eq!(system.total_vcpus(), 4);
        assert!((system.vms()[0].workload.sync_probability - 0.2).abs() < 1e-12);
    }

    #[test]
    fn cell_matches_bench_paper_config() {
        // The campaign cell must reproduce `vsched_bench::paper_config`
        // exactly — figure regeneration depends on it.
        let cell: CellConfig =
            serde_json::from_str(r#"{ "pcpus": 4, "vms": [2, 4], "sync_ratio": [1, 3] }"#).unwrap();
        let sys = cell.system().unwrap();
        let mut b = SystemConfig::builder().pcpus(4).sync_ratio(1, 3);
        for n in [2usize, 4] {
            b = b.vm(n);
        }
        let reference = b.build().unwrap();
        assert_eq!(sys, reference);
    }

    #[test]
    fn typo_fields_fail_loudly() {
        let err =
            serde_json::from_str::<CellConfig>(r#"{ "pcpus": 4, "vms": [2], "timeslise": 10 }"#)
                .unwrap_err();
        assert!(err.to_string().contains("timeslise"), "{err}");
        assert!(
            serde_json::from_str::<SweepSpec>(r#"{ "experiments": [], "experimentz": [] }"#)
                .is_err()
        );
    }

    #[test]
    fn sync_every_disables_bernoulli() {
        let cell: CellConfig = serde_json::from_str(
            r#"{ "pcpus": 4, "vms": [2, 4], "sync_ratio": [1, 3], "sync_every": 3 }"#,
        )
        .unwrap();
        let sys = cell.system().unwrap();
        assert_eq!(sys.vms()[0].workload.sync_probability, 0.0);
        assert_eq!(sys.vms()[0].workload.sync_every, Some(3));
    }

    #[test]
    fn spinlock_mechanism_applies() {
        let cell: CellConfig =
            serde_json::from_str(r#"{ "pcpus": 4, "vms": [2, 3], "sync_mechanism": "spinlock" }"#)
                .unwrap();
        let sys = cell.system().unwrap();
        assert_eq!(
            sys.vms()[0].workload.sync_mechanism,
            SyncMechanism::SpinLock
        );
    }

    #[test]
    fn replication_spec_forms() {
        let exact: ReplicationSpec = serde_json::from_str("5").unwrap();
        assert_eq!(exact, ReplicationSpec::Exact(5));
        let rule: ReplicationSpec = serde_json::from_str(r#"{ "min": 3, "max": 7 }"#).unwrap();
        assert_eq!(rule, ReplicationSpec::Rule { min: 3, max: 7 });
    }

    #[test]
    fn replication_spec_rejects_empty_budgets() {
        assert!(ReplicationSpec::Exact(0).validate().is_err());
        assert!(ReplicationSpec::Rule { min: 0, max: 5 }.validate().is_err());
        assert!(ReplicationSpec::Rule { min: 9, max: 5 }.validate().is_err());
        assert!(ReplicationSpec::Exact(1).validate().is_ok());
        assert!(ReplicationSpec::Rule { min: 5, max: 5 }.validate().is_ok());
    }

    #[test]
    fn shards_spec_forms_and_modes() {
        let auto: ShardsSpec = serde_json::from_str(r#""auto""#).unwrap();
        assert_eq!(auto, ShardsSpec::Word("auto".into()));
        assert_eq!(auto.to_shard_mode(), ShardMode::Auto);
        let four: ShardsSpec = serde_json::from_str("4").unwrap();
        assert_eq!(four.to_shard_mode(), ShardMode::Fixed(4));
        assert_eq!(ShardsSpec::Count(0).to_shard_mode(), ShardMode::Off);
        assert_eq!(ShardsSpec::Count(1).to_shard_mode(), ShardMode::Off);

        let cell: CellConfig =
            serde_json::from_str(r#"{ "pcpus": 2, "vms": [2], "shards": "fast" }"#).unwrap();
        let err = cell.validate().unwrap_err();
        assert!(err.to_string().contains("auto"), "{err}");
    }

    #[test]
    fn shards_never_enter_the_canonical_form() {
        // Sharding is bit-identical by contract, so cells that differ only
        // in `shards` must share one store key (and one cached result).
        let plain: CellConfig = serde_json::from_str(r#"{ "pcpus": 4, "vms": [2, 4] }"#).unwrap();
        for spelling in [r#""auto""#, "4", "1"] {
            let sharded: CellConfig = serde_json::from_str(&format!(
                r#"{{ "pcpus": 4, "vms": [2, 4], "shards": {spelling} }}"#
            ))
            .unwrap();
            assert_eq!(
                crate::key::canonical_json(&plain),
                crate::key::canonical_json(&sharded)
            );
            assert_eq!(crate::key::cell_key(&plain), crate::key::cell_key(&sharded));
        }
    }

    #[test]
    fn sharded_cell_report_matches_sequential() {
        let run = |shards: &str| -> MetricsReport {
            let cell: CellConfig = serde_json::from_str(&format!(
                r#"{{ "pcpus": 2, "vms": [2, 1], "warmup": 100, "horizon": 800,
                     "replications": 2, "shards": {shards} }}"#
            ))
            .unwrap();
            cell.run_report().unwrap()
        };
        let sequential = run("0");
        for spelling in [r#""auto""#, "2", "4"] {
            let sharded = run(spelling);
            assert_eq!(
                sequential.vcpu_availability_means(),
                sharded.vcpu_availability_means(),
                "shards = {spelling} must be bit-identical"
            );
        }
    }

    #[test]
    fn cell_validation_rejects_out_of_range_parameters() {
        let base = r#"{ "pcpus": 2, "vms": [2] }"#;
        let ok: CellConfig = serde_json::from_str(base).unwrap();
        ok.validate().unwrap();

        let cell: CellConfig =
            serde_json::from_str(r#"{ "pcpus": 2, "vms": [2], "timeslice": 0 }"#).unwrap();
        let err = cell.validate().unwrap_err();
        assert!(err.to_string().contains("timeslice"), "{err}");
        assert!(cell.builder().is_err(), "builder must also refuse");

        let cell: CellConfig =
            serde_json::from_str(r#"{ "pcpus": 2, "vms": [2], "replications": 0 }"#).unwrap();
        assert!(cell.validate().is_err());

        let cell: CellConfig = serde_json::from_str(
            r#"{ "pcpus": 2, "vms": [2],
                 "policy": { "rcs": { "skew_threshold": 0, "skew_resume": 0 } } }"#,
        )
        .unwrap();
        let err = cell.validate().unwrap_err();
        assert!(err.to_string().contains("skew_threshold"), "{err}");
    }

    #[test]
    fn heterogeneous_cell_applies_weights_and_overrides() {
        let cell: CellConfig = serde_json::from_str(
            r#"{ "pcpus": 4, "vms": [4, 2], "weights": [4, 1],
                 "vm_workloads": [
                   { "load": { "uniform": { "low": 5.0, "high": 15.0 } },
                     "sync_ratio": [1, 3], "sync_mechanism": "spinlock" },
                   {} ] }"#,
        )
        .unwrap();
        let sys = cell.system().unwrap();
        assert_eq!(sys.vms()[0].weight, 4);
        assert_eq!(sys.vms()[1].weight, 1);
        assert_eq!(
            sys.vms()[0].workload.sync_mechanism,
            SyncMechanism::SpinLock
        );
        assert_eq!(sys.vms()[1].workload.sync_mechanism, SyncMechanism::Barrier);
        assert!((sys.vms()[0].workload.sync_probability - 1.0 / 3.0).abs() < 1e-12);
        assert!(
            (sys.vms()[1].workload.sync_probability - 0.2).abs() < 1e-12,
            "paper default"
        );
        assert!(cell.vm_workloads.as_ref().unwrap()[1].is_noop());
    }

    #[test]
    fn sync_probability_overrides_ratio() {
        let cell: CellConfig =
            serde_json::from_str(r#"{ "pcpus": 2, "vms": [2], "sync_probability": 0.17 }"#)
                .unwrap();
        let sys = cell.system().unwrap();
        assert!((sys.vms()[0].workload.sync_probability - 0.17).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_cell_validation() {
        let bad = |json: &str, needle: &str| {
            let cell: CellConfig = serde_json::from_str(json).unwrap();
            let err = cell.validate().unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        };
        bad(
            r#"{ "pcpus": 2, "vms": [2, 1], "weights": [1] }"#,
            "weights",
        );
        bad(
            r#"{ "pcpus": 2, "vms": [2], "weights": [0] }"#,
            "weights must be at least 1",
        );
        bad(
            r#"{ "pcpus": 2, "vms": [2], "sync_probability": 1.5 }"#,
            "sync_probability",
        );
        bad(
            r#"{ "pcpus": 2, "vms": [2], "sync_probability": 0.2, "sync_every": 3 }"#,
            "mutually exclusive",
        );
        bad(
            r#"{ "pcpus": 2, "vms": [2, 1], "vm_workloads": [{}] }"#,
            "vm_workloads",
        );
    }

    #[test]
    fn homogeneous_cells_keep_their_canonical_form() {
        // The new optional fields must be invisible in the canonical JSON
        // of a cell that does not use them — store keys of every
        // previously-simulated cell stay valid.
        let cell: CellConfig =
            serde_json::from_str(r#"{ "pcpus": 4, "vms": [2, 4], "sync_ratio": [1, 3] }"#).unwrap();
        let canonical = serde_json::to_string(&cell).unwrap();
        for absent in ["weights", "sync_probability", "vm_workloads", "trace"] {
            assert!(!canonical.contains(absent), "{absent} leaked: {canonical}");
        }
        // … and the static fields still serialize.
        assert!(canonical.contains("\"pcpus\":4"), "{canonical}");
        assert!(canonical.contains("\"vms\":[2,4]"), "{canonical}");
    }

    fn write_tiny_trace() -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("vsched-cell-trace-{}.jsonl", std::process::id()));
        std::fs::write(
            &path,
            "{\"meta\":{\"pcpus\":2}}\n\
             {\"time\":0,\"vm\":\"a\",\"arrive\":{\"vcpus\":2}}\n\
             {\"time\":0,\"vm\":\"b\",\"arrive\":{\"vcpus\":1}}\n\
             {\"time\":100,\"vm\":\"b\",\"depart\":true}\n",
        )
        .unwrap();
        path
    }

    #[test]
    fn trace_cells_validate_and_enter_the_canonical_form() {
        let cell: CellConfig =
            serde_json::from_str(r#"{ "trace": "configs/traces/churn_small.jsonl" }"#).unwrap();
        cell.validate().unwrap();
        let canonical = serde_json::to_string(&cell).unwrap();
        assert!(canonical.contains("churn_small.jsonl"), "{canonical}");
        assert!(
            !canonical.contains("pcpus") && !canonical.contains("vms"),
            "omitted topology leaked: {canonical}"
        );
        // Distinct traces hash to distinct store keys.
        let other: CellConfig =
            serde_json::from_str(r#"{ "trace": "configs/traces/other.jsonl" }"#).unwrap();
        assert_ne!(crate::key::cell_key(&cell), crate::key::cell_key(&other));
        // The static builder refuses trace cells.
        assert!(cell.builder().is_err());
    }

    #[test]
    fn trace_cell_validation_rejects_conflicts() {
        let bad = |json: &str, needle: &str| {
            let cell: CellConfig = serde_json::from_str(json).unwrap();
            let err = cell.validate().unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        };
        bad(r#"{ "trace": "t.jsonl", "vms": [2] }"#, "omit `vms`");
        bad(r#"{ "trace": "t.jsonl", "pcpus": 2 }"#, "omit `pcpus`");
        bad(r#"{ "trace": "t.csv" }"#, "set `pcpus`");
        bad(r#"{ }"#, "at least 1 PCPU");
        bad(r#"{ "pcpus": 2 }"#, "at least 1 PCPU");
        // A CSV trace with a platform is fine.
        let cell: CellConfig = serde_json::from_str(r#"{ "trace": "t.csv", "pcpus": 4 }"#).unwrap();
        cell.validate().unwrap();
    }

    #[test]
    fn trace_cell_runs_to_a_metrics_report() {
        let path = write_tiny_trace();
        let cell: CellConfig = serde_json::from_str(&format!(
            r#"{{ "trace": {:?}, "policy": "rrs", "engine": "direct",
                  "warmup": 50, "horizon": 300, "replications": 3 }}"#,
            path.to_string_lossy()
        ))
        .unwrap();
        assert_eq!(cell.summary().unwrap().split(' ').next(), Some("RRS"));
        assert!(cell.summary().unwrap().contains("trace:"));
        let system = cell.system().unwrap();
        assert_eq!(system.total_vcpus(), 3, "union topology");
        let report = cell.run_report().unwrap();
        assert_eq!(report.replications, 3);
        assert_eq!(report.vcpu_availability.len(), 3);
        // Bit-stable across runs (same seeds, sequential merge order).
        let again = cell.run_report().unwrap();
        assert_eq!(report, again);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trace_cell_with_missing_file_reports_the_path() {
        let cell: CellConfig =
            serde_json::from_str(r#"{ "trace": "/nonexistent/t.jsonl" }"#).unwrap();
        let err = cell.run_report().unwrap_err();
        assert!(err.to_string().contains("/nonexistent/t.jsonl"), "{err}");
    }

    #[test]
    fn policy_spec_from_kind_round_trips() {
        for kind in PolicyKind::all() {
            let spec = PolicySpec::from_kind(&kind);
            assert!(
                matches!(spec, PolicySpec::Label(_)),
                "registry defaults collapse to labels: {kind}"
            );
            assert_eq!(spec.to_kind().unwrap(), kind);
        }
        for kind in [
            PolicyKind::RelaxedCo {
                skew_threshold: 9,
                skew_resume: 4,
            },
            PolicyKind::Credit { refill_period: 77 },
            PolicyKind::Sedf { period: 55 },
            PolicyKind::Bvt { max_lag: 1234 },
        ] {
            let spec = PolicySpec::from_kind(&kind);
            assert!(!matches!(spec, PolicySpec::Label(_)), "{kind}");
            assert_eq!(spec.to_kind().unwrap(), kind);
            // And the parameterized forms survive a JSON round trip.
            let json = serde_json::to_string(&spec).unwrap();
            let back: PolicySpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn sweep_spec_validation() {
        assert!(SweepSpec::from_json(r#"{ "experiments": [] }"#).is_err());
        assert!(SweepSpec::from_json(
            r#"{ "version": 2,
                 "experiments": [ { "name": "a", "base": { "pcpus": 1, "vms": [1] } } ] }"#
        )
        .is_err());
        assert!(SweepSpec::from_json(
            r#"{ "experiments": [
                   { "name": "a", "base": { "pcpus": 1, "vms": [1] } },
                   { "name": "a", "base": { "pcpus": 2, "vms": [1] } } ] }"#
        )
        .is_err());
        let ok = SweepSpec::from_json(
            r#"{ "experiments": [ { "name": "a", "base": { "pcpus": 1, "vms": [1] } } ] }"#,
        )
        .unwrap();
        assert_eq!(ok.version, 1);
        assert_eq!(ok.experiments[0].report, "summary");
    }
}
