//! Grid expansion: from a [`SweepSpec`] to fully-resolved cells.
//!
//! Each experiment's `base` object is merged, at the JSON level, with one
//! point from every axis (cartesian product, row-major with the first axis
//! slowest) and then with each `extra` point on its own. Every merged
//! object is parsed into a [`CellConfig`] — which applies defaults, fixes
//! the canonical field order, and rejects unknown fields — and keyed.

use serde::Deserialize as _;
use serde_json::Value;

use crate::error::CampaignError;
use crate::key::cell_key;
use crate::spec::{CellConfig, ExperimentSpec, PointSpec, SweepSpec};

/// One fully-resolved cell of an experiment grid.
#[derive(Debug, Clone)]
pub struct PlannedCell {
    /// Content-addressed key (see [`crate::key`]).
    pub key: String,
    /// The resolved configuration.
    pub config: CellConfig,
    /// Display labels, one per axis (for grid cells) or a single label
    /// (for `extra` cells). Defaults to the compact JSON of the override.
    pub labels: Vec<String>,
}

/// One experiment, expanded.
#[derive(Debug, Clone)]
pub struct PlannedExperiment {
    /// Experiment name (also the output file stem).
    pub name: String,
    /// Renderer id.
    pub report: String,
    /// Axis names, in declaration order.
    pub axis_names: Vec<String>,
    /// Axis lengths, in declaration order.
    pub axis_lens: Vec<usize>,
    /// Number of grid cells (`axis_lens` product); `cells[..grid_cells]`
    /// is the grid, the remainder the `extra` cells. An experiment with no
    /// axes but some extras has no grid at all (`0`, not the empty
    /// product's `1`); with neither, the base is the single grid cell.
    pub grid_cells: usize,
    /// All cells: the grid row-major (first axis slowest), then extras.
    pub cells: Vec<PlannedCell>,
}

impl PlannedExperiment {
    /// The grid cell at the given per-axis coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `coords` does not match the axis count or is out of range.
    #[must_use]
    pub fn cell_at(&self, coords: &[usize]) -> &PlannedCell {
        assert_eq!(coords.len(), self.axis_lens.len(), "coordinate arity");
        let mut idx = 0;
        for (c, len) in coords.iter().zip(&self.axis_lens) {
            assert!(c < len, "coordinate out of range");
            idx = idx * len + c;
        }
        &self.cells[idx]
    }
}

/// A fully-expanded campaign.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The experiments, in spec order.
    pub experiments: Vec<PlannedExperiment>,
}

impl Plan {
    /// Total number of cells across all experiments (with duplicates).
    #[must_use]
    pub fn total_cells(&self) -> usize {
        self.experiments.iter().map(|e| e.cells.len()).sum()
    }
}

/// Merges `overlay` (a JSON object) into `base` (a JSON object), replacing
/// existing keys and appending new ones.
fn merge_objects(base: &Value, overlay: &Value, context: &str) -> Result<Value, CampaignError> {
    let base_map = base
        .as_map()
        .ok_or_else(|| CampaignError::spec(format!("{context}: base must be a JSON object")))?;
    let overlay_map = overlay
        .as_map()
        .ok_or_else(|| CampaignError::spec(format!("{context}: override must be a JSON object")))?;
    let mut merged: Vec<(String, Value)> = base_map.to_vec();
    for (k, v) in overlay_map {
        match merged.iter_mut().find(|(mk, _)| mk == k) {
            Some((_, mv)) => *mv = v.clone(),
            None => merged.push((k.clone(), v.clone())),
        }
    }
    Ok(Value::Map(merged))
}

fn resolve_cell(merged: &Value, context: &str) -> Result<PlannedCell, CampaignError> {
    let config = CellConfig::deserialize_content(merged)
        .map_err(|e| CampaignError::spec(format!("{context}: {e}")))?;
    // Out-of-range parameters (zero timeslice, empty replication budget,
    // bad policy params) fail at plan time, before anything is hashed into
    // the store or simulated.
    config
        .validate()
        .map_err(|e| CampaignError::spec(format!("{context}: {e}")))?;
    // Round-trip sanity: the canonical form must itself parse (guards the
    // store against un-reloadable entries).
    let key = cell_key(&config);
    Ok(PlannedCell {
        key,
        config,
        labels: Vec::new(),
    })
}

fn point_label(point: &PointSpec) -> String {
    point
        .label
        .clone()
        .unwrap_or_else(|| point.set.to_json_string())
}

fn expand_experiment(exp: &ExperimentSpec) -> Result<PlannedExperiment, CampaignError> {
    let axis_names: Vec<String> = exp.axes.iter().map(|a| a.name.clone()).collect();
    let axis_lens: Vec<usize> = exp.axes.iter().map(|a| a.points.len()).collect();
    for axis in &exp.axes {
        if axis.points.is_empty() {
            return Err(CampaignError::spec(format!(
                "experiment `{}`: axis `{}` has no points",
                exp.name, axis.name
            )));
        }
    }
    // No axes means no grid — the experiment is the `extra` enumeration
    // alone. Without extras either, the base itself is the single cell
    // (the empty product).
    let grid_cells: usize = if exp.axes.is_empty() && !exp.extra.is_empty() {
        0
    } else {
        axis_lens.iter().product()
    };
    let mut cells = Vec::with_capacity(grid_cells + exp.extra.len());
    for idx in 0..grid_cells {
        // Row-major decomposition: first axis slowest.
        let mut rem = idx;
        let mut coords = vec![0usize; axis_lens.len()];
        for (i, len) in axis_lens.iter().enumerate().rev() {
            coords[i] = rem % len;
            rem /= len;
        }
        let mut merged = exp.base.clone();
        let mut labels = Vec::with_capacity(coords.len());
        for (axis, &c) in exp.axes.iter().zip(&coords) {
            let point = &axis.points[c];
            let context = format!("experiment `{}`, axis `{}`, point {c}", exp.name, axis.name);
            merged = merge_objects(&merged, &point.set, &context)?;
            labels.push(point_label(point));
        }
        let context = format!("experiment `{}`, grid cell {idx}", exp.name);
        let mut cell = resolve_cell(&merged, &context)?;
        cell.labels = labels;
        cells.push(cell);
    }
    for (i, point) in exp.extra.iter().enumerate() {
        let context = format!("experiment `{}`, extra cell {i}", exp.name);
        let merged = merge_objects(&exp.base, &point.set, &context)?;
        let mut cell = resolve_cell(&merged, &context)?;
        cell.labels = vec![point_label(point)];
        cells.push(cell);
    }
    Ok(PlannedExperiment {
        name: exp.name.clone(),
        report: exp.report.clone(),
        axis_names,
        axis_lens,
        grid_cells,
        cells,
    })
}

/// Expands every experiment of a spec into its grid of keyed cells.
///
/// # Errors
///
/// [`CampaignError::Spec`] when a base or override is not a JSON object,
/// an axis is empty, or a merged cell fails to parse as a [`CellConfig`]
/// (including unknown-field typos).
pub fn plan(spec: &SweepSpec) -> Result<Plan, CampaignError> {
    let experiments = spec
        .experiments
        .iter()
        .map(expand_experiment)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Plan { experiments })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{EngineSpec, PolicySpec};

    fn spec(json: &str) -> SweepSpec {
        SweepSpec::from_json(json).unwrap()
    }

    const GRID: &str = r#"{
        "experiments": [ {
            "name": "demo",
            "base": { "pcpus": 4, "vms": [2, 4] },
            "axes": [
                { "name": "sync", "points": [
                    { "set": { "sync_ratio": [1, 5] } },
                    { "set": { "sync_ratio": [1, 2] } } ] },
                { "name": "policy", "points": [
                    { "set": { "policy": "rrs" } },
                    { "set": { "policy": "scs" } },
                    { "set": { "policy": "rcs" } } ] }
            ],
            "extra": [ { "label": "direct check",
                         "set": { "engine": "direct" } } ]
        } ]
    }"#;

    #[test]
    fn grid_expands_row_major() {
        let p = plan(&spec(GRID)).unwrap();
        let exp = &p.experiments[0];
        assert_eq!(exp.grid_cells, 6);
        assert_eq!(exp.cells.len(), 7);
        assert_eq!(exp.axis_lens, vec![2, 3]);
        // First axis slowest: cells 0-2 are sync 1:5 with rrs/scs/rcs.
        assert_eq!(exp.cells[0].config.sync_ratio, (1, 5));
        assert_eq!(exp.cells[3].config.sync_ratio, (1, 2));
        assert_eq!(exp.cells[1].config.policy, PolicySpec::Label("scs".into()));
        // cell_at agrees with the flat layout.
        assert_eq!(exp.cell_at(&[1, 2]).key, exp.cells[5].key);
        // The extra cell carries its label and the engine override.
        let extra = &exp.cells[6];
        assert_eq!(extra.labels, vec!["direct check".to_string()]);
        assert_eq!(extra.config.engine, EngineSpec::Direct);
    }

    #[test]
    fn default_labels_are_override_json() {
        let p = plan(&spec(GRID)).unwrap();
        assert_eq!(
            p.experiments[0].cells[0].labels[0],
            r#"{"sync_ratio":[1,5]}"#
        );
    }

    #[test]
    fn identical_cells_share_keys_across_experiments() {
        let two = spec(
            r#"{ "experiments": [
                { "name": "a", "base": { "pcpus": 4, "vms": [2, 4] } },
                { "name": "b",
                  "base": { "pcpus": 4, "vms": [2, 4], "sync_ratio": [1, 5] } } ] }"#,
        );
        let p = plan(&two).unwrap();
        assert_eq!(
            p.experiments[0].cells[0].key, p.experiments[1].cells[0].key,
            "default-vs-explicit spelling must dedup"
        );
        assert_eq!(p.total_cells(), 2);
    }

    #[test]
    fn axisless_experiment_with_extras_has_no_grid_cell() {
        let p = plan(&spec(
            r#"{ "experiments": [ {
                "name": "enumerated",
                "base": { "pcpus": 4, "vms": [2, 4] },
                "extra": [
                    { "set": { "policy": "rrs" } },
                    { "set": { "policy": "scs" } } ] } ] }"#,
        ))
        .unwrap();
        let exp = &p.experiments[0];
        assert_eq!(exp.grid_cells, 0, "no axes + extras means no base cell");
        assert_eq!(exp.cells.len(), 2);
        // Without extras the base is still the single (empty-product) cell.
        let p = plan(&spec(
            r#"{ "experiments": [ {
                "name": "single",
                "base": { "pcpus": 4, "vms": [2, 4] } } ] }"#,
        ))
        .unwrap();
        assert_eq!(p.experiments[0].grid_cells, 1);
        assert_eq!(p.experiments[0].cells.len(), 1);
    }

    #[test]
    fn bad_specs_are_rejected() {
        // Typo inside an axis override.
        let bad = spec(
            r#"{ "experiments": [ {
                "name": "demo",
                "base": { "pcpus": 4, "vms": [2] },
                "axes": [ { "name": "ts", "points": [
                    { "set": { "timeslise": 10 } } ] } ] } ] }"#,
        );
        let err = plan(&bad).unwrap_err();
        assert!(err.to_string().contains("timeslise"), "{err}");
        // Non-object override.
        let bad = spec(
            r#"{ "experiments": [ {
                "name": "demo",
                "base": { "pcpus": 4, "vms": [2] },
                "axes": [ { "name": "ts", "points": [ { "set": 10 } ] } ] } ] }"#,
        );
        assert!(plan(&bad).is_err());
        // Empty axis.
        let bad = spec(
            r#"{ "experiments": [ {
                "name": "demo",
                "base": { "pcpus": 4, "vms": [2] },
                "axes": [ { "name": "ts", "points": [] } ] } ] }"#,
        );
        assert!(plan(&bad).is_err());
    }
}
