//! The content-addressed on-disk result store.
//!
//! Layout: one JSON file per simulated cell under `<dir>/cells/<key>.json`,
//! where `<key>` is the [`crate::key::cell_key`] of the resolved config.
//! Each file carries the key, the engine version, the full resolved config
//! (for human inspection and integrity checks) and the metrics report.
//!
//! Files are written atomically ([`crate::fsio::write_atomic`]), so a
//! campaign killed at any instant leaves the store with only whole,
//! loadable entries — re-running the campaign then completes exactly the
//! missing cells. Serialization of the report is lossless for `f64`
//! (shortest-round-trip formatting), which is what makes a warm re-render
//! bit-identical to the cold run that populated the store.

use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use vsched_core::MetricsReport;

use crate::error::CampaignError;
use crate::fsio::write_atomic;
use crate::key::ENGINE_VERSION;
use crate::spec::CellConfig;

/// One stored cell result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct StoredCell {
    /// The content-addressed key this entry is filed under.
    pub key: String,
    /// Engine version that produced the result (informational; the key
    /// already commits to it).
    pub engine_version: String,
    /// The fully-resolved configuration that was simulated.
    pub config: CellConfig,
    /// The simulation output.
    pub report: MetricsReport,
}

/// A directory of content-addressed cell results.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if necessary) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CampaignError> {
        let dir = dir.into();
        let cells = dir.join("cells");
        fs::create_dir_all(&cells).map_err(|e| CampaignError::io(&cells, e))?;
        Ok(ResultStore { dir })
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn cell_path(&self, key: &str) -> PathBuf {
        self.dir.join("cells").join(format!("{key}.json"))
    }

    /// Whether a result for `key` is present.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.cell_path(key).is_file()
    }

    /// Number of stored cells.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] if the store directory cannot be read.
    pub fn len(&self) -> Result<usize, CampaignError> {
        let cells = self.dir.join("cells");
        let entries = fs::read_dir(&cells).map_err(|e| CampaignError::io(&cells, e))?;
        let mut n = 0;
        for entry in entries {
            let entry = entry.map_err(|e| CampaignError::io(&cells, e))?;
            if entry.path().extension().is_some_and(|e| e == "json") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Whether the store holds no cells.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] if the store directory cannot be read.
    pub fn is_empty(&self) -> Result<bool, CampaignError> {
        Ok(self.len()? == 0)
    }

    /// Loads the result for `key`, or `None` if absent.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] on read failure, [`CampaignError::Spec`] if
    /// the entry is corrupt or filed under the wrong key.
    pub fn load(&self, key: &str) -> Result<Option<StoredCell>, CampaignError> {
        let path = self.cell_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CampaignError::io(&path, e)),
        };
        let cell: StoredCell = serde_json::from_str(&text).map_err(|e| {
            CampaignError::spec(format!("corrupt store entry {}: {e}", path.display()))
        })?;
        if cell.key != key {
            return Err(CampaignError::spec(format!(
                "store entry {} claims key {}",
                path.display(),
                cell.key
            )));
        }
        Ok(Some(cell))
    }

    /// Writes a cell result atomically, replacing any previous entry.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] on write failure.
    pub fn put(&self, cell: &StoredCell) -> Result<(), CampaignError> {
        let path = self.cell_path(&cell.key);
        let body = serde_json::to_string_pretty(cell)
            .map_err(|e| CampaignError::spec(format!("serialize cell {}: {e}", cell.key)))?;
        write_atomic(&path, &body).map_err(|e| CampaignError::io(&path, e))
    }

    /// Convenience constructor for a fresh entry under the current
    /// [`ENGINE_VERSION`].
    #[must_use]
    pub fn entry(key: String, config: CellConfig, report: MetricsReport) -> StoredCell {
        StoredCell {
            key,
            engine_version: ENGINE_VERSION.to_string(),
            config,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::cell_key;
    use vsched_core::PolicyKind;

    fn temp_store(tag: &str) -> (PathBuf, ResultStore) {
        let dir = std::env::temp_dir().join(format!("vsched-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        (dir, store)
    }

    fn tiny_cell() -> (String, CellConfig, MetricsReport) {
        let config: CellConfig = serde_json::from_str(
            r#"{ "pcpus": 1, "vms": [1], "horizon": 500, "warmup": 100,
                 "replications": 2, "engine": "direct" }"#,
        )
        .unwrap();
        let key = cell_key(&config);
        let report = config.builder().unwrap().run().unwrap();
        (key, config, report)
    }

    #[test]
    fn round_trips_losslessly() {
        let (dir, store) = temp_store("roundtrip");
        let (key, config, report) = tiny_cell();
        assert!(!store.contains(&key));
        assert!(store.load(&key).unwrap().is_none());
        store
            .put(&ResultStore::entry(
                key.clone(),
                config.clone(),
                report.clone(),
            ))
            .unwrap();
        assert!(store.contains(&key));
        assert_eq!(store.len().unwrap(), 1);
        let loaded = store.load(&key).unwrap().unwrap();
        assert_eq!(loaded.config, config);
        assert_eq!(loaded.report, report, "f64 round-trip must be exact");
        assert_eq!(loaded.engine_version, ENGINE_VERSION);
        assert_eq!(
            loaded.config.policy.to_kind().unwrap(),
            PolicyKind::RoundRobin
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_key_and_corrupt_entries_are_rejected() {
        let (dir, store) = temp_store("corrupt");
        let (key, config, report) = tiny_cell();
        let mut entry = ResultStore::entry(key.clone(), config, report);
        entry.key = "0123456789abcdef".into();
        store.put(&entry).unwrap();
        assert!(store.load("0123456789abcdef").unwrap().is_some());
        // Filed under a key that disagrees with its contents.
        fs::rename(
            dir.join("cells").join("0123456789abcdef.json"),
            dir.join("cells").join(format!("{key}.json")),
        )
        .unwrap();
        assert!(store.load(&key).is_err());
        // Malformed, truncated, and empty entries must all surface as a
        // typed spec error naming the offending file — never a panic and
        // never a bare parser message with no path.
        let entry_path = dir.join("cells").join(format!("{key}.json"));
        for body in ["{ \"key\":", "not json at all", ""] {
            fs::write(&entry_path, body).unwrap();
            let err = store.load(&key).unwrap_err();
            assert!(
                matches!(err, crate::CampaignError::Spec { .. }),
                "{body:?}: {err}"
            );
            let msg = err.to_string();
            assert!(
                msg.contains("corrupt store entry") && msg.contains(&format!("{key}.json")),
                "{body:?}: {msg}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
