//! End-to-end campaign tests: crash-safe resume, warm-cache hits, and
//! precise invalidation when an axis value changes.
//!
//! These drive [`vsched_campaign::run_sweep`] exactly the way the
//! `vsched sweep` subcommand and the bench shims do, against throwaway
//! spec/store/output directories under the system temp dir.

use std::fs;
use std::path::{Path, PathBuf};

use vsched_campaign::{run_sweep, SweepOptions};

/// A 4-cell sweep (policy × timeslice) small enough to simulate in
/// milliseconds but big enough to kill partway through.
const SPEC: &str = r#"{
  "version": 1,
  "experiments": [
    {
      "name": "grid",
      "base": { "pcpus": 2, "vms": [1, 1], "warmup": 200, "horizon": 2000,
                "replications": 3, "engine": "direct" },
      "axes": [
        { "name": "policy", "points": [
          { "set": { "policy": "rrs" } },
          { "set": { "policy": "scs" } }
        ] },
        { "name": "timeslice", "points": [
          { "set": { "timeslice": 20 } },
          { "set": { "timeslice": 30 } }
        ] }
      ]
    }
  ]
}"#;

/// Same grid with one point of the timeslice axis edited (30 -> 50): the
/// two timeslice-20 cells must stay cached, the two new ones must run.
const SPEC_EDITED_AXIS: &str = r#"{
  "version": 1,
  "experiments": [
    {
      "name": "grid",
      "base": { "pcpus": 2, "vms": [1, 1], "warmup": 200, "horizon": 2000,
                "replications": 3, "engine": "direct" },
      "axes": [
        { "name": "policy", "points": [
          { "set": { "policy": "rrs" } },
          { "set": { "policy": "scs" } }
        ] },
        { "name": "timeslice", "points": [
          { "set": { "timeslice": 20 } },
          { "set": { "timeslice": 50 } }
        ] }
      ]
    }
  ]
}"#;

/// A fresh scratch campaign: spec on disk plus empty store/output dirs.
struct Scratch {
    dir: PathBuf,
    spec: PathBuf,
}

impl Scratch {
    fn new(tag: &str, spec: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("vsched-campaign-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        let spec_path = dir.join("sweep.json");
        fs::write(&spec_path, spec).expect("write spec");
        Self {
            dir,
            spec: spec_path,
        }
    }

    fn opts(&self) -> SweepOptions {
        SweepOptions {
            store_dir: Some(self.dir.join("store")),
            out_dir: Some(self.dir.join("out")),
            jobs: Some(2),
            quiet: true,
            ..SweepOptions::default()
        }
    }

    fn figure_bytes(&self, name: &str) -> Vec<u8> {
        let path = self.dir.join("out").join(format!("{name}.json"));
        fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn warm_run_is_all_cache_hits_and_byte_identical() {
    let scratch = Scratch::new("warm", SPEC);
    let cold = run_sweep(&scratch.spec, &scratch.opts()).expect("cold run");
    assert_eq!(cold.unique_cells, 4);
    assert_eq!(cold.simulated, 4);
    assert_eq!(cold.cached, 0);
    assert!(cold.skipped_experiments.is_empty());
    let cold_bytes = scratch.figure_bytes("grid");

    let warm = run_sweep(&scratch.spec, &scratch.opts()).expect("warm run");
    assert_eq!(warm.simulated, 0, "warm run must not simulate");
    assert_eq!(warm.cached, 4, "warm run must serve every cell from cache");
    assert_eq!(
        scratch.figure_bytes("grid"),
        cold_bytes,
        "warm output must be byte-identical to the cold run"
    );
}

#[test]
fn killed_campaign_resumes_with_only_missing_cells() {
    // Reference: an uninterrupted cold run in its own scratch area.
    let reference = Scratch::new("resume-ref", SPEC);
    run_sweep(&reference.spec, &reference.opts()).expect("reference run");
    let reference_bytes = reference.figure_bytes("grid");

    // "Kill" a second campaign after 2 of 4 cells via the max_cells hook.
    let scratch = Scratch::new("resume", SPEC);
    let partial = run_sweep(
        &scratch.spec,
        &SweepOptions {
            max_cells: Some(2),
            ..scratch.opts()
        },
    )
    .expect("partial run");
    assert_eq!(partial.simulated, 2);
    assert_eq!(
        partial.skipped_experiments,
        vec!["grid".to_string()],
        "incomplete experiment must not render"
    );
    assert!(
        !scratch.dir.join("out").join("grid.json").exists(),
        "no figure may be written from an incomplete cell set"
    );

    // Resuming completes only the 2 missing cells and renders the figure.
    let resumed = run_sweep(&scratch.spec, &scratch.opts()).expect("resumed run");
    assert_eq!(resumed.cached, 2, "finished cells must come from the store");
    assert_eq!(resumed.simulated, 2, "only missing cells may simulate");
    assert!(resumed.skipped_experiments.is_empty());
    assert_eq!(
        scratch.figure_bytes("grid"),
        reference_bytes,
        "resumed output must be bit-identical to an uninterrupted run"
    );
}

#[test]
fn editing_an_axis_invalidates_only_affected_cells() {
    let scratch = Scratch::new("invalidate", SPEC);
    let cold = run_sweep(&scratch.spec, &scratch.opts()).expect("cold run");
    assert_eq!(cold.simulated, 4);

    // Change one timeslice point: 30 -> 50. The two timeslice-20 cells are
    // untouched and must be cache hits; only the two new cells simulate.
    fs::write(&scratch.spec, SPEC_EDITED_AXIS).expect("rewrite spec");
    let edited = run_sweep(&scratch.spec, &scratch.opts()).expect("edited run");
    assert_eq!(edited.unique_cells, 4);
    assert_eq!(edited.cached, 2, "unaffected cells must stay cached");
    assert_eq!(edited.simulated, 2, "only cells on the edited axis re-run");
}

#[test]
fn dry_run_simulates_nothing() {
    let scratch = Scratch::new("dry", SPEC);
    let dry = run_sweep(
        &scratch.spec,
        &SweepOptions {
            dry_run: true,
            ..scratch.opts()
        },
    )
    .expect("dry run");
    assert_eq!(dry.unique_cells, 4);
    assert_eq!(dry.simulated, 0);
    assert!(
        !Path::new(&scratch.dir.join("store").join("cells")).exists() || {
            fs::read_dir(scratch.dir.join("store").join("cells"))
                .map(|d| d.count() == 0)
                .unwrap_or(true)
        }
    );
}
