//! Exact linear algebra over the incidence matrix.
//!
//! Two computations, both exact over [`Ratio`]:
//!
//! * [`integer_nullspace`] — a basis of `{x : A·x = 0}` by Gauss–Jordan
//!   elimination, scaled to primitive integer vectors. P-invariants are the
//!   left nullspace of the incidence matrix `C` (call with the columns of
//!   `C` as rows); T-invariants are the right nullspace (call with `C`
//!   itself).
//! * [`nonnegative_semiflows`] — Farkas' algorithm for the generating set
//!   of **non-negative** P-semiflows, which yield sound place bounds
//!   (`m(p) ≤ y·m₀ / y_p` for every reachable `m`) and hence structural
//!   dead-activity detection.

use crate::ratio::{gcd, Ratio};

/// A basis of the nullspace `{x ∈ Q^cols : A·x = 0}`, as primitive integer
/// vectors (entries divided by their gcd, first non-zero entry positive).
///
/// `rows` are the rows of `A`; each must have length `cols` (shorter rows
/// are treated as zero-padded).
#[must_use]
pub fn integer_nullspace(rows: &[Vec<i64>], cols: usize) -> Vec<Vec<i64>> {
    // Gauss–Jordan to reduced row echelon form.
    let mut m: Vec<Vec<Ratio>> = rows
        .iter()
        .map(|r| {
            (0..cols)
                .map(|j| Ratio::from_int(r.get(j).copied().unwrap_or(0)))
                .collect()
        })
        .collect();
    let mut pivot_of_col: Vec<Option<usize>> = vec![None; cols];
    let mut rank = 0usize;
    for col in 0..cols {
        let Some(pr) = (rank..m.len()).find(|&r| !m[r][col].is_zero()) else {
            continue;
        };
        m.swap(rank, pr);
        let inv = m[rank][col].recip();
        for x in &mut m[rank][col..cols] {
            *x = *x * inv;
        }
        let pivot_row = m[rank].clone();
        for (r, row) in m.iter_mut().enumerate() {
            if r != rank && !row[col].is_zero() {
                let f = row[col];
                for (x, p) in row[col..cols].iter_mut().zip(&pivot_row[col..cols]) {
                    *x = *x - *p * f;
                }
            }
        }
        pivot_of_col[col] = Some(rank);
        rank += 1;
    }
    // One basis vector per free column.
    let mut basis = Vec::new();
    for free in 0..cols {
        if pivot_of_col[free].is_some() {
            continue;
        }
        let mut v = vec![Ratio::ZERO; cols];
        v[free] = Ratio::ONE;
        for (col, pr) in pivot_of_col.iter().enumerate() {
            if let Some(pr) = pr {
                v[col] = -m[*pr][free];
            }
        }
        basis.push(to_primitive_integer(&v));
    }
    basis
}

/// Scales a rational vector to a primitive integer vector with positive
/// leading non-zero entry.
fn to_primitive_integer(v: &[Ratio]) -> Vec<i64> {
    let lcm_den = v.iter().fold(1i128, |acc, r| {
        let d = r.denom();
        acc / gcd(acc, d).max(1) * d
    });
    let mut ints: Vec<i128> = v
        .iter()
        .map(|r| r.numer() * (lcm_den / r.denom()))
        .collect();
    let g = ints.iter().fold(0i128, |acc, &x| gcd(acc, x)).max(1);
    let sign = ints
        .iter()
        .find(|&&x| x != 0)
        .map_or(1, |&x| if x < 0 { -1 } else { 1 });
    for x in &mut ints {
        *x = *x / g * sign;
    }
    ints.iter()
        .map(|&x| i64::try_from(x).expect("invariant entry overflows i64"))
        .collect()
}

/// Dot product of an integer vector with an incidence column.
#[must_use]
pub fn dot(y: &[i64], col: &[i64]) -> i64 {
    y.iter().zip(col).map(|(&a, &b)| a * b).sum()
}

/// Farkas' algorithm: the generating set of non-negative P-semiflows
/// (`y ≥ 0`, `y ≠ 0`, `y·c = 0` for every column `c`), capped at
/// `max_rows` intermediate rows.
///
/// Returns `(semiflows, truncated)`; when `truncated` is true the set may
/// be incomplete and any bound derived from it must not be treated as
/// exhaustive (the missing semiflows could only *add* bounds, so the
/// bounds that are found remain sound).
#[must_use]
pub fn nonnegative_semiflows(
    columns: &[Vec<i64>],
    places: usize,
    max_rows: usize,
) -> (Vec<Vec<i64>>, bool) {
    // Rows of [C | I]: (constraint part, identity part).
    let mut rows: Vec<(Vec<i128>, Vec<i128>)> = (0..places)
        .map(|p| {
            let c: Vec<i128> = columns
                .iter()
                .map(|col| i128::from(col.get(p).copied().unwrap_or(0)))
                .collect();
            let mut id = vec![0i128; places];
            id[p] = 1;
            (c, id)
        })
        .collect();
    let mut truncated = false;
    for j in 0..columns.len() {
        let (zeros, nonzeros): (Vec<_>, Vec<_>) = rows.drain(..).partition(|r| r.0[j] == 0);
        let mut next = zeros;
        let pos: Vec<_> = nonzeros.iter().filter(|r| r.0[j] > 0).collect();
        let neg: Vec<_> = nonzeros.iter().filter(|r| r.0[j] < 0).collect();
        'combine: for a in &pos {
            for b in &neg {
                if next.len() >= max_rows {
                    truncated = true;
                    break 'combine;
                }
                let (fa, fb) = (-b.0[j], a.0[j]);
                let c: Vec<i128> =
                    a.0.iter()
                        .zip(&b.0)
                        .map(|(&x, &y)| fa * x + fb * y)
                        .collect();
                let id: Vec<i128> =
                    a.1.iter()
                        .zip(&b.1)
                        .map(|(&x, &y)| fa * x + fb * y)
                        .collect();
                let g = c
                    .iter()
                    .chain(&id)
                    .fold(0i128, |acc, &x| gcd(acc, x))
                    .max(1);
                let row = (
                    c.iter().map(|&x| x / g).collect::<Vec<_>>(),
                    id.iter().map(|&x| x / g).collect::<Vec<_>>(),
                );
                if !next.contains(&row) {
                    next.push(row);
                }
            }
        }
        rows = next;
    }
    let semiflows = rows
        .into_iter()
        .filter(|(c, id)| c.iter().all(|&x| x == 0) && id.iter().any(|&x| x != 0))
        .map(|(_, id)| {
            id.iter()
                .map(|&x| i64::try_from(x).expect("semiflow entry overflows i64"))
                .collect()
        })
        .collect();
    (semiflows, truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `p0 → t0 → p1 → t1 → p0`: the classic cycle. Published bases:
    /// P-invariants `{[1, 1]}`, T-invariants `{[1, 1]}`.
    #[test]
    fn cycle_net_invariants() {
        // C: rows = places, cols = transitions.
        let c_rows = vec![vec![-1, 1], vec![1, -1]];
        let t_inv = integer_nullspace(&c_rows, 2);
        assert_eq!(t_inv, vec![vec![1, 1]]);

        let cols_as_rows = vec![vec![-1, 1], vec![1, -1]]; // Cᵀ (symmetric here)
        let p_inv = integer_nullspace(&cols_as_rows, 2);
        assert_eq!(p_inv, vec![vec![1, 1]]);
    }

    /// Mutex net: `t_enter: idle + lock → active` and `t_exit: active →
    /// idle + lock`. Published P-invariant basis has dimension 2 (idle +
    /// active and lock + active are both conserved).
    #[test]
    fn mutex_net_p_invariants() {
        // Places: idle, active, lock. Columns of C as rows of Cᵀ.
        let enter = vec![-1, 1, -1];
        let exit = vec![1, -1, 1];
        let p_inv = integer_nullspace(&[enter.clone(), exit.clone()], 3);
        assert_eq!(p_inv.len(), 2);
        for y in &p_inv {
            assert_eq!(dot(y, &enter), 0);
            assert_eq!(dot(y, &exit), 0);
        }
    }

    /// Fork–join: `t_fork: a → b + c`, `t_join: b + c → d`. The published
    /// basis has dimension 2, e.g. `{a + b + d, a + c + d}`.
    #[test]
    fn fork_join_p_invariants() {
        let fork = vec![-1, 1, 1, 0];
        let join = vec![0, -1, -1, 1];
        let p_inv = integer_nullspace(&[fork.clone(), join.clone()], 4);
        assert_eq!(p_inv.len(), 2);
        for y in &p_inv {
            assert_eq!(dot(y, &fork), 0);
            assert_eq!(dot(y, &join), 0);
        }
    }

    #[test]
    fn full_rank_has_empty_nullspace() {
        let rows = vec![vec![1, 0], vec![0, 1]];
        assert!(integer_nullspace(&rows, 2).is_empty());
    }

    #[test]
    fn farkas_finds_mutex_semiflows() {
        // Columns of the mutex net, places (idle, active, lock).
        let cols = vec![vec![-1, 1, -1], vec![1, -1, 1]];
        let (semis, truncated) = nonnegative_semiflows(&cols, 3, 1024);
        assert!(!truncated);
        assert!(!semis.is_empty());
        for y in &semis {
            assert!(y.iter().all(|&w| w >= 0));
            for col in &cols {
                assert_eq!(dot(y, col), 0);
            }
        }
        // idle + active is conserved and must be spanned.
        assert!(semis.contains(&vec![1, 1, 0]));
    }

    #[test]
    fn farkas_source_transition_kills_semiflows_on_its_places() {
        // t: ∅ → p0 (a pure source). No non-negative semiflow may weight p0.
        let cols = vec![vec![1, 0], vec![-1, 1]];
        let (semis, _) = nonnegative_semiflows(&cols, 2, 1024);
        for y in &semis {
            assert_eq!(y[0], 0);
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// On random incidence matrices, every reported P-invariant
        /// annihilates every column, the basis vectors are primitive
        /// (gcd 1, positive leading entry), and the basis dimension obeys
        /// rank-nullity: dim ≥ places − columns.
        #[test]
        fn p_invariants_annihilate_random_incidence(
            places in 1usize..7,
            cols in 1usize..7,
            entries in proptest::collection::vec(-3i64..4, 49),
        ) {
            // Columns of C, as the rows handed to the eliminator.
            let columns: Vec<Vec<i64>> = (0..cols)
                .map(|j| (0..places).map(|p| entries[j * places + p]).collect())
                .collect();
            let basis = integer_nullspace(&columns, places);
            prop_assert!(basis.len() + cols >= places, "rank-nullity violated");
            for y in &basis {
                for col in &columns {
                    prop_assert_eq!(dot(y, col), 0, "invariant {:?} vs column {:?}", y, col);
                }
                let g = y.iter().fold(0i128, |acc, &x| {
                    crate::ratio::gcd(acc, i128::from(x))
                });
                prop_assert_eq!(g, 1, "not primitive: {:?}", y);
                let lead = y.iter().find(|&&x| x != 0).copied().unwrap_or(0);
                prop_assert!(lead > 0, "leading entry not positive: {:?}", y);
            }
        }

        /// Farkas semiflows on random matrices are non-negative, non-zero,
        /// and annihilate every column.
        #[test]
        fn farkas_semiflows_are_sound_on_random_incidence(
            places in 1usize..5,
            cols in 1usize..5,
            entries in proptest::collection::vec(-2i64..3, 25),
        ) {
            let columns: Vec<Vec<i64>> = (0..cols)
                .map(|j| (0..places).map(|p| entries[j * places + p]).collect())
                .collect();
            let (semis, truncated) = nonnegative_semiflows(&columns, places, 2048);
            prop_assert!(!truncated, "tiny nets must not truncate");
            for y in &semis {
                prop_assert!(y.iter().all(|&w| w >= 0), "negative weight in {:?}", y);
                prop_assert!(y.iter().any(|&w| w != 0), "zero semiflow reported");
                for col in &columns {
                    prop_assert_eq!(dot(y, col), 0, "semiflow {:?} vs column {:?}", y, col);
                }
            }
        }
    }
}
