//! `vsched-analyze`: static structural analysis and lints for vsched SAN
//! models and scheduling policies.
//!
//! The runtime checkers (`vsched-check`) catch defects *while a model
//! executes*; this crate catches a complementary class **before** a single
//! tick runs, from the model's structure:
//!
//! * **Incidence extraction** — exact columns from arcs, observed columns
//!   from bounded concrete exploration of gated activities
//!   ([`incidence`]);
//! * **Invariant math** — P-/T-invariant bases by exact rational
//!   elimination and non-negative P-semiflows by Farkas' algorithm
//!   ([`matrix`], [`ratio`]), reported as conservation laws and used for
//!   structural dead-activity detection;
//! * **Certificates** — the paper model's declared invariants
//!   ([`vsched_core::san_model::expected_invariants`]) checked as named
//!   PASS/FAIL entries of every report;
//! * **Model lints** — `dead-activity`, `nonconserving-gate`,
//!   `confused-instantaneous`, `never-enabled`, `unreachable-case`,
//!   `invalid-case-weights`, `policy-halt` ([`model_pass`]);
//! * **Policy lints** — `invalid-policy-params`, `invalid-decision`,
//!   `undeclared-field-read`, `inert-policy`, checked against the static
//!   contract surface of [`vsched_core::sched`] ([`policy_pass`]);
//! * **Exhaustive verification** — explicit-state reachability with
//!   VM-rotation symmetry reduction, proving invariant catalogues,
//!   deadlock-freedom, exact place bounds and exact activity liveness
//!   with concretely replayable counterexamples ([`verify_pass`]);
//!   its exact results are cross-checked against the structural pass
//!   (`stale-bound`).
//!
//! The catalogue with per-lint rationale lives in [`lints::CATALOGUE`];
//! `vsched lint` is the CLI frontend and DESIGN.md §12 the narrative
//! documentation.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod fixtures;
pub mod incidence;
pub mod lints;
pub mod matrix;
pub mod model_pass;
pub mod policy_pass;
pub mod ratio;
pub mod verify_pass;

pub use lints::{Certificate, Diagnostic, LintDef, LintReport, Severity, CATALOGUE};
pub use model_pass::{analyze_model, semiflow_bounds};
pub use policy_pass::lint_policy;
pub use verify_pass::{
    cross_check, replay_trace, verify_model, Counterexample, StateRotation, TraceStep, VerifyHooks,
    VerifyOpts, VerifyOutcome, VerifyReport,
};

use vsched_core::san_model::{build_analysis_model, expected_invariants};
use vsched_core::{CoreError, PolicyKind, SystemConfig};

use lints::INVALID_POLICY_PARAMS;

/// Exploration and probing budget of one lint run.
#[derive(Debug, Clone)]
pub struct AnalyzeOpts {
    /// Independent random walks from the initial marking.
    pub walks: usize,
    /// Maximum firings per walk.
    pub steps: usize,
    /// Seed for every walk and probe (reports are deterministic per seed).
    pub seed: u64,
    /// Total instantaneous commutation probes across all walks.
    pub commutation_probes: usize,
    /// Visited markings at which declared read-sets are cross-checked by
    /// perturbation (`stale-read-set`): every place outside an activity's
    /// declared enablement read-set is nudged ±1 and the activity's
    /// `enabled()` / rate multiplier must not move.
    pub read_set_probes: usize,
    /// Whether to run the full budget and emit coverage lints
    /// (`never-enabled`) that are meaningless under a small budget.
    pub thorough: bool,
}

impl Default for AnalyzeOpts {
    fn default() -> Self {
        AnalyzeOpts {
            walks: 8,
            steps: 400,
            seed: 0x5EED,
            commutation_probes: 64,
            read_set_probes: 16,
            thorough: true,
        }
    }
}

impl AnalyzeOpts {
    /// The small budget used as a pre-simulation gate inside fuzz loops:
    /// a fraction of the default walk budget and no coverage lints.
    #[must_use]
    pub fn quick() -> Self {
        AnalyzeOpts {
            walks: 2,
            steps: 120,
            commutation_probes: 8,
            read_set_probes: 2,
            thorough: false,
            ..AnalyzeOpts::default()
        }
    }
}

/// Lints one `(config, policy)` pair: parameter validation, the structural
/// model pass over the compiled paper model (with its declared invariants
/// as certificates), and the policy contract pass.
///
/// Invalid policy parameters short-circuit — the report carries an
/// `invalid-policy-params` finding and no model pass runs, because the
/// policy constructor is allowed to panic on them.
///
/// # Errors
///
/// [`CoreError::San`] if the model itself cannot be built.
pub fn lint_config(
    target: &str,
    config: &SystemConfig,
    kind: &PolicyKind,
    opts: &AnalyzeOpts,
) -> Result<LintReport, CoreError> {
    if let Err(e) = kind.validate() {
        let mut report = LintReport {
            target: target.to_string(),
            ..LintReport::default()
        };
        report.diagnostics.push(Diagnostic::new(
            INVALID_POLICY_PARAMS,
            kind.label(),
            e.to_string(),
        ));
        return Ok(report);
    }
    let mut analysis = build_analysis_model(config, kind.create())?;
    let expected = expected_invariants(config, &analysis.layout);
    let probe = analysis.error_probe();
    let hook = move || probe().map(|e| e.to_string());
    let mut report = analyze_model(target, &mut analysis.model, &expected, Some(&hook), opts);
    report.diagnostics.extend(lint_policy(kind));
    Ok(report)
}

/// Lints the deliberately broken fixture ([`fixtures::broken_model`]) —
/// the target behind `vsched lint --fixture broken` and the golden
/// diagnostics test.
#[must_use]
pub fn lint_broken_fixture(opts: &AnalyzeOpts) -> LintReport {
    let (mut model, expected) = fixtures::broken_model();
    analyze_model("fixture:broken", &mut model, &expected, None, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_config() -> SystemConfig {
        SystemConfig::builder()
            .pcpus(4)
            .vm(2)
            .vm(4)
            .build()
            .expect("valid paper config")
    }

    /// The acceptance gate of the whole crate: the paper model's expected
    /// conservation invariants all PASS and the report carries zero
    /// Error-severity findings, for each of the paper's three policies.
    #[test]
    fn paper_model_certificates_pass_with_zero_errors() {
        for kind in PolicyKind::paper_trio() {
            let report = lint_config("paper", &paper_config(), &kind, &AnalyzeOpts::default())
                .expect("paper model builds");
            assert!(
                report.certificates.iter().all(|c| c.passed),
                "{kind}: failed certificates: {:?}",
                report
                    .certificates
                    .iter()
                    .filter(|c| !c.passed)
                    .map(|c| format!("{}: {}", c.name, c.detail))
                    .collect::<Vec<_>>()
            );
            assert_eq!(
                report.error_count(),
                0,
                "{kind}: {:?}",
                report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .map(|d| format!("{}[{}]: {}", d.lint, d.subject, d.message))
                    .collect::<Vec<_>>()
            );
            // Every certificate the issue names is present.
            for name in ["total-vcpus", "total-pcpus", "tick-tokens"] {
                assert!(
                    report.certificates.iter().any(|c| c.name == name),
                    "{kind}: missing certificate {name}"
                );
            }
            assert!(report
                .certificates
                .iter()
                .any(|c| c.name.starts_with("vm0-")));
        }
    }

    /// The full exploration budget reaches every activity of the paper
    /// model, so `never-enabled` stays quiet on a sound model.
    #[test]
    fn paper_model_has_no_never_enabled_warnings() {
        let report = lint_config(
            "paper",
            &paper_config(),
            &PolicyKind::RoundRobin,
            &AnalyzeOpts::default(),
        )
        .expect("paper model builds");
        assert!(
            !report.diagnostics.iter().any(|d| d.lint == "never-enabled"),
            "{:?}",
            report
                .diagnostics
                .iter()
                .map(|d| format!("{}[{}]", d.lint, d.subject))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn broken_fixture_produces_pinned_diagnostics() {
        let report = lint_broken_fixture(&AnalyzeOpts::default());
        let lints: Vec<&str> = report.diagnostics.iter().map(|d| d.lint).collect();
        assert!(lints.contains(&"dead-activity"), "{lints:?}");
        assert!(lints.contains(&"nonconserving-gate"), "{lints:?}");
        assert!(report.denied(false));
        let cert = &report.certificates[0];
        assert_eq!(cert.name, "token-conservation");
        assert!(!cert.passed);
    }

    /// The planted stale declaration is caught at the very first probed
    /// marking (the initial one), and the finding is deny-worthy.
    #[test]
    fn stale_read_set_is_flagged() {
        let mut model = fixtures::stale_read_set_model();
        let report = analyze_model(
            "fixture:stale",
            &mut model,
            &[],
            None,
            &AnalyzeOpts::default(),
        );
        let finding = report
            .diagnostics
            .iter()
            .find(|d| d.lint == "stale-read-set")
            .expect("stale read-set detected");
        assert_eq!(finding.severity, Severity::Error);
        assert_eq!(finding.subject, "burn");
        assert!(finding.message.contains("lever"), "{}", finding.message);
        assert!(report.denied(false));
    }

    /// The planted write-set lie (see
    /// [`fixtures::stale_write_set_model`]) is rejected: the walk observes
    /// `liar` changing `acc_a`, which its declaration omits.
    #[test]
    fn stale_write_set_is_flagged() {
        let mut model = fixtures::stale_write_set_model();
        let report = analyze_model(
            "fixture:stale-write",
            &mut model,
            &[],
            None,
            &AnalyzeOpts::default(),
        );
        let finding = report
            .diagnostics
            .iter()
            .find(|d| d.lint == "stale-write-set")
            .expect("stale write-set detected");
        assert_eq!(finding.severity, Severity::Error);
        assert_eq!(finding.subject, "liar");
        assert!(finding.message.contains("acc_a"), "{}", finding.message);
        assert!(report.denied(false));
    }

    /// The paper model's shard plan is consistent with its *observed*
    /// incidence matrix: every place a shard's activities were seen to
    /// touch is owned by that shard, which makes the per-shard footprints
    /// pairwise disjoint — the property the parallel batch protocol rests
    /// on.
    #[test]
    fn paper_model_shards_are_disjoint_in_the_incidence_matrix() {
        let am = build_analysis_model(&paper_config(), PolicyKind::RoundRobin.create())
            .expect("paper model builds");
        let mut model = am.model;
        let plan = vsched_san::ShardPlan::derive(&model);
        assert!(plan.num_shards() >= 2, "paper model shards per VM");
        let exp = incidence::explore(&mut model, &[], &AnalyzeOpts::default());
        let mut touched: Vec<std::collections::BTreeSet<usize>> =
            vec![std::collections::BTreeSet::new(); plan.num_shards()];
        for col in &exp.columns {
            let Some(shard) = plan.activity_shard(col.activity) else {
                continue;
            };
            for (p, &d) in col.delta.iter().enumerate() {
                if d != 0 {
                    touched[shard].insert(p);
                }
            }
        }
        for (shard, places) in touched.iter().enumerate() {
            assert!(
                !places.is_empty(),
                "shard {shard} was never observed firing"
            );
            for &p in places {
                assert_eq!(
                    plan.place_shard(vsched_san::PlaceId::from_index(p)),
                    Some(shard),
                    "place {p} touched by shard {shard} but owned elsewhere"
                );
            }
        }
        for i in 0..touched.len() {
            for j in i + 1..touched.len() {
                assert!(
                    touched[i].is_disjoint(&touched[j]),
                    "shards {i} and {j} overlap: {:?}",
                    touched[i].intersection(&touched[j]).collect::<Vec<_>>()
                );
            }
        }
    }

    /// With the probe budget zeroed, the stale declaration goes unseen —
    /// pins that the check is what finds it (and what `quick()` pays for).
    #[test]
    fn zero_probe_budget_skips_the_read_set_check() {
        let mut model = fixtures::stale_read_set_model();
        let opts = AnalyzeOpts {
            read_set_probes: 0,
            ..AnalyzeOpts::default()
        };
        let report = analyze_model("fixture:stale", &mut model, &[], None, &opts);
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.lint == "stale-read-set"));
    }

    #[test]
    fn invalid_policy_params_short_circuit() {
        let kind = PolicyKind::RelaxedCo {
            skew_threshold: 0,
            skew_resume: 0,
        };
        let report = lint_config("bad", &paper_config(), &kind, &AnalyzeOpts::quick())
            .expect("returns a report, not an error");
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].lint, "invalid-policy-params");
        assert!(report.denied(false));
    }

    #[test]
    fn reports_are_deterministic_per_seed() {
        let a = lint_broken_fixture(&AnalyzeOpts::default());
        let b = lint_broken_fixture(&AnalyzeOpts::default());
        assert_eq!(
            serde_json::to_string(&a.to_json()).unwrap(),
            serde_json::to_string(&b.to_json()).unwrap()
        );
    }
}
