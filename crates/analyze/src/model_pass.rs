//! The structural model pass: invariants, certificates, and model lints.
//!
//! Orchestrates one lint run over a built SAN model:
//!
//! 1. bounded exploration extracts the incidence columns
//!    ([`crate::incidence`]);
//! 2. exact rational elimination computes the P- and T-invariant bases
//!    and renders small conservation laws;
//! 3. declared invariants become named certificates — linear ones checked
//!    against every column, relations checked during exploration;
//! 4. Farkas semiflows yield place bounds and hence `dead-activity`;
//! 5. coverage data yields `never-enabled` and `unreachable-case`.

use vsched_core::san_model::{InvariantKind, ModelInvariant};
use vsched_san::Model;

use crate::incidence::{explore, Column};
use crate::lints::{
    Certificate, Diagnostic, LintReport, DEAD_ACTIVITY, NEVER_ENABLED, NONCONSERVING_GATE,
    POLICY_HALT, UNREACHABLE_CASE,
};
use crate::matrix::{dot, integer_nullspace, nonnegative_semiflows};
use crate::AnalyzeOpts;

/// Farkas intermediate-row cap: far above what the models here need, low
/// enough to bound a pathological net.
const FARKAS_MAX_ROWS: usize = 4096;

/// Runs the full structural pass over `model` and returns the report.
///
/// `expected` are the model's declared invariants (certificates);
/// `error_hook` is polled once after exploration for an error the model
/// recorded internally (the paper model's policy-violation cell).
pub fn analyze_model(
    target: &str,
    model: &mut Model,
    expected: &[ModelInvariant],
    error_hook: Option<&dyn Fn() -> Option<String>>,
    opts: &AnalyzeOpts,
) -> LintReport {
    let mut exploration = explore(model, expected, opts);
    let mut diagnostics = std::mem::take(&mut exploration.diagnostics);

    if let Some(hook) = error_hook {
        if let Some(msg) = hook() {
            diagnostics.push(Diagnostic::new(
                POLICY_HALT,
                "Scheduling_Func",
                format!("the model halted on a policy violation during exploration: {msg}"),
            ));
        }
    }

    let num_places = model.num_places();

    // P-invariants: y with y·delta = 0 for every column — the left
    // nullspace, so the columns are the rows of the eliminated system.
    let p_rows: Vec<Vec<i64>> = exploration
        .columns
        .iter()
        .map(|c| c.delta.clone())
        .collect();
    let p_basis = integer_nullspace(&p_rows, num_places);

    // T-invariants: x with C·x = 0 — one row per place over the columns.
    // Computed over the exact columns only; observed columns are samples
    // of a gate's behavior, not firable units.
    let t_rows: Vec<Vec<i64>> = (0..num_places)
        .map(|p| {
            exploration
                .columns
                .iter()
                .filter(|c| c.exact)
                .map(|c| c.delta[p])
                .collect()
        })
        .collect();
    let t_basis = integer_nullspace(&t_rows, exploration.linear_columns);

    let conservation_laws = render_laws(model, &p_basis);

    // Declared invariants → certificates (+ nonconserving-gate findings).
    let mut certificates = Vec::new();
    for (i, inv) in expected.iter().enumerate() {
        match &inv.kind {
            InvariantKind::Relation(_) => {
                let failure = &exploration.relation_failures[i];
                certificates.push(Certificate {
                    name: inv.name.clone(),
                    description: inv.description.clone(),
                    passed: failure.is_none(),
                    detail: failure
                        .as_ref()
                        .map(|(subject, detail)| format!("after `{subject}`: {detail}"))
                        .unwrap_or_default(),
                });
            }
            InvariantKind::Linear(terms) => {
                let mut y = vec![0i64; num_places];
                for &(p, w) in terms {
                    y[p.index()] = w;
                }
                let offenders: Vec<&Column> = exploration
                    .columns
                    .iter()
                    .filter(|c| dot(&y, &c.delta) != 0)
                    .collect();
                let mut flagged: Vec<usize> = Vec::new();
                for col in &offenders {
                    if flagged.contains(&col.activity.index()) {
                        continue;
                    }
                    flagged.push(col.activity.index());
                    diagnostics.push(Diagnostic::new(
                        NONCONSERVING_GATE,
                        model.activity(col.activity).name(),
                        format!(
                            "column `{}` changes the declared conserved sum `{}` by {}",
                            col.label,
                            inv.name,
                            dot(&y, &col.delta)
                        ),
                    ));
                }
                certificates.push(Certificate {
                    name: inv.name.clone(),
                    description: inv.description.clone(),
                    passed: offenders.is_empty(),
                    detail: if offenders.is_empty() {
                        String::new()
                    } else {
                        format!(
                            "violated by {}",
                            offenders
                                .iter()
                                .map(|c| c.label.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    },
                });
            }
        }
    }

    // Farkas semiflows → sound place bounds → structurally dead activities.
    // A truncated semiflow set only loses bounds, so every violation found
    // remains valid.
    let all_columns: Vec<Vec<i64>> = exploration
        .columns
        .iter()
        .map(|c| c.delta.clone())
        .collect();
    let bound = semiflow_bounds(&all_columns, model.initial_marking().as_slice(), num_places);
    let mut dead: Vec<bool> = vec![false; model.num_activities()];
    for (id, spec) in model.activities() {
        for &(p, w) in spec.input_arcs() {
            if let Some(b) = bound[p.index()] {
                if w > b {
                    dead[id.index()] = true;
                    diagnostics.push(Diagnostic::new(
                        DEAD_ACTIVITY,
                        spec.name(),
                        format!(
                            "input arc from `{}` demands {w} tokens, but a non-negative \
                             P-semiflow bounds that place to at most {b} in any reachable \
                             marking",
                            model.place_name(p)
                        ),
                    ));
                    break;
                }
            }
        }
    }

    // Case coverage of fired activities.
    for (id, spec) in model.activities() {
        if !exploration.fired_ever[id.index()] || spec.num_cases() < 2 {
            continue;
        }
        for case in 0..spec.num_cases() {
            if !exploration.case_seen[id.index()][case] {
                let weight_note = spec
                    .fixed_case_weights()
                    .map(|w| format!(" (fixed weight {})", w[case]))
                    .unwrap_or_default();
                diagnostics.push(Diagnostic::new(
                    UNREACHABLE_CASE,
                    spec.name(),
                    format!("case {case}{weight_note} was never selected during exploration"),
                ));
            }
        }
    }

    // Enablement coverage — only meaningful at the full exploration budget,
    // and subsumed by dead-activity where that already fired.
    if opts.thorough {
        for (id, spec) in model.activities() {
            if !exploration.enabled_ever[id.index()] && !dead[id.index()] {
                diagnostics.push(Diagnostic::new(
                    NEVER_ENABLED,
                    spec.name(),
                    format!(
                        "never enabled in {} markings across {} walks",
                        exploration.markings_visited, opts.walks
                    ),
                ));
            }
        }
    }

    LintReport {
        target: target.to_string(),
        places: num_places,
        activities: model.num_activities(),
        linear_columns: exploration.linear_columns,
        probed_columns: exploration.probed_columns,
        p_invariant_dim: p_basis.len(),
        t_invariant_dim: t_basis.len(),
        conservation_laws,
        certificates,
        diagnostics,
    }
}

/// Structural per-place bounds from non-negative P-semiflows: for each
/// semiflow `y`, the conserved budget `y·m0` caps every place `p` with
/// `y[p] > 0` at `budget / y[p]`. Places no semiflow covers are unbounded
/// (`None`). The bounds are sound with respect to the supplied columns —
/// the verify pass cross-checks them against exact reachability
/// ([`crate::verify_pass::cross_check`]).
#[must_use]
pub fn semiflow_bounds(
    columns: &[Vec<i64>],
    initial_marking: &[i64],
    num_places: usize,
) -> Vec<Option<i64>> {
    let (semiflows, _truncated) = nonnegative_semiflows(columns, num_places, FARKAS_MAX_ROWS);
    let mut bound: Vec<Option<i64>> = vec![None; num_places];
    for y in &semiflows {
        let budget: i64 = y.iter().zip(initial_marking).map(|(&w, &t)| w * t).sum();
        for (p, &w) in y.iter().enumerate() {
            if w > 0 {
                let b = budget / w;
                bound[p] = Some(bound[p].map_or(b, |prev: i64| prev.min(b)));
            }
        }
    }
    bound
}

/// Renders the small members of the P-invariant basis as human-readable
/// conservation laws, capped to keep reports bounded.
fn render_laws(model: &Model, basis: &[Vec<i64>]) -> Vec<String> {
    const MAX_TERMS: usize = 6;
    const MAX_LAWS: usize = 8;
    let mut out = Vec::new();
    for y in basis {
        let terms: Vec<(usize, i64)> = y
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w != 0)
            .map(|(p, &w)| (p, w))
            .collect();
        if terms.is_empty() || terms.len() > MAX_TERMS {
            continue;
        }
        let mut s = String::new();
        for (i, (p, w)) in terms.iter().enumerate() {
            let name = model.place_name(vsched_san::PlaceId::from_index(*p));
            if i == 0 {
                if *w == 1 {
                    s.push_str(name);
                } else {
                    s.push_str(&format!("{w}·{name}"));
                }
            } else if *w >= 0 {
                if *w == 1 {
                    s.push_str(&format!(" + {name}"));
                } else {
                    s.push_str(&format!(" + {w}·{name}"));
                }
            } else if *w == -1 {
                s.push_str(&format!(" - {name}"));
            } else {
                s.push_str(&format!(" - {}·{name}", -w));
            }
        }
        s.push_str(" is conserved");
        out.push(s);
        if out.len() >= MAX_LAWS {
            break;
        }
    }
    out
}
