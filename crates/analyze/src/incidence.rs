//! Incidence-matrix extraction by bounded concrete exploration.
//!
//! The incidence matrix of a SAN has one column per way an activity can
//! change the marking. For a **linear** activity (no gate functions, fixed
//! case weights) each case's column is known exactly from its arcs. A
//! **gated** activity hides part of its marking change inside `FnMut`
//! closures, so its columns are *observed*: random walks from the initial
//! marking fire enabled activities under the engine's priority rules and
//! record every distinct marking delta the activity produces. Observed
//! columns make downstream conclusions sound with respect to the explored
//! behavior rather than all behavior — the model pass says so where it
//! matters.
//!
//! The walks double as the checking engine for declared relation
//! invariants (every visited marking) and as the driver for instantaneous
//! commutation probes (same-priority pairs fired in both orders on cloned
//! markings with identical RNG streams).

use std::collections::HashSet;

use vsched_core::san_model::{InvariantKind, ModelInvariant};
use vsched_des::Xoshiro256StarStar;
use vsched_san::{ActivityId, Marking, Model};

use crate::lints::{
    Diagnostic, CONFUSED_INSTANTANEOUS, INVALID_CASE_WEIGHTS, NONCONSERVING_GATE, STALE_READ_SET,
    STALE_WRITE_SET,
};
use crate::AnalyzeOpts;

/// One column of the incidence matrix.
#[derive(Debug, Clone)]
pub struct Column {
    /// The activity this column belongs to.
    pub activity: ActivityId,
    /// Display label (`name`, `name#case`, or `name?` for observed).
    pub label: String,
    /// Whether the column is exact (from arcs) or observed (from probing).
    pub exact: bool,
    /// Marking delta per place, indexed by place index.
    pub delta: Vec<i64>,
}

/// Everything the walks learned about the model.
#[derive(Debug)]
pub struct Exploration {
    /// All incidence columns: exact ones first, then observed ones in
    /// discovery order.
    pub columns: Vec<Column>,
    /// Number of exact columns.
    pub linear_columns: usize,
    /// Number of observed columns.
    pub probed_columns: usize,
    /// Per activity: was it ever enabled in a visited marking?
    pub enabled_ever: Vec<bool>,
    /// Per activity: did it ever fire?
    pub fired_ever: Vec<bool>,
    /// Per activity and case: was the case ever selected?
    pub case_seen: Vec<Vec<bool>>,
    /// Per declared invariant: first relation failure, as
    /// `(subject, detail)`. `None` means every check passed.
    pub relation_failures: Vec<Option<(String, String)>>,
    /// Findings raised during exploration (`invalid-case-weights`,
    /// `confused-instantaneous`, relation `nonconserving-gate`).
    pub diagnostics: Vec<Diagnostic>,
    /// Markings visited across all walks (including the initial one).
    pub markings_visited: usize,
    /// Every visited marking, in visit order (duplicates included). The
    /// verify pass compares this against its exhaustive visit set to
    /// cross-check that bounded walks never escape the reachable space it
    /// enumerates.
    pub visited: Vec<Vec<i64>>,
}

/// Runs the bounded exploration. `expected` supplies the relation
/// invariants to check at every visited marking (linear invariants are
/// checked against the columns by the model pass instead).
pub fn explore(model: &mut Model, expected: &[ModelInvariant], opts: &AnalyzeOpts) -> Exploration {
    let num_activities = model.num_activities();
    let num_places = model.num_places();
    let mut exp = Exploration {
        columns: Vec::new(),
        linear_columns: 0,
        probed_columns: 0,
        enabled_ever: vec![false; num_activities],
        fired_ever: vec![false; num_activities],
        case_seen: (0..num_activities)
            .map(|i| vec![false; model.activity(ActivityId::from_index(i)).num_cases()])
            .collect(),
        relation_failures: vec![None; expected.len()],
        diagnostics: Vec::new(),
        markings_visited: 0,
        visited: Vec::new(),
    };

    // Exact columns and static weight checks, straight from the specs.
    for (id, spec) in model.activities() {
        if spec.has_gate_functions() || spec.has_dynamic_case_weights() {
            continue;
        }
        if let Some(w) = spec.fixed_case_weights() {
            let total: f64 = w.iter().sum();
            if w.len() > 1 && !(total > 0.0 && total.is_finite()) {
                exp.diagnostics.push(Diagnostic::new(
                    INVALID_CASE_WEIGHTS,
                    spec.name(),
                    format!("fixed case weights {w:?} have non-positive total {total}"),
                ));
            }
        }
        for case in 0..spec.num_cases() {
            let mut delta = vec![0i64; num_places];
            for &(p, w) in spec.input_arcs() {
                delta[p.index()] -= w;
            }
            for &(p, w) in spec.case_output_arcs(case) {
                delta[p.index()] += w;
            }
            let label = if spec.num_cases() == 1 {
                spec.name().to_string()
            } else {
                format!("{}#{case}", spec.name())
            };
            exp.columns.push(Column {
                activity: id,
                label,
                exact: true,
                delta,
            });
        }
    }
    exp.linear_columns = exp.columns.len();

    let initial = model.initial_marking();
    check_relations(&mut exp, expected, &initial, "initial marking");
    exp.markings_visited += 1;
    exp.visited.push(initial.as_slice().to_vec());

    let mut seen_deltas: Vec<HashSet<Vec<i64>>> = vec![HashSet::new(); num_activities];
    let mut probed_pairs: HashSet<(usize, usize)> = HashSet::new();
    let mut probes_left = opts.commutation_probes;
    let mut weight_failed: Vec<bool> = vec![false; num_activities];
    let mut stale_flagged: Vec<bool> = vec![false; num_activities];
    let mut write_flagged: Vec<bool> = vec![false; num_activities];
    let mut read_probes_left = opts.read_set_probes;
    if read_probes_left > 0 {
        read_probes_left -= 1;
        check_read_sets(model, &initial, &mut exp, &mut stale_flagged);
    }

    for walk in 0..opts.walks {
        let mut rng = Xoshiro256StarStar::seed_from(
            opts.seed ^ (walk as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut marking = initial.clone();
        'walk: for step in 0..opts.steps {
            let (candidates, instantaneous) = frontier(model, &marking, &mut exp.enabled_ever);
            if candidates.is_empty() {
                break; // deadlock or quiescence: the walk is over
            }

            // Commutation probe: two same-priority instantaneous activities
            // fired in both orders on clones, identical RNG streams.
            if instantaneous && candidates.len() >= 2 && probes_left > 0 {
                let a = candidates[pick(&mut rng, candidates.len())];
                let mut b = candidates[pick(&mut rng, candidates.len())];
                if a == b {
                    b = candidates
                        [(candidates.iter().position(|&c| c == a).unwrap() + 1) % candidates.len()];
                }
                let key = (a.min(b), a.max(b));
                if a != b && !probed_pairs.contains(&key) {
                    probed_pairs.insert(key);
                    probes_left -= 1;
                    let probe_seed = opts
                        .seed
                        .wrapping_add((walk as u64) << 32)
                        .wrapping_add(step as u64);
                    if let Some(msg) = commutation_mismatch(model, &marking, a, b, probe_seed) {
                        let names = format!(
                            "{} / {}",
                            model.activity(ActivityId::from_index(a)).name(),
                            model.activity(ActivityId::from_index(b)).name()
                        );
                        exp.diagnostics
                            .push(Diagnostic::new(CONFUSED_INSTANTANEOUS, names, msg));
                    }
                }
            }

            let idx = candidates[pick(&mut rng, candidates.len())];
            let act = ActivityId::from_index(idx);
            let before = marking.clone();
            let Some(case) = model.probe_fire(act, &mut marking, &mut rng) else {
                if !weight_failed[idx] {
                    weight_failed[idx] = true;
                    exp.diagnostics.push(Diagnostic::new(
                        INVALID_CASE_WEIGHTS,
                        model.activity(act).name(),
                        "dynamic case weights returned a non-positive/non-finite total \
                         (or the wrong arity) on a reachable marking"
                            .to_string(),
                    ));
                }
                break 'walk; // the marking absorbed a partial firing
            };
            exp.fired_ever[idx] = true;
            exp.case_seen[idx][case] = true;
            exp.markings_visited += 1;
            exp.visited.push(marking.as_slice().to_vec());

            let spec = model.activity(act);
            if spec.has_gate_functions() || spec.has_dynamic_case_weights() {
                let delta: Vec<i64> = marking
                    .as_slice()
                    .iter()
                    .zip(before.as_slice())
                    .map(|(&after, &b)| after - b)
                    .collect();
                // Write-set cross-check: an observed marking change outside
                // the activity's declared write footprint is a stale
                // declaration (once per activity) — the shard plan built
                // from it would be unsound.
                if !write_flagged[idx] {
                    if let Some(writes) = spec.declared_writes() {
                        let escaped = delta
                            .iter()
                            .enumerate()
                            .find(|&(p, &d)| d != 0 && writes.binary_search(&place_at(p)).is_err());
                        if let Some((p, &d)) = escaped {
                            write_flagged[idx] = true;
                            exp.diagnostics.push(Diagnostic::new(
                                STALE_WRITE_SET,
                                spec.name(),
                                format!(
                                    "a firing changed place `{}` by {d:+}, but the declared \
                                     write-set omits it",
                                    model.place_name(place_at(p))
                                ),
                            ));
                        }
                    }
                }
                if seen_deltas[idx].insert(delta.clone()) {
                    exp.columns.push(Column {
                        activity: act,
                        label: format!("{}?", spec.name()),
                        exact: false,
                        delta,
                    });
                }
            }
            let subject = model.activity(act).name().to_string();
            check_relations(&mut exp, expected, &marking, &subject);

            // Read-set cross-check at a thin sample of visited markings
            // (staggered across walks so the budget is not spent on one
            // walk's opening steps).
            if read_probes_left > 0 && (step + 7 * walk) % 29 == 0 {
                read_probes_left -= 1;
                check_read_sets(model, &marking, &mut exp, &mut stale_flagged);
            }
        }
    }
    exp.probed_columns = exp.columns.len() - exp.linear_columns;
    exp
}

/// The activities eligible to fire next under engine semantics: the
/// highest-priority enabled instantaneous group if any, otherwise all
/// enabled timed activities. Also records enablement for `never-enabled`.
fn frontier(model: &Model, marking: &Marking, enabled_ever: &mut [bool]) -> (Vec<usize>, bool) {
    let mut timed = Vec::new();
    let mut inst: Vec<(i32, usize)> = Vec::new();
    for (id, spec) in model.activities() {
        if !spec.enabled(marking) {
            continue;
        }
        enabled_ever[id.index()] = true;
        match spec.timing().priority() {
            Some(p) => inst.push((p, id.index())),
            None => timed.push(id.index()),
        }
    }
    if let Some(&(top, _)) = inst.iter().max_by_key(|&&(p, _)| p) {
        (
            inst.iter()
                .filter(|&&(p, _)| p == top)
                .map(|&(_, i)| i)
                .collect(),
            true,
        )
    } else {
        (timed, false)
    }
}

/// Fires `a` then `b` and `b` then `a` on clones of `marking`, each order
/// with a fresh RNG seeded from `probe_seed`, and reports how the outcomes
/// differ (`None` if they commute).
fn commutation_mismatch(
    model: &mut Model,
    marking: &Marking,
    a: usize,
    b: usize,
    probe_seed: u64,
) -> Option<String> {
    let fire_both = |model: &mut Model, first: usize, second: usize| -> Option<Marking> {
        let mut m = marking.clone();
        let mut rng = Xoshiro256StarStar::seed_from(probe_seed);
        model.probe_fire(ActivityId::from_index(first), &mut m, &mut rng)?;
        if !model.activity(ActivityId::from_index(second)).enabled(&m) {
            return None; // `first` disabled `second`: a conflict, not confusion
        }
        model.probe_fire(ActivityId::from_index(second), &mut m, &mut rng)?;
        Some(m)
    };
    let ab = fire_both(model, a, b);
    let ba = fire_both(model, b, a);
    match (ab, ba) {
        (Some(m1), Some(m2)) if m1.as_slice() != m2.as_slice() => {
            let diff: Vec<String> = m1
                .as_slice()
                .iter()
                .zip(m2.as_slice())
                .enumerate()
                .filter(|(_, (x, y))| x != y)
                .map(|(i, (x, y))| format!("{}: {x} vs {y}", model.place_name(place_at(i))))
                .take(4)
                .collect();
            Some(format!(
                "firing orders yield different markings ({})",
                diff.join(", ")
            ))
        }
        (Some(_), None) | (None, Some(_)) => {
            Some("one firing order disables the partner activity, the other does not".to_string())
        }
        _ => None,
    }
}

/// Cross-checks every *declared* enablement read-set against the model's
/// actual behavior at `marking`: each place outside the declared set is
/// perturbed by ±1 (never below zero) and the activity's `enabled()`
/// verdict and rate multiplier must not move. A place that does move the
/// verdict is a stale declaration — the incremental reevaluation core
/// would skip a reevaluation the closure needs — and is reported as
/// `stale-read-set` (once per activity). Activities without a declared
/// read-set are on the simulator's conservative always-revisit list and
/// have nothing to cross-check.
fn check_read_sets(model: &Model, marking: &Marking, exp: &mut Exploration, flagged: &mut [bool]) {
    let mut scratch = marking.clone();
    for (id, spec) in model.activities() {
        if flagged[id.index()] {
            continue;
        }
        let Some(reads) = spec.enablement_reads() else {
            continue;
        };
        let base_enabled = spec.enabled(marking);
        let base_rate = spec.rate_multiplier(marking);
        'places: for p in 0..model.num_places() {
            let place = place_at(p);
            if reads.binary_search(&place).is_ok() {
                continue;
            }
            let original = scratch.tokens(place);
            for delta in [1i64, -1] {
                let perturbed = original + delta;
                if perturbed < 0 {
                    continue;
                }
                scratch.set(place, perturbed);
                let moved = spec.enabled(&scratch) != base_enabled
                    || spec.rate_multiplier(&scratch).to_bits() != base_rate.to_bits();
                scratch.set(place, original);
                if moved {
                    flagged[id.index()] = true;
                    exp.diagnostics.push(Diagnostic::new(
                        STALE_READ_SET,
                        spec.name(),
                        format!(
                            "enablement depends on place `{}` (perturbing {original} -> \
                             {perturbed} flips enabled()/rate), but the declared read-set \
                             omits it",
                            model.place_name(place)
                        ),
                    ));
                    break 'places;
                }
            }
        }
    }
}

/// Rebuilds a `PlaceId` from a raw marking index (diagnostics only).
fn place_at(index: usize) -> vsched_san::PlaceId {
    // PlaceId's constructor is crate-private; go through the public
    // index-preserving route.
    vsched_san::PlaceId::from_index(index)
}

/// Checks every declared relation invariant on `marking`, recording the
/// first failure per invariant and a `nonconserving-gate` finding.
fn check_relations(
    exp: &mut Exploration,
    expected: &[ModelInvariant],
    marking: &Marking,
    subject: &str,
) {
    for (i, inv) in expected.iter().enumerate() {
        if exp.relation_failures[i].is_some() {
            continue;
        }
        if let InvariantKind::Relation(check) = &inv.kind {
            if let Err(detail) = check(marking) {
                exp.relation_failures[i] = Some((subject.to_string(), detail.clone()));
                exp.diagnostics.push(Diagnostic::new(
                    NONCONSERVING_GATE,
                    subject,
                    format!("invariant `{}` violated: {detail}", inv.name),
                ));
            }
        }
    }
}

/// Uniform index in `0..len` from one RNG draw.
fn pick(rng: &mut Xoshiro256StarStar, len: usize) -> usize {
    debug_assert!(len > 0);
    ((rng.next_f64() * len as f64) as usize).min(len - 1)
}
