//! The policy lint pass: static contracts of `vsched_core::sched` policies.
//!
//! Policies are opaque `schedule()` implementations, so their contracts are
//! checked by driving them through a small deterministic synthetic suite —
//! three fixed topologies, forty ticks each, with plain job dynamics — and
//! observing the decision trace:
//!
//! * every decision must pass [`validate_decision`] (`invalid-decision`);
//! * the policy must assign at least once somewhere in the suite
//!   (`inert-policy`) — schedulable VCPUs and idle PCPUs exist every tick;
//! * the decision trace must be **insensitive** to every [`VcpuView`]
//!   payload field the policy does not declare in its snapshot view
//!   (`undeclared-field-read`): the suite is replayed with that one field
//!   perturbed in the views handed to the policy — the true state and its
//!   dynamics are identical — and any trace divergence proves a read.
//!
//! Parameter-range validation (`invalid-policy-params`) happens before a
//! policy object exists and therefore lives in [`crate::lint_config`], not
//! here.

use vsched_core::sched::{validate_decision, PolicyKind, ScheduleDecision};
use vsched_core::{PcpuView, VcpuId, VcpuStatus, VcpuView};

use crate::lints::{Diagnostic, INERT_POLICY, INVALID_DECISION, UNDECLARED_FIELD_READ};

/// The fixed topologies of the probe suite: `(pcpus, vm sizes)`.
const TOPOLOGIES: &[(usize, &[usize])] = &[(2, &[2]), (4, &[2, 4]), (2, &[1, 1, 1])];
/// Ticks simulated per topology.
const TICKS: u64 = 40;
/// Timeslice handed to the policy as `default_timeslice`.
const TIMESLICE: u64 = 5;

/// The declarable payload fields, in perturbation order.
const FIELDS: &[&str] = &[
    "remaining_load",
    "sync_point",
    "timeslice_remaining",
    "last_scheduled_in",
    "vm_weight",
];

/// Lints one policy kind. The caller has already validated the kind's
/// parameters ([`PolicyKind::validate`]); this pass instantiates fresh
/// policy objects — one per replay, so internal state never leaks between
/// runs.
#[must_use]
pub fn lint_policy(kind: &PolicyKind) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    let name = kind.create().name().to_string();

    let baseline = run_suite(kind, None);
    if let Some((topology, tick, reason)) = &baseline.violation {
        diagnostics.push(Diagnostic::new(
            INVALID_DECISION,
            &name,
            format!("topology {topology}, tick {tick}: {reason}"),
        ));
    }
    if baseline.assignments == 0 {
        diagnostics.push(Diagnostic::new(
            INERT_POLICY,
            &name,
            format!(
                "no assignment in {} ticks across {} topologies with idle PCPUs \
                 and schedulable VCPUs available",
                TICKS,
                TOPOLOGIES.len()
            ),
        ));
    }

    let declared = kind.create().snapshot_view();
    let declared_names = declared.declared();
    for &field in FIELDS {
        if declared_names.contains(&field) {
            continue;
        }
        let perturbed = run_suite(kind, Some(field));
        if perturbed.trace != baseline.trace {
            diagnostics.push(Diagnostic::new(
                UNDECLARED_FIELD_READ,
                &name,
                format!(
                    "decision trace changes when `{field}` is perturbed, but the \
                     policy's snapshot view declares only [{}]",
                    declared_names.join(", ")
                ),
            ));
        }
    }
    diagnostics
}

/// Outcome of one run of the full suite.
struct SuiteRun {
    /// Every decision, in (topology, tick) order.
    trace: Vec<ScheduleDecision>,
    /// Total assignments made.
    assignments: usize,
    /// First decision-invariant violation: `(topology, tick, reason)`.
    violation: Option<(usize, u64, String)>,
}

/// Runs every topology for [`TICKS`] ticks with a fresh policy instance,
/// optionally perturbing one payload field in the views handed to the
/// policy (the true state always evolves unperturbed).
fn run_suite(kind: &PolicyKind, perturb: Option<&str>) -> SuiteRun {
    let mut run = SuiteRun {
        trace: Vec::new(),
        assignments: 0,
        violation: None,
    };
    for (topology, &(num_pcpus, vm_sizes)) in TOPOLOGIES.iter().enumerate() {
        let mut policy = kind.create();
        let mut vcpus = initial_vcpus(vm_sizes);
        let mut pcpus: Vec<PcpuView> = (0..num_pcpus)
            .map(|id| PcpuView { id, assigned: None })
            .collect();
        for tick in 0..TICKS {
            let handed: Vec<VcpuView> = vcpus.iter().map(|v| perturb_view(*v, perturb)).collect();
            let decision = policy.schedule(&handed, &pcpus, tick, TIMESLICE);
            if let Err(e) = validate_decision(policy.name(), &vcpus, &pcpus, &decision) {
                if run.violation.is_none() {
                    run.violation = Some((topology, tick, e.to_string()));
                }
                run.trace.push(decision);
                break; // the state can't absorb an invalid decision
            }
            run.assignments += decision.assignments.len();
            apply(&mut vcpus, &mut pcpus, &decision, tick);
            advance(&mut vcpus, &mut pcpus, tick);
            run.trace.push(decision);
        }
    }
    run
}

/// All-INACTIVE views with varied initial loads and per-VM weights.
fn initial_vcpus(vm_sizes: &[usize]) -> Vec<VcpuView> {
    let mut vcpus = Vec::new();
    for (vm, &n) in vm_sizes.iter().enumerate() {
        for sibling in 0..n {
            let global = vcpus.len();
            vcpus.push(VcpuView {
                id: VcpuId {
                    vm,
                    sibling,
                    global,
                },
                status: VcpuStatus::Inactive,
                remaining_load: 3 + (global as u64 % 4),
                sync_point: false,
                assigned_pcpu: None,
                timeslice_remaining: 0,
                last_scheduled_in: None,
                vm_weight: vm as u32 + 1,
                present: true,
            });
        }
    }
    vcpus
}

/// Copies a view with one payload field distorted. Structural fields
/// (`id`, `status`, `assigned_pcpu`) are never touched — the schedulable
/// set is identical, so a contract-honoring policy decides identically.
fn perturb_view(mut v: VcpuView, field: Option<&str>) -> VcpuView {
    match field {
        Some("remaining_load") => v.remaining_load += 13,
        Some("sync_point") => v.sync_point = !v.sync_point,
        Some("timeslice_remaining") => v.timeslice_remaining += 5,
        Some("last_scheduled_in") => v.last_scheduled_in = v.last_scheduled_in.map(|t| t + 17),
        Some("vm_weight") => v.vm_weight += 2 * v.id.vm as u32 + 1,
        _ => {}
    }
    v
}

/// Applies a validated decision to the true state.
fn apply(vcpus: &mut [VcpuView], pcpus: &mut [PcpuView], decision: &ScheduleDecision, tick: u64) {
    for &v in &decision.preemptions {
        if let Some(p) = vcpus[v].assigned_pcpu.take() {
            pcpus[p].assigned = None;
        }
        vcpus[v].status = VcpuStatus::Inactive;
        vcpus[v].timeslice_remaining = 0;
    }
    for a in &decision.assignments {
        vcpus[a.vcpu].status = if vcpus[a.vcpu].remaining_load > 0 {
            VcpuStatus::Busy
        } else {
            VcpuStatus::Ready
        };
        vcpus[a.vcpu].assigned_pcpu = Some(a.pcpu);
        vcpus[a.vcpu].timeslice_remaining = a.timeslice;
        vcpus[a.vcpu].last_scheduled_in = Some(tick);
        pcpus[a.pcpu].assigned = Some(vcpus[a.vcpu].id);
    }
}

/// One tick of plain job dynamics: BUSY VCPUs burn load, READY VCPUs pick
/// up a fresh job, timeslices expire into schedule-out.
fn advance(vcpus: &mut [VcpuView], pcpus: &mut [PcpuView], tick: u64) {
    for v in vcpus.iter_mut() {
        if v.assigned_pcpu.is_none() {
            continue;
        }
        if v.status == VcpuStatus::Busy {
            v.remaining_load -= 1;
            if v.remaining_load == 0 {
                v.status = VcpuStatus::Ready;
            }
        } else if v.status == VcpuStatus::Ready {
            v.remaining_load = 2 + (tick % 3);
            v.status = VcpuStatus::Busy;
        }
        v.timeslice_remaining = v.timeslice_remaining.saturating_sub(1);
        if v.timeslice_remaining == 0 {
            if let Some(p) = v.assigned_pcpu.take() {
                pcpus[p].assigned = None;
            }
            v.status = VcpuStatus::Inactive;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every built-in policy must lint clean: valid decisions, at least one
    /// assignment, and no reads outside its declared snapshot view.
    #[test]
    fn builtin_policies_lint_clean() {
        for kind in PolicyKind::all() {
            let diags = lint_policy(&kind);
            assert!(
                diags.is_empty(),
                "{kind}: {:?}",
                diags
                    .iter()
                    .map(|d| format!("{}[{}]: {}", d.lint, d.subject, d.message))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn suite_makes_progress() {
        let run = run_suite(&PolicyKind::RoundRobin, None);
        assert!(run.violation.is_none());
        assert!(run.assignments > 0);
        assert_eq!(run.trace.len(), TOPOLOGIES.len() * TICKS as usize);
    }
}
