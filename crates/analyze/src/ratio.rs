//! Exact rational arithmetic over `i128`.
//!
//! The invariant computations (Gaussian elimination, Farkas' algorithm)
//! must be exact — floating point would turn "is this sum conserved?" into
//! a tolerance question. Incidence entries are small integers and the nets
//! are small, so `i128` numerators/denominators with eager gcd reduction
//! never come close to overflow in practice; to keep the failure mode loud
//! rather than silent, every operation uses checked arithmetic and panics
//! on overflow.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A reduced rational number `num/den` with `den > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ratio {
    num: i128,
    den: i128,
}

/// Greatest common divisor (non-negative; `gcd(0, 0) = 0`).
#[must_use]
pub fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Ratio {
    /// Zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// One.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Builds `num/den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i128, den: i128) -> Ratio {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        Ratio {
            num: sign * (num / g),
            den: (den / g).abs(),
        }
    }

    /// The integer `n` as a rational.
    #[must_use]
    pub fn from_int(n: i64) -> Ratio {
        Ratio {
            num: i128::from(n),
            den: 1,
        }
    }

    /// Whether this is exactly zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Numerator (reduced form).
    #[must_use]
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (reduced form, always positive).
    #[must_use]
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    #[must_use]
    pub fn recip(&self) -> Ratio {
        Ratio::new(self.den, self.num)
    }
}

fn ck(v: Option<i128>) -> i128 {
    v.expect("rational arithmetic overflowed i128")
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        Ratio::new(
            ck(ck(self.num.checked_mul(rhs.den)).checked_add(ck(rhs.num.checked_mul(self.den)))),
            ck(self.den.checked_mul(rhs.den)),
        )
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Ratio::new(
            ck((self.num / g1).checked_mul(rhs.num / g2)),
            ck((self.den / g2).checked_mul(rhs.den / g1)),
        )
    }
}

impl Div for Ratio {
    type Output = Ratio;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a·(1/b), exactly
    fn div(self, rhs: Ratio) -> Ratio {
        self * rhs.recip()
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_and_sign() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(1, -2), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(-1, -2), Ratio::new(1, 2));
        assert_eq!(Ratio::new(0, 5), Ratio::ZERO);
    }

    #[test]
    fn field_operations() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 6);
        assert_eq!(a + b, Ratio::new(1, 2));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 18));
        assert_eq!(a / b, Ratio::from_int(2));
        assert_eq!(-a, Ratio::new(-1, 3));
        assert_eq!(a.recip(), Ratio::from_int(3));
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::from_int(7).to_string(), "7");
        assert_eq!(Ratio::new(-3, 4).to_string(), "-3/4");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }
}
