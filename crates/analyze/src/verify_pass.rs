//! Exhaustive-state verification of built SAN models.
//!
//! The walks in [`crate::incidence`] *sample* behavior; this pass
//! enumerates it. From the initial marking it explores every reachable
//! state up to a tick horizon under a **timed abstraction**:
//!
//! * **instantaneous cascades are exhaustive** — at each unstable marking
//!   every activity of the top enabled priority is fired in every order
//!   (the engine's declaration-order tie-break is one interleaving of the
//!   set explored here), every probabilistic case with positive weight is
//!   followed, and every stochastic gate is probed under
//!   [`VerifyOpts::seeds_per_edge`] deterministic RNG streams;
//! * **timed activities are abstracted to enabled-set successors** — each
//!   enabled timed activity contributes one successor branch per
//!   seed/case, ignoring durations; a layer of the search is one timed
//!   firing ("tick" for the paper model, whose only timed activity is the
//!   period-1 `Clock`).
//!
//! States are deduplicated on a canonical key: the flat marking, the
//! embedded policy's [`PolicyState`] encoding, and the checker's auxiliary
//! vector, minimized over the supplied [`StateRotation`] group (VM
//! rotations of the paper model). Every stored state was first reached by
//! a *concrete* firing sequence from its parent, so counterexample traces
//! replay verbatim even when the quotient is active — symmetry only
//! prunes duplicates, it never fabricates representatives.
//!
//! On the explored graph the pass proves, as named certificates:
//! per-edge invariants supplied by [`VerifyHooks::edge_check`] (the
//! runtime checker's seven-invariant catalogue when driven from
//! `vsched-check`), deadlock-freedom (no reachable dead marking before
//! the horizon), exact per-place token bounds, and exact activity
//! liveness (the `never-enabled` heuristic promoted to a verdict).
//! [`cross_check`] compares the exact results against the structural
//! bounds and bounded-walk coverage of [`crate::model_pass`] and raises
//! `stale-bound` where they disagree. A model with unbounded stochastic
//! branching is explored up to the seed budget — for fully deterministic
//! models (the verifier's intended diet) the exploration is exhaustive.

use std::collections::{HashMap, HashSet};

use serde_json::{json, Value};
use vsched_core::sched::PolicyState;
use vsched_des::Xoshiro256StarStar;
use vsched_san::{ActivityId, Marking, Model};

use crate::lints::{Certificate, Diagnostic, STALE_BOUND};

/// Budget and semantics of one verification run.
#[derive(Debug, Clone)]
pub struct VerifyOpts {
    /// Timed layers to explore (clock ticks for the paper model). States
    /// at the horizon are recorded but not expanded.
    pub horizon: u64,
    /// Cap on stored canonical states; exceeding it makes the run
    /// inconclusive rather than silently partial.
    pub max_states: usize,
    /// Whether to quotient the state space by the supplied rotations.
    pub symmetry: bool,
    /// Deterministic RNG streams probed per firing. One suffices for
    /// RNG-free models; more sample stochastic gates more widely.
    pub seeds_per_edge: usize,
    /// Base seed every probe stream is derived from.
    pub seed: u64,
    /// Record every visited marking (rotated images included) in
    /// [`VerifyReport::visited_markings`]. Off by default — the set can
    /// dwarf the canonical store — and used by coverage cross-checks that
    /// compare bounded walks against the exhaustive visit set.
    pub record_markings: bool,
}

impl Default for VerifyOpts {
    fn default() -> Self {
        VerifyOpts {
            horizon: 16,
            max_states: 200_000,
            symmetry: true,
            seeds_per_edge: 1,
            seed: 0x5EED,
            record_markings: false,
        }
    }
}

/// One symmetry of the model, compiled to concrete actions on each state
/// component. The verifier applies all three components together — a
/// rotation must describe the *same* group element on markings, policy
/// snapshots, and the auxiliary vector.
pub struct StateRotation {
    /// The marking permutation (id-valued places already remapped).
    pub apply_marking: MarkingMap,
    /// VCPU shift of the group element (for policy/aux rotation).
    pub vcpu_shift: usize,
    /// VCPU count (modulus of the VCPU action).
    pub num_vcpus: usize,
    /// VM shift of the group element.
    pub vm_shift: usize,
    /// VM count (modulus of the VM action).
    pub num_vms: usize,
}

/// Outcome of an edge or initial-state check: the successor's auxiliary
/// vector, or `(certificate name, detail)` on violation.
pub type CheckOutcome = Result<Vec<u64>, (String, String)>;

/// A compiled marking permutation: input marking in, permuted marking out.
pub type MarkingMap = Box<dyn Fn(&[i64]) -> Vec<i64>>;

/// Restores a policy snapshot before a probe firing; `false` = rejected.
pub type PolicyLoader<'a> = Box<dyn Fn(&PolicyState) -> bool + 'a>;

/// Checks a root state and produces its auxiliary vector.
pub type InitialCheck<'a> = Box<dyn Fn(&[i64]) -> CheckOutcome + 'a>;

/// Callbacks binding the generic search to a concrete model's semantics.
/// All fields default to absent — a bare model is explored for deadlocks,
/// bounds, and liveness only.
#[derive(Default)]
pub struct VerifyHooks<'a> {
    /// Snapshots the embedded policy. Returning `None` (the policy has no
    /// snapshot support) makes the run inconclusive.
    pub save_policy: Option<Box<dyn Fn() -> Option<PolicyState> + 'a>>,
    /// Restores a policy snapshot before a probe firing. Returning `false`
    /// (snapshot rejected) makes the run inconclusive.
    pub load_policy: Option<PolicyLoader<'a>>,
    /// Checks a root state and produces its auxiliary vector.
    pub check_initial: Option<InitialCheck<'a>>,
    /// Checks one stable-to-stable edge: `(dst layer, src marking, dst
    /// marking, src aux)`. The paper bridge resumes the runtime invariant
    /// checker here, proving its catalogue on every reachable edge.
    #[allow(clippy::type_complexity)]
    pub edge_check: Option<Box<dyn Fn(u64, &[i64], &[i64], &[u64]) -> CheckOutcome + 'a>>,
    /// `(name, description)` of each certificate `edge_check` can fail, so
    /// the report lists them as PASS when no counterexample names them.
    pub invariants: Vec<(String, String)>,
    /// Polled when a dead marking is found, to enrich the deadlock detail
    /// (the paper model's policy-violation cell).
    pub probe_error: Option<Box<dyn Fn() -> Option<String> + 'a>>,
}

/// Verdict of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Every certificate holds on the full explored state space.
    Proved,
    /// At least one certificate has a counterexample.
    Violated,
    /// The search was cut short (state cap, unsupported policy snapshot,
    /// invalid case weights); verdicts are not exhaustive.
    Inconclusive,
}

impl VerifyOutcome {
    /// Lowercase name used in text and JSON output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            VerifyOutcome::Proved => "proved",
            VerifyOutcome::Violated => "violated",
            VerifyOutcome::Inconclusive => "inconclusive",
        }
    }
}

/// One firing of a counterexample trace. Traces are concrete: replaying
/// the steps in order from the initial marking with the recorded seeds
/// reproduces the final marking exactly ([`replay_trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Activity index in the model.
    pub activity: usize,
    /// Activity name (cross-checked on replay).
    pub name: String,
    /// Case completed (0 for single-case activities).
    pub case: usize,
    /// Seed of the fresh RNG stream the firing's gates drew from.
    pub seed: u64,
    /// Whether this was a timed firing (a layer boundary).
    pub timed: bool,
    /// Layer the firing belongs to (the layer being entered for timed
    /// steps, the layer being closed for instantaneous ones).
    pub tick: u64,
}

/// A machine-checkable violation witness.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The certificate this witness refutes.
    pub certificate: String,
    /// What broke at the end of the trace.
    pub detail: String,
    /// Concrete firing sequence from the initial marking.
    pub trace: Vec<TraceStep>,
    /// The marking the trace ends in.
    pub final_marking: Vec<i64>,
}

/// The result of one verification run.
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Target name (config/policy label or fixture name).
    pub target: String,
    /// Overall verdict (defaults to inconclusive until the run finishes).
    pub outcome: Option<VerifyOutcome>,
    /// Horizon the run used.
    pub horizon: u64,
    /// Non-trivial rotations the quotient used (0 = symmetry off or none).
    pub rotations_used: usize,
    /// Canonical states stored.
    pub states_stored: usize,
    /// Successor states generated before deduplication.
    pub states_generated: usize,
    /// Markings visited, including instantaneous-cascade transients.
    pub markings_seen: usize,
    /// Per-place maximum token count over every visited marking (cascade
    /// transients included; closed under the rotation group). Exact when
    /// the rotations are reach-set automorphisms; a rotation that only
    /// fixes the net structure — not the coupled policy/dispatch dynamics
    /// — may credit orbit images the concrete dynamics never reach,
    /// making this a sound over-approximation instead.
    pub place_bounds: Vec<i64>,
    /// Exact per-activity liveness: was the activity enabled at any
    /// visited marking (closed under the rotation group)?
    pub enabled_ever: Vec<bool>,
    /// Every visited marking, rotated images included — present only when
    /// [`VerifyOpts::record_markings`] is set. Coverage cross-checks use
    /// this to prove bounded walks visit a subset of the reachable space.
    pub visited_markings: Option<HashSet<Vec<i64>>>,
    /// Named certificates, most specific first.
    pub certificates: Vec<Certificate>,
    /// First counterexample per failed certificate.
    pub counterexamples: Vec<Counterexample>,
    /// Why the run is inconclusive, when it is.
    pub inconclusive: Option<String>,
}

impl VerifyReport {
    /// The verdict, treating an unfinished report as inconclusive.
    #[must_use]
    pub fn outcome(&self) -> VerifyOutcome {
        self.outcome.unwrap_or(VerifyOutcome::Inconclusive)
    }

    /// The report as a JSON value with stable field order.
    #[must_use]
    pub fn to_json(&self, model: &Model) -> Value {
        json!({
            "target": self.target.clone(),
            "outcome": self.outcome().as_str(),
            "horizon": self.horizon,
            "rotations_used": self.rotations_used,
            "states_stored": self.states_stored,
            "states_generated": self.states_generated,
            "markings_seen": self.markings_seen,
            "place_bounds": Value::Seq(
                self.place_bounds
                    .iter()
                    .enumerate()
                    .map(|(p, &b)| {
                        json!({
                            "place": model.place_name(place_at(p)),
                            "bound": b,
                        })
                    })
                    .collect()
            ),
            "never_enabled": Value::Seq(
                self.never_enabled(model)
                    .into_iter()
                    .map(|n| Value::Str(n.to_string()))
                    .collect()
            ),
            "certificates": Value::Seq(
                self.certificates
                    .iter()
                    .map(|c| {
                        json!({
                            "name": c.name.clone(),
                            "description": c.description.clone(),
                            "passed": c.passed,
                            "detail": c.detail.clone(),
                        })
                    })
                    .collect()
            ),
            "counterexamples": Value::Seq(
                self.counterexamples
                    .iter()
                    .map(|cx| {
                        json!({
                            "certificate": cx.certificate.clone(),
                            "detail": cx.detail.clone(),
                            "trace_len": cx.trace.len(),
                        })
                    })
                    .collect()
            ),
            "inconclusive": self.inconclusive.clone(),
        })
    }

    /// Names of activities never enabled at any visited marking — the
    /// exact verdict behind the `never-enabled` heuristic.
    #[must_use]
    pub fn never_enabled<'m>(&self, model: &'m Model) -> Vec<&'m str> {
        self.enabled_ever
            .iter()
            .enumerate()
            .filter(|&(_, &e)| !e)
            .map(|(i, _)| model.activity(ActivityId::from_index(i)).name())
            .collect()
    }

    /// Multi-line human-readable rendering.
    #[must_use]
    pub fn render_text(&self, model: &Model) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "verify {}: {} — {} states stored ({} generated, {} markings seen), \
             horizon {}, {} rotations",
            self.target,
            self.outcome().as_str().to_uppercase(),
            self.states_stored,
            self.states_generated,
            self.markings_seen,
            self.horizon,
            self.rotations_used,
        );
        if let Some(reason) = &self.inconclusive {
            let _ = writeln!(out, "  inconclusive: {reason}");
        }
        for c in &self.certificates {
            let verdict = if c.passed { "PASS" } else { "FAIL" };
            let _ = writeln!(
                out,
                "  certificate {} [{verdict}]: {}",
                c.name, c.description
            );
            if !c.detail.is_empty() {
                let _ = writeln!(out, "    {}", c.detail);
            }
        }
        for cx in &self.counterexamples {
            let _ = writeln!(
                out,
                "  counterexample for {}: {} firings ending at {}",
                cx.certificate,
                cx.trace.len(),
                cx.detail
            );
        }
        let never = self.never_enabled(model);
        if never.is_empty() {
            let _ = writeln!(out, "  liveness: every activity enabled somewhere");
        } else {
            let _ = writeln!(out, "  liveness: never enabled: {}", never.join(", "));
        }
        out
    }
}

/// One stored canonical state with its concrete discovery path.
struct StoredState {
    marking: Vec<i64>,
    policy: Option<PolicyState>,
    aux: Vec<u64>,
    tick: u64,
    /// Parent state index, or `usize::MAX` for roots.
    parent: usize,
    /// Concrete firing sequence from the parent's stable marking.
    steps: Vec<TraceStep>,
}

/// Exploration statistics shared across every visited marking.
struct Stats<'r> {
    bounds: Vec<i64>,
    enabled_ever: Vec<bool>,
    markings_seen: usize,
    rotations: &'r [StateRotation],
    /// Scratch marking for rotated-image enablement probes.
    scratch: Marking,
    /// Visit set (rotated images included), when recording is requested.
    visited: Option<HashSet<Vec<i64>>>,
}

impl Stats<'_> {
    /// Folds one visited marking into the exact place bounds, including
    /// every rotated image (states the quotient never visits concretely).
    fn note_marking(&mut self, m: &[i64]) {
        self.markings_seen += 1;
        for (b, &t) in self.bounds.iter_mut().zip(m) {
            *b = (*b).max(t);
        }
        if let Some(visited) = &mut self.visited {
            visited.insert(m.to_vec());
        }
        for rot in self.rotations {
            let im = (rot.apply_marking)(m);
            for (b, &t) in self.bounds.iter_mut().zip(&im) {
                *b = (*b).max(t);
            }
            if let Some(visited) = &mut self.visited {
                visited.insert(im);
            }
        }
    }

    /// Records enablement at `m`, then closes the verdict under the
    /// rotation group for activities still unseen.
    fn note_enabled(&mut self, model: &Model, m: &Marking) {
        for (id, spec) in model.activities() {
            if !self.enabled_ever[id.index()] && spec.enabled(m) {
                self.enabled_ever[id.index()] = true;
            }
        }
        if self.rotations.is_empty() || self.enabled_ever.iter().all(|&e| e) {
            return;
        }
        for rot in self.rotations {
            let im = (rot.apply_marking)(m.as_slice());
            for (p, &t) in im.iter().enumerate() {
                self.scratch.set(place_at(p), t);
            }
            for (id, spec) in model.activities() {
                if !self.enabled_ever[id.index()] && spec.enabled(&self.scratch) {
                    self.enabled_ever[id.index()] = true;
                }
            }
        }
    }
}

/// An error that aborts the search as inconclusive.
struct Abort(String);

/// Exhaustively explores `model` up to the horizon and proves the
/// certificate catalogue on the result. `rotations` supply the symmetry
/// quotient (pass an empty slice, or set [`VerifyOpts::symmetry`] off, to
/// disable it); hooks bind policy snapshots and per-edge checks.
#[must_use]
pub fn verify_model(
    target: &str,
    model: &Model,
    hooks: &VerifyHooks,
    rotations: &[StateRotation],
    opts: &VerifyOpts,
) -> VerifyReport {
    let num_places = model.num_places();
    let active_rotations: &[StateRotation] = if opts.symmetry { rotations } else { &[] };
    let mut report = VerifyReport {
        target: target.to_string(),
        horizon: opts.horizon,
        rotations_used: active_rotations.len(),
        place_bounds: vec![0; num_places],
        enabled_ever: vec![false; model.num_activities()],
        ..VerifyReport::default()
    };
    let mut stats = Stats {
        bounds: vec![0; num_places],
        enabled_ever: vec![false; model.num_activities()],
        markings_seen: 0,
        rotations: active_rotations,
        scratch: model.initial_marking(),
        visited: opts.record_markings.then(HashSet::new),
    };

    let mut states: Vec<StoredState> = Vec::new();
    let mut canon: HashMap<Vec<i64>, usize> = HashMap::new();
    let mut generated = 0usize;
    // First counterexample per certificate name, in discovery order.
    let mut counterexamples: Vec<Counterexample> = Vec::new();

    let run = (|| -> Result<(), Abort> {
        // Roots: the instantaneous closure of the initial marking.
        let policy0 = save_policy(hooks)?;
        let init = model.initial_marking();
        let roots = cascade(model, hooks, &init, &policy0, 0, opts, &mut stats)?;
        for (m, pol, steps) in roots {
            generated += 1;
            let aux = match hooks.check_initial.as_ref().map(|f| f(&m)) {
                None => Vec::new(),
                Some(Ok(aux)) => aux,
                Some(Err((name, detail))) => {
                    record_counterexample(
                        &mut counterexamples,
                        name,
                        detail,
                        steps.clone(),
                        m.clone(),
                    );
                    continue;
                }
            };
            insert_state(
                &mut states,
                &mut canon,
                StoredState {
                    marking: m,
                    policy: pol,
                    aux,
                    tick: 0,
                    parent: usize::MAX,
                    steps,
                },
                active_rotations,
            );
        }

        // BFS by construction: successors always live one layer deeper, so
        // insertion order is layer order.
        let mut next = 0usize;
        while next < states.len() {
            let id = next;
            next += 1;
            if states[id].tick >= opts.horizon {
                continue;
            }
            if states.len() > opts.max_states {
                return Err(Abort(format!(
                    "state cap exceeded: more than {} canonical states before horizon {}",
                    opts.max_states, opts.horizon
                )));
            }
            let src_marking = states[id].marking.clone();
            let src_policy = states[id].policy.clone();
            let src_aux = states[id].aux.clone();
            let dst_tick = states[id].tick + 1;

            let m = marking_from(model, &src_marking);
            let timed = timed_frontier(model, &m);
            if timed.is_empty() {
                // A stable marking with nothing enabled at all: dead.
                let mut detail = "no activity is enabled — the model can never advance".to_string();
                if let Some(msg) = hooks.probe_error.as_ref().and_then(|f| f()) {
                    detail = format!("{detail} (recorded policy violation: {msg})");
                }
                record_counterexample(
                    &mut counterexamples,
                    "deadlock-freedom".to_string(),
                    detail,
                    trace_to(&states, id),
                    src_marking.clone(),
                );
                continue;
            }

            for act in timed {
                for k in 0..opts.seeds_per_edge.max(1) {
                    let seed = probe_seed(opts.seed, k);
                    let fired = fire_cases(model, hooks, &m, &src_policy, act, seed)?;
                    for (m2, pol2, case) in fired {
                        let step = TraceStep {
                            activity: act.index(),
                            name: model.activity(act).name().to_string(),
                            case,
                            seed,
                            timed: true,
                            tick: dst_tick,
                        };
                        let stable = cascade(model, hooks, &m2, &pol2, dst_tick, opts, &mut stats)?;
                        for (dst, pol_dst, mut steps) in stable {
                            generated += 1;
                            steps.insert(0, step.clone());
                            let aux = match hooks
                                .edge_check
                                .as_ref()
                                .map(|f| f(dst_tick, &src_marking, &dst, &src_aux))
                            {
                                None => Vec::new(),
                                Some(Ok(aux)) => aux,
                                Some(Err((name, detail))) => {
                                    let mut trace = trace_to(&states, id);
                                    trace.extend(steps.clone());
                                    record_counterexample(
                                        &mut counterexamples,
                                        name,
                                        detail,
                                        trace,
                                        dst.clone(),
                                    );
                                    continue;
                                }
                            };
                            insert_state(
                                &mut states,
                                &mut canon,
                                StoredState {
                                    marking: dst,
                                    policy: pol_dst,
                                    aux,
                                    tick: dst_tick,
                                    parent: id,
                                    steps,
                                },
                                active_rotations,
                            );
                        }
                    }
                }
            }
        }
        Ok(())
    })();

    report.states_stored = states.len();
    report.states_generated = generated;
    report.markings_seen = stats.markings_seen;
    report.place_bounds = stats.bounds;
    report.enabled_ever = stats.enabled_ever;
    report.visited_markings = stats.visited;

    let exhaustive = match run {
        Ok(()) => true,
        Err(Abort(reason)) => {
            report.inconclusive = Some(reason);
            false
        }
    };

    // Certificates: the hook-supplied invariant catalogue, then
    // deadlock-freedom, then the exact bounds/liveness verdicts.
    let failed = |name: &str| {
        counterexamples
            .iter()
            .find(|cx| cx.certificate == name)
            .map(|cx| cx.detail.clone())
    };
    for (name, description) in &hooks.invariants {
        let failure = failed(name);
        report.certificates.push(Certificate {
            name: name.clone(),
            description: description.clone(),
            passed: failure.is_none() && exhaustive,
            detail: failure.unwrap_or_else(|| {
                report
                    .inconclusive
                    .as_ref()
                    .map(|r| format!("not proved: {r}"))
                    .unwrap_or_default()
            }),
        });
    }
    let deadlock_failure = failed("deadlock-freedom");
    report.certificates.push(Certificate {
        name: "deadlock-freedom".to_string(),
        description: format!(
            "no reachable dead marking within {} timed layers",
            opts.horizon
        ),
        passed: deadlock_failure.is_none() && exhaustive,
        detail: deadlock_failure.unwrap_or_else(|| {
            report
                .inconclusive
                .as_ref()
                .map(|r| format!("not proved: {r}"))
                .unwrap_or_default()
        }),
    });
    report.certificates.push(Certificate {
        name: "place-bounds".to_string(),
        description: "exact per-place token bounds over every visited marking".to_string(),
        passed: exhaustive,
        detail: if exhaustive {
            String::new()
        } else {
            "bounds cover only the truncated exploration".to_string()
        },
    });
    let never: Vec<&str> = report.never_enabled(model);
    report.certificates.push(Certificate {
        name: "activity-liveness".to_string(),
        description: "exact enablement verdict for every activity".to_string(),
        passed: exhaustive,
        detail: if never.is_empty() {
            "every activity is enabled at some reachable marking".to_string()
        } else {
            format!("exactly never enabled: {}", never.join(", "))
        },
    });

    report.counterexamples = counterexamples;
    report.outcome = Some(if !report.counterexamples.is_empty() {
        VerifyOutcome::Violated
    } else if !exhaustive {
        VerifyOutcome::Inconclusive
    } else {
        VerifyOutcome::Proved
    });
    report
}

/// Cross-checks the exact results against the structural pass: a
/// structural place bound below an exactly reached token count, or a
/// bounded-walk `never-enabled` claim on an activity the exhaustive
/// search did enable, is a stale claim (`stale-bound`, Error).
///
/// The opposite directions are *not* findings: structural bounds may
/// legitimately exceed the horizon-bounded exact maximum, and a walk may
/// visit markings beyond the verifier's horizon.
#[must_use]
pub fn cross_check(
    model: &Model,
    report: &VerifyReport,
    structural_bounds: &[Option<i64>],
    walk_enabled: &[bool],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if report.outcome() == VerifyOutcome::Inconclusive {
        return out; // truncated exact data proves nothing about staleness
    }
    for (p, &exact) in report.place_bounds.iter().enumerate() {
        let Some(Some(claimed)) = structural_bounds.get(p) else {
            continue;
        };
        if exact > *claimed {
            out.push(Diagnostic::new(
                STALE_BOUND,
                model.place_name(place_at(p)).to_string(),
                format!(
                    "exhaustive exploration reached {exact} tokens but the structural \
                     semiflow bound claims at most {claimed} — the structural analysis \
                     (and anything built on it, e.g. dead-activity) is stale"
                ),
            ));
        }
    }
    for (i, &walk) in walk_enabled.iter().enumerate() {
        let exact = report.enabled_ever.get(i).copied().unwrap_or(false);
        if !walk && exact {
            out.push(Diagnostic::new(
                STALE_BOUND,
                model.activity(ActivityId::from_index(i)).name().to_string(),
                "bounded walks never enabled this activity but exhaustive exploration \
                 did — the never-enabled heuristic is stale at this budget"
                    .to_string(),
            ));
        }
    }
    out
}

/// Replays a counterexample trace from the initial marking and returns the
/// final marking. Fails loudly on any divergence: unknown activity, name
/// mismatch, firing while disabled, or a case that is unreachable under
/// the recorded seed.
///
/// The model must be freshly built (embedded policy in its initial state):
/// along one concrete path the policy evolves deterministically from the
/// recorded firings and seeds, so no snapshots are needed.
///
/// # Errors
///
/// A human-readable description of the first divergence.
pub fn replay_trace(model: &Model, trace: &[TraceStep]) -> Result<Vec<i64>, String> {
    let mut m = model.initial_marking();
    for (i, step) in trace.iter().enumerate() {
        if step.activity >= model.num_activities() {
            return Err(format!(
                "step {i}: activity index {} out of range",
                step.activity
            ));
        }
        let act = ActivityId::from_index(step.activity);
        let spec = model.activity(act);
        if spec.name() != step.name {
            return Err(format!(
                "step {i}: activity {} is named `{}`, trace says `{}`",
                step.activity,
                spec.name(),
                step.name
            ));
        }
        if !spec.enabled(&m) {
            return Err(format!(
                "step {i}: `{}` is not enabled at the replayed marking",
                step.name
            ));
        }
        let mut rng = Xoshiro256StarStar::seed_from(step.seed);
        let Some(weights) = model.probe_cases(act, &mut m, &mut rng) else {
            return Err(format!(
                "step {i}: `{}` has invalid case weights",
                step.name
            ));
        };
        if step.case >= weights.len() || weights[step.case] <= 0.0 {
            return Err(format!(
                "step {i}: case {} of `{}` has no positive weight",
                step.case, step.name
            ));
        }
        model.probe_complete_case(act, step.case, &mut m, &mut rng);
    }
    Ok(m.as_slice().to_vec())
}

// ----- Search internals ---------------------------------------------------

/// Explores every maximal instantaneous firing sequence from `m0` and
/// returns the stable markings reached, each with its policy snapshot and
/// concrete firing steps. Interleavings that converge to the same
/// `(marking, policy)` pair are merged on the fly, so commuting cascades
/// stay polynomial.
#[allow(clippy::type_complexity)]
fn cascade(
    model: &Model,
    hooks: &VerifyHooks,
    m0: &Marking,
    pol0: &Option<PolicyState>,
    tick: u64,
    opts: &VerifyOpts,
    stats: &mut Stats,
) -> Result<Vec<(Vec<i64>, Option<PolicyState>, Vec<TraceStep>)>, Abort> {
    let mut stable = Vec::new();
    let mut seen: HashSet<Vec<i64>> = HashSet::new();
    seen.insert(encode(m0.as_slice(), pol0, &[]));
    let mut work: Vec<(Marking, Option<PolicyState>, Vec<TraceStep>)> =
        vec![(m0.clone(), pol0.clone(), Vec::new())];
    while let Some((m, pol, steps)) = work.pop() {
        stats.note_marking(m.as_slice());
        stats.note_enabled(model, &m);
        let inst = instantaneous_frontier(model, &m);
        if inst.is_empty() {
            stable.push((m.as_slice().to_vec(), pol, steps));
            continue;
        }
        if seen.len() > opts.max_states {
            return Err(Abort(format!(
                "instantaneous cascade exceeded {} markings at layer {tick} — \
                 possible zeno loop",
                opts.max_states
            )));
        }
        for act in inst {
            for k in 0..opts.seeds_per_edge.max(1) {
                let seed = probe_seed(opts.seed, k);
                let fired = fire_cases(model, hooks, &m, &pol, act, seed)?;
                for (m2, pol2, case) in fired {
                    if !seen.insert(encode(m2.as_slice(), &pol2, &[])) {
                        continue;
                    }
                    let mut s2 = steps.clone();
                    s2.push(TraceStep {
                        activity: act.index(),
                        name: model.activity(act).name().to_string(),
                        case,
                        seed,
                        timed: false,
                        tick,
                    });
                    work.push((m2, pol2, s2));
                }
            }
        }
    }
    Ok(stable)
}

/// Fires `act` from `(m, pol)` under one seed, following every case with
/// positive weight. Returns `(marking, policy, case)` per branch.
#[allow(clippy::type_complexity)]
fn fire_cases(
    model: &Model,
    hooks: &VerifyHooks,
    m: &Marking,
    pol: &Option<PolicyState>,
    act: ActivityId,
    seed: u64,
) -> Result<Vec<(Marking, Option<PolicyState>, usize)>, Abort> {
    load_policy(hooks, pol)?;
    let mut probe = m.clone();
    let mut rng = Xoshiro256StarStar::seed_from(seed);
    let Some(weights) = model.probe_cases(act, &mut probe, &mut rng) else {
        return Err(Abort(format!(
            "`{}` produced invalid case weights on a reachable marking",
            model.activity(act).name()
        )));
    };
    let mut out = Vec::new();
    for (case, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        load_policy(hooks, pol)?;
        let mut m2 = m.clone();
        let mut rng = Xoshiro256StarStar::seed_from(seed);
        let _ = model.probe_cases(act, &mut m2, &mut rng);
        model.probe_complete_case(act, case, &mut m2, &mut rng);
        let pol2 = save_policy(hooks)?;
        out.push((m2, pol2, case));
    }
    Ok(out)
}

/// Inserts a state under its canonical key; duplicates (including rotated
/// images) are dropped.
fn insert_state(
    states: &mut Vec<StoredState>,
    canon: &mut HashMap<Vec<i64>, usize>,
    state: StoredState,
    rotations: &[StateRotation],
) {
    let key = canonical_key(&state.marking, &state.policy, &state.aux, rotations);
    if let std::collections::hash_map::Entry::Vacant(e) = canon.entry(key) {
        e.insert(states.len());
        states.push(state);
    }
}

/// The lexicographic minimum of the state encoding over the identity and
/// every supplied rotation.
fn canonical_key(
    marking: &[i64],
    policy: &Option<PolicyState>,
    aux: &[u64],
    rotations: &[StateRotation],
) -> Vec<i64> {
    let mut best = encode(marking, policy, aux);
    for rot in rotations {
        let rm = (rot.apply_marking)(marking);
        let rp = policy
            .as_ref()
            .map(|p| p.rotated(rot.vcpu_shift, rot.num_vcpus, rot.vm_shift, rot.num_vms));
        let ra = rotate_aux(aux, rot);
        let cand = encode(&rm, &rp, &ra);
        if cand < best {
            best = cand;
        }
    }
    best
}

/// Rotates a per-VCPU positional auxiliary vector; vectors of any other
/// length are fixed points (nothing positional to move).
fn rotate_aux(aux: &[u64], rot: &StateRotation) -> Vec<u64> {
    if aux.len() != rot.num_vcpus || rot.num_vcpus == 0 {
        return aux.to_vec();
    }
    let mut out = vec![0u64; aux.len()];
    for (g, &v) in aux.iter().enumerate() {
        out[(g + rot.vcpu_shift) % rot.num_vcpus] = v;
    }
    out
}

/// Flat, unambiguous state encoding: marking, policy snapshot, aux — each
/// section length-prefixed.
fn encode(marking: &[i64], policy: &Option<PolicyState>, aux: &[u64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(marking.len() + aux.len() + 8);
    out.extend_from_slice(marking);
    match policy {
        None => out.push(-1),
        Some(p) => {
            out.push(-2);
            p.encode_into(&mut out);
        }
    }
    out.push(aux.len() as i64);
    out.extend(aux.iter().map(|&v| v as i64));
    out
}

/// The enabled instantaneous activities of the top enabled priority, in
/// declaration order (every ordering of this set is explored).
fn instantaneous_frontier(model: &Model, m: &Marking) -> Vec<ActivityId> {
    let mut top: Option<i32> = None;
    let mut out: Vec<ActivityId> = Vec::new();
    for (id, spec) in model.activities() {
        let Some(p) = spec.timing().priority() else {
            continue;
        };
        if !spec.enabled(m) {
            continue;
        }
        match top {
            Some(t) if p < t => {}
            Some(t) if p == t => out.push(id),
            _ => {
                top = Some(p);
                out = vec![id];
            }
        }
    }
    out
}

/// The enabled timed activities (the abstraction's successor branches).
/// Only meaningful at stable markings.
fn timed_frontier(model: &Model, m: &Marking) -> Vec<ActivityId> {
    model
        .activities()
        .filter(|(_, spec)| spec.timing().priority().is_none() && spec.enabled(m))
        .map(|(id, _)| id)
        .collect()
}

/// Rebuilds a full trace from the parent chain.
fn trace_to(states: &[StoredState], id: usize) -> Vec<TraceStep> {
    let mut chain = Vec::new();
    let mut cur = id;
    while cur != usize::MAX {
        chain.push(cur);
        cur = states[cur].parent;
    }
    chain.reverse();
    chain
        .into_iter()
        .flat_map(|i| states[i].steps.iter().cloned())
        .collect()
}

/// Records the first counterexample per certificate name.
fn record_counterexample(
    out: &mut Vec<Counterexample>,
    certificate: String,
    detail: String,
    trace: Vec<TraceStep>,
    final_marking: Vec<i64>,
) {
    if out.iter().any(|cx| cx.certificate == certificate) {
        return;
    }
    out.push(Counterexample {
        certificate,
        detail,
        trace,
        final_marking,
    });
}

/// Saves the embedded policy's state through the hook.
fn save_policy(hooks: &VerifyHooks) -> Result<Option<PolicyState>, Abort> {
    match &hooks.save_policy {
        None => Ok(None),
        Some(f) => f().map(Some).ok_or_else(|| {
            Abort("the policy does not support state snapshots (save_state returned None)".into())
        }),
    }
}

/// Restores a policy snapshot through the hook.
fn load_policy(hooks: &VerifyHooks, pol: &Option<PolicyState>) -> Result<(), Abort> {
    match (&hooks.load_policy, pol) {
        (Some(f), Some(p)) => {
            if f(p) {
                Ok(())
            } else {
                Err(Abort(
                    "the policy rejected one of its own state snapshots".into(),
                ))
            }
        }
        _ => Ok(()),
    }
}

/// Deterministic probe-stream seed `k` (splitmix64 of the base seed).
fn probe_seed(base: u64, k: usize) -> u64 {
    let mut x = base ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Clones the model's initial marking and overwrites it with `tokens`.
fn marking_from(model: &Model, tokens: &[i64]) -> Marking {
    let mut m = model.initial_marking();
    for (p, &t) in tokens.iter().enumerate() {
        m.set(place_at(p), t);
    }
    m
}

/// Rebuilds a `PlaceId` from a raw marking index.
fn place_at(index: usize) -> vsched_san::PlaceId {
    vsched_san::PlaceId::from_index(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsched_san::ModelBuilder;

    /// `pump` moves one token per layer from an infinite well into `acc`.
    fn counter_model() -> Model {
        let mut mb = ModelBuilder::new();
        let src = mb.place("src", 1).unwrap();
        let acc = mb.place("acc", 0).unwrap();
        mb.activity("pump")
            .unwrap()
            .timed(vsched_des::Dist::Deterministic { value: 1.0 })
            .input_arc(src, 1)
            .output_arc(src, 1)
            .output_arc(acc, 1)
            .done()
            .unwrap();
        let _ = acc;
        mb.build().unwrap()
    }

    #[test]
    fn counter_model_is_proved_with_exact_bounds() {
        let model = counter_model();
        let opts = VerifyOpts {
            horizon: 5,
            ..VerifyOpts::default()
        };
        let report = verify_model("counter", &model, &VerifyHooks::default(), &[], &opts);
        assert_eq!(report.outcome(), VerifyOutcome::Proved);
        assert_eq!(report.states_stored, 6, "initial + one per layer");
        assert_eq!(report.place_bounds, vec![1, 5], "src stays 1, acc hits 5");
        assert!(report.never_enabled(&model).is_empty());
        assert!(report.certificates.iter().all(|c| c.passed));
    }

    #[test]
    fn deadlock_is_caught_with_a_replayable_trace() {
        let mut mb = ModelBuilder::new();
        let fuel = mb.place("fuel", 3).unwrap();
        mb.activity("burn")
            .unwrap()
            .timed(vsched_des::Dist::Deterministic { value: 1.0 })
            .input_arc(fuel, 1)
            .done()
            .unwrap();
        let model = mb.build().unwrap();
        let report = verify_model(
            "burnout",
            &model,
            &VerifyHooks::default(),
            &[],
            &VerifyOpts {
                horizon: 10,
                ..VerifyOpts::default()
            },
        );
        assert_eq!(report.outcome(), VerifyOutcome::Violated);
        let cx = report
            .counterexamples
            .iter()
            .find(|cx| cx.certificate == "deadlock-freedom")
            .expect("deadlock counterexample");
        assert_eq!(cx.trace.len(), 3, "three burns empty the tank");
        assert_eq!(cx.final_marking, vec![0]);
        let replayed = replay_trace(&model, &cx.trace).expect("trace replays");
        assert_eq!(replayed, cx.final_marking, "bit-identical replay");
        let cert = report
            .certificates
            .iter()
            .find(|c| c.name == "deadlock-freedom")
            .unwrap();
        assert!(!cert.passed);
    }

    #[test]
    fn all_instantaneous_interleavings_are_explored() {
        // One token, two same-priority contenders: both outcomes must be
        // reached even though the engine itself would deterministically
        // pick `grab_a` (declaration order).
        let mut mb = ModelBuilder::new();
        let t = mb.place("t", 1).unwrap();
        let a = mb.place("a", 0).unwrap();
        let b = mb.place("b", 0).unwrap();
        mb.activity("grab_a")
            .unwrap()
            .instantaneous(5)
            .input_arc(t, 1)
            .output_arc(a, 1)
            .done()
            .unwrap();
        mb.activity("grab_b")
            .unwrap()
            .instantaneous(5)
            .input_arc(t, 1)
            .output_arc(b, 1)
            .done()
            .unwrap();
        // Keep the `a` branch alive so only the `b` branch deadlocks.
        mb.activity("spin_a")
            .unwrap()
            .timed(vsched_des::Dist::Deterministic { value: 1.0 })
            .input_arc(a, 1)
            .output_arc(a, 1)
            .done()
            .unwrap();
        let model = mb.build().unwrap();
        let report = verify_model(
            "race",
            &model,
            &VerifyHooks::default(),
            &[],
            &VerifyOpts {
                horizon: 3,
                ..VerifyOpts::default()
            },
        );
        assert_eq!(report.outcome(), VerifyOutcome::Violated);
        assert_eq!(
            report.place_bounds,
            vec![1, 1, 1],
            "both grab outcomes visited"
        );
        let cx = &report.counterexamples[0];
        assert_eq!(cx.certificate, "deadlock-freedom");
        assert_eq!(
            cx.trace.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            vec!["grab_b"],
            "the counterexample takes the non-engine interleaving"
        );
        assert_eq!(replay_trace(&model, &cx.trace).unwrap(), cx.final_marking);
    }

    #[test]
    fn every_positive_weight_case_is_followed() {
        let mut mb = ModelBuilder::new();
        let coin = mb.place("coin", 1).unwrap();
        let heads = mb.place("heads", 0).unwrap();
        let tails = mb.place("tails", 0).unwrap();
        mb.activity("flip")
            .unwrap()
            .timed(vsched_des::Dist::Deterministic { value: 1.0 })
            .input_arc(coin, 1)
            .case(0.5)
            .output_arc(heads, 1)
            .case(0.5)
            .output_arc(tails, 1)
            .done()
            .unwrap();
        // Both outcomes stay alive so the flip branch point is the only
        // interesting structure.
        for (name, p) in [("spin_h", heads), ("spin_t", tails)] {
            mb.activity(name)
                .unwrap()
                .timed(vsched_des::Dist::Deterministic { value: 1.0 })
                .input_arc(p, 1)
                .output_arc(p, 1)
                .done()
                .unwrap();
        }
        let model = mb.build().unwrap();
        let report = verify_model(
            "flip",
            &model,
            &VerifyHooks::default(),
            &[],
            &VerifyOpts {
                horizon: 2,
                ..VerifyOpts::default()
            },
        );
        assert_eq!(report.outcome(), VerifyOutcome::Proved);
        assert_eq!(
            report.place_bounds,
            vec![1, 1, 1],
            "heads and tails both reached — case enumeration, not sampling"
        );
    }

    #[test]
    fn state_cap_is_inconclusive_not_success() {
        let model = counter_model();
        let report = verify_model(
            "counter",
            &model,
            &VerifyHooks::default(),
            &[],
            &VerifyOpts {
                horizon: 10,
                max_states: 2,
                ..VerifyOpts::default()
            },
        );
        assert_eq!(report.outcome(), VerifyOutcome::Inconclusive);
        assert!(report
            .inconclusive
            .as_deref()
            .unwrap()
            .contains("state cap"));
        assert!(
            report.certificates.iter().all(|c| !c.passed),
            "nothing is proved by a truncated search"
        );
    }

    #[test]
    fn symmetry_quotient_shrinks_without_changing_verdicts() {
        // Two mirrored branches: `grab_l`/`grab_r` then a self-loop on
        // each side. The swap rotation identifies the two branches.
        let mut mb = ModelBuilder::new();
        let t = mb.place("t", 1).unwrap();
        let l = mb.place("l", 0).unwrap();
        let r = mb.place("r", 0).unwrap();
        for (name, p) in [("grab_l", l), ("grab_r", r)] {
            mb.activity(name)
                .unwrap()
                .instantaneous(5)
                .input_arc(t, 1)
                .output_arc(p, 1)
                .done()
                .unwrap();
        }
        for (name, p) in [("spin_l", l), ("spin_r", r)] {
            mb.activity(name)
                .unwrap()
                .timed(vsched_des::Dist::Deterministic { value: 1.0 })
                .input_arc(p, 1)
                .output_arc(p, 1)
                .done()
                .unwrap();
        }
        let model = mb.build().unwrap();
        let swap = StateRotation {
            apply_marking: Box::new(|m: &[i64]| vec![m[0], m[2], m[1]]),
            vcpu_shift: 0,
            num_vcpus: 0,
            vm_shift: 0,
            num_vms: 0,
        };
        let base = VerifyOpts {
            horizon: 3,
            ..VerifyOpts::default()
        };
        let on = verify_model("mirror", &model, &VerifyHooks::default(), &[swap], &base);
        let off = verify_model(
            "mirror",
            &model,
            &VerifyHooks::default(),
            &[],
            &VerifyOpts {
                symmetry: false,
                ..base
            },
        );
        assert!(
            on.states_stored < off.states_stored,
            "quotient must shrink the store: {} vs {}",
            on.states_stored,
            off.states_stored
        );
        assert_eq!(on.outcome(), off.outcome());
        assert_eq!(on.outcome(), VerifyOutcome::Proved);
        assert_eq!(
            on.place_bounds, off.place_bounds,
            "rotation-closed bounds are identical"
        );
        assert_eq!(on.enabled_ever, off.enabled_ever);
    }

    /// Two structurally identical random halves sharing a fuel tank, plus
    /// the swap rotation that identifies them. Every timed activity burns
    /// one fuel token, so `fuel` layers exhaust the reachable space and a
    /// bounded walk can never outrun the verifier's horizon.
    fn mirrored_random_model(seed: u64, fuel: i64) -> (Model, StateRotation) {
        let mut rng = Xoshiro256StarStar::seed_from(seed);
        let n = 2 + rng.next_below(3) as usize;
        let tokens: Vec<i64> = (0..n).map(|_| rng.next_below(3) as i64).collect();
        // Instantaneous moves only push tokens to strictly higher place
        // indices, so cascades terminate by construction.
        let num_moves = rng.next_below(3) as usize;
        let moves: Vec<(usize, usize)> = (0..num_moves)
            .map(|_| {
                let src = rng.next_below((n - 1) as u64) as usize;
                let dst = src + 1 + rng.next_below((n - 1 - src) as u64) as usize;
                (src, dst)
            })
            .collect();
        let num_ticks = 1 + rng.next_below(2) as usize;
        let ticks: Vec<(usize, usize)> = (0..num_ticks)
            .map(|_| {
                (
                    rng.next_below(n as u64) as usize,
                    rng.next_below(n as u64) as usize,
                )
            })
            .collect();

        let mut mb = ModelBuilder::new();
        let fuel_place = mb.place("fuel", fuel).unwrap();
        let mut halves = Vec::new();
        for half in ["a", "b"] {
            let places: Vec<_> = tokens
                .iter()
                .enumerate()
                .map(|(i, &t)| mb.place(&format!("p{i}_{half}"), t).unwrap())
                .collect();
            halves.push(places);
        }
        for (half, places) in ["a", "b"].iter().zip(&halves) {
            for (i, &(src, dst)) in moves.iter().enumerate() {
                mb.activity(&format!("move{i}_{half}"))
                    .unwrap()
                    .instantaneous(5)
                    .input_arc(places[src], 1)
                    .output_arc(places[dst], 1)
                    .done()
                    .unwrap();
            }
            for (i, &(src, dst)) in ticks.iter().enumerate() {
                mb.activity(&format!("tick{i}_{half}"))
                    .unwrap()
                    .timed(vsched_des::Dist::Deterministic { value: 1.0 })
                    .input_arc(fuel_place, 1)
                    .input_arc(places[src], 1)
                    .output_arc(places[dst], 1)
                    .done()
                    .unwrap();
            }
        }
        let model = mb.build().unwrap();
        // Place order is fuel, p0_a..p{n-1}_a, p0_b..p{n-1}_b.
        let swap = StateRotation {
            apply_marking: Box::new(move |m: &[i64]| {
                let mut out = m.to_vec();
                for i in 0..n {
                    out[1 + i] = m[1 + n + i];
                    out[1 + n + i] = m[1 + i];
                }
                out
            }),
            vcpu_shift: 0,
            num_vcpus: 0,
            vm_shift: 0,
            num_vms: 0,
        };
        (model, swap)
    }

    #[test]
    fn bounded_walks_visit_a_subset_of_the_exhaustive_space() {
        for seed in [1u64, 7, 23, 91, 204] {
            let fuel = 3i64;
            let (mut model, swap) = mirrored_random_model(seed, fuel);
            let base = VerifyOpts {
                horizon: fuel as u64,
                record_markings: true,
                ..VerifyOpts::default()
            };
            let on = verify_model("mirror", &model, &VerifyHooks::default(), &[swap], &base);
            let off = verify_model(
                "mirror",
                &model,
                &VerifyHooks::default(),
                &[],
                &VerifyOpts {
                    symmetry: false,
                    ..base
                },
            );
            // The quotient never changes a verdict, only the store size.
            assert_eq!(on.outcome(), off.outcome(), "seed {seed}");
            assert_ne!(on.outcome(), VerifyOutcome::Inconclusive, "seed {seed}");
            assert_eq!(on.place_bounds, off.place_bounds, "seed {seed}");
            assert_eq!(on.enabled_ever, off.enabled_ever, "seed {seed}");
            assert_eq!(
                on.certificates
                    .iter()
                    .map(|c| (c.name.as_str(), c.passed))
                    .collect::<Vec<_>>(),
                off.certificates
                    .iter()
                    .map(|c| (c.name.as_str(), c.passed))
                    .collect::<Vec<_>>(),
                "seed {seed}"
            );
            assert!(on.states_stored <= off.states_stored, "seed {seed}");
            // Rotation closure recovers exactly the markings the quotient
            // pruned: the recorded visit sets agree.
            let on_visited = on.visited_markings.as_ref().expect("recording on");
            let off_visited = off.visited_markings.as_ref().expect("recording on");
            assert_eq!(on_visited, off_visited, "seed {seed}");
            // Every marking a bounded walk samples lies inside the
            // exhaustively verified space.
            let walk = crate::incidence::explore(
                &mut model,
                &[],
                &crate::AnalyzeOpts {
                    walks: 4,
                    steps: 64,
                    ..crate::AnalyzeOpts::default()
                },
            );
            assert!(!walk.visited.is_empty(), "seed {seed}");
            for m in &walk.visited {
                assert!(
                    off_visited.contains(m),
                    "seed {seed}: walk marking {m:?} outside the exhaustive set"
                );
            }
        }
    }

    #[test]
    fn edge_check_failures_become_certificates_with_traces() {
        let model = counter_model();
        let hooks = VerifyHooks {
            invariants: vec![("acc-cap".to_string(), "acc never exceeds 2".to_string())],
            edge_check: Some(Box::new(|_tick, _src, dst: &[i64], _aux| {
                if dst[1] > 2 {
                    Err(("acc-cap".to_string(), format!("acc reached {}", dst[1])))
                } else {
                    Ok(Vec::new())
                }
            })),
            ..VerifyHooks::default()
        };
        let report = verify_model(
            "capped",
            &model,
            &hooks,
            &[],
            &VerifyOpts {
                horizon: 5,
                ..VerifyOpts::default()
            },
        );
        assert_eq!(report.outcome(), VerifyOutcome::Violated);
        let cx = report
            .counterexamples
            .iter()
            .find(|cx| cx.certificate == "acc-cap")
            .expect("violation recorded");
        assert_eq!(cx.trace.len(), 3, "shortest witness: three pumps");
        assert_eq!(replay_trace(&model, &cx.trace).unwrap(), cx.final_marking);
        let cert = report
            .certificates
            .iter()
            .find(|c| c.name == "acc-cap")
            .unwrap();
        assert!(!cert.passed);
        assert!(cert.detail.contains("acc reached 3"));
        // The violating edge is not expanded: deadlock-freedom still holds
        // on the good subgraph.
        assert!(report
            .certificates
            .iter()
            .any(|c| c.name == "deadlock-freedom" && c.passed));
    }

    #[test]
    fn replay_rejects_corrupt_traces() {
        let model = counter_model();
        let good = TraceStep {
            activity: 0,
            name: "pump".to_string(),
            case: 0,
            seed: 1,
            timed: true,
            tick: 1,
        };
        let renamed = TraceStep {
            name: "pmup".to_string(),
            ..good.clone()
        };
        assert!(replay_trace(&model, &[renamed]).is_err());
        let out_of_range = TraceStep {
            activity: 7,
            ..good.clone()
        };
        assert!(replay_trace(&model, &[out_of_range]).is_err());
        let bad_case = TraceStep { case: 3, ..good };
        assert!(replay_trace(&model, &[bad_case]).is_err());
    }

    #[test]
    fn cross_check_flags_stale_claims_only() {
        let model = counter_model();
        let report = verify_model(
            "counter",
            &model,
            &VerifyHooks::default(),
            &[],
            &VerifyOpts {
                horizon: 4,
                ..VerifyOpts::default()
            },
        );
        // acc reaches 4; a structural claim of 2 is stale, a claim of 10
        // is legitimate slack; a walk that never saw `pump` enabled is a
        // stale never-enabled verdict.
        let diags = cross_check(&model, &report, &[Some(1), Some(2)], &[false]);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.lint == "stale-bound"));
        assert!(diags.iter().any(|d| d.subject == "acc"));
        assert!(diags.iter().any(|d| d.subject == "pump"));
        let clean = cross_check(&model, &report, &[Some(1), Some(10)], &[true]);
        assert!(clean.is_empty(), "slack is not staleness: {clean:?}");
    }
}
