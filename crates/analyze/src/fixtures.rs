//! Deliberately broken models used to pin the analyzer's diagnostics.

use vsched_core::san_model::{InvariantKind, ModelInvariant};
use vsched_san::{Model, ModelBuilder};

/// A four-place net with two planted defects:
///
/// * `leak` consumes a `buf` token through an output gate that restores
///   nothing — its observed column breaks the declared `token-conservation`
///   sum (`nonconserving-gate`);
/// * `dead` demands 2 tokens from `trap`, but the only non-negative
///   P-semiflow touching `trap` bounds it to its initial single token
///   (`dead-activity`) — and its exact column also breaks the declared sum.
///
/// `move` is an honest token move so the walks have something sound to do.
#[must_use]
pub fn broken_model() -> (Model, Vec<ModelInvariant>) {
    let mut mb = ModelBuilder::new();
    let token = mb.place("token", 2).expect("fresh builder");
    let buf = mb.place("buf", 0).expect("fresh builder");
    let sink = mb.place("sink", 0).expect("fresh builder");
    let trap = mb.place("trap", 1).expect("fresh builder");

    mb.activity("move")
        .expect("fresh name")
        .instantaneous(0)
        .input_arc(token, 1)
        .output_arc(buf, 1)
        .done()
        .expect("valid activity");
    mb.activity("leak")
        .expect("fresh name")
        .instantaneous(0)
        .input_arc(buf, 1)
        .output_gate("leak_gate", |_m, _rng| {
            // Deliberately loses the consumed token.
        })
        .done()
        .expect("valid activity");
    mb.activity("dead")
        .expect("fresh name")
        .instantaneous(0)
        .input_arc(trap, 2)
        .output_arc(sink, 1)
        .done()
        .expect("valid activity");

    let model = mb.build().expect("valid model");
    let expected = vec![ModelInvariant {
        name: "token-conservation".to_string(),
        description: "token + buf + sink is constant: tokens move but are never \
                      created or destroyed"
            .to_string(),
        kind: InvariantKind::Linear(vec![(token, 1), (buf, 1), (sink, 1)]),
    }];
    (model, expected)
}

/// A two-place net with one planted defect: `burn`'s guard reads `lever`
/// but its declared read-set names only `fuel`, so perturbing `lever`
/// flips `enabled()` outside the declared set (`stale-read-set`).
#[must_use]
pub fn stale_read_set_model() -> Model {
    let mut mb = ModelBuilder::new();
    let fuel = mb.place("fuel", 3).expect("fresh builder");
    let lever = mb.place("lever", 1).expect("fresh builder");
    mb.activity("burn")
        .expect("fresh name")
        .instantaneous(0)
        .input_arc(fuel, 1)
        .guard("lever_up", move |m| m.tokens(lever) > 0)
        .reads([fuel]) // stale: omits `lever`, which the guard reads
        .done()
        .expect("valid activity");
    mb.build().expect("valid model")
}

/// A planted shard-overlap: `honest` and `liar` both bump `acc_a`, but
/// `liar` declares its write-set as `{acc_b}`. Shard derivation — which
/// can only trust declarations — puts them in *different* shards, so the
/// overlap must be caught downstream: by this analyzer as
/// `stale-write-set` (observed column escapes the declaration), and by
/// the sharded engine at run time as a `ShardViolation`.
#[must_use]
pub fn stale_write_set_model() -> Model {
    let mut mb = ModelBuilder::new();
    let src_a = mb.place("src_a", 3).expect("fresh builder");
    let acc_a = mb.place("acc_a", 0).expect("fresh builder");
    let src_b = mb.place("src_b", 3).expect("fresh builder");
    let acc_b = mb.place("acc_b", 0).expect("fresh builder");
    mb.activity("honest")
        .expect("fresh name")
        .instantaneous(0)
        .input_arc(src_a, 1)
        .output_gate("bump_a", move |m, _| m.add(acc_a, 1))
        .reads([])
        .writes([acc_a])
        .done()
        .expect("valid activity");
    mb.activity("liar")
        .expect("fresh name")
        .instantaneous(0)
        .input_arc(src_b, 1)
        .output_gate("bump_b", move |m, _| m.add(acc_a, 1)) // writes acc_a...
        .reads([])
        .writes([acc_b]) // ...but declares acc_b
        .done()
        .expect("valid activity");
    mb.build().expect("valid model")
}

/// A planted disagreement between exact reachability and a (simulated)
/// stale structural analysis, for the `stale-bound` cross-check:
///
/// * `pump` feeds `acc` two tokens per layer, so exhaustive exploration
///   reaches `acc = 4` by layer 2 — but the returned structural claim
///   caps `acc` at 1 (stale bound);
/// * `spike` only enables once `acc >= 4`, so exhaustive exploration
///   proves it live — but the returned walk-coverage claim says it was
///   never enabled (stale liveness verdict).
///
/// Returns `(model, claimed structural bounds, claimed walk enablement)`.
/// Verifying with a horizon of at least 2 and cross-checking must raise
/// `stale-bound` for both claims.
#[must_use]
pub fn stale_bound_model() -> (Model, Vec<Option<i64>>, Vec<bool>) {
    let mut mb = ModelBuilder::new();
    let src = mb.place("src", 1).expect("fresh builder");
    let acc = mb.place("acc", 0).expect("fresh builder");
    mb.activity("pump")
        .expect("fresh name")
        .timed(vsched_des::Dist::Deterministic { value: 1.0 })
        .input_arc(src, 1)
        .output_arc(src, 1)
        .output_arc(acc, 2)
        .done()
        .expect("valid activity");
    mb.activity("spike")
        .expect("fresh name")
        .instantaneous(0)
        .input_arc(acc, 4)
        .done()
        .expect("valid activity");
    let model = mb.build().expect("valid model");
    // The claims a stale analysis would make: `src` correctly bounded at
    // 1, `acc` wrongly bounded at 1; `pump` seen enabled, `spike` not.
    (model, vec![Some(1), Some(1)], vec![true, false])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_shape() {
        let (model, expected) = broken_model();
        assert_eq!(model.num_places(), 4);
        assert_eq!(model.num_activities(), 3);
        assert_eq!(expected.len(), 1);
    }

    #[test]
    fn stale_fixture_shape() {
        let model = stale_read_set_model();
        assert_eq!(model.num_places(), 2);
        assert_eq!(model.num_activities(), 1);
    }

    #[test]
    fn write_fixture_derives_two_shards_from_the_lie() {
        let model = stale_write_set_model();
        let plan = vsched_san::ShardPlan::derive(&model);
        assert_eq!(plan.num_shards(), 2, "the lie hides the overlap");
    }

    #[test]
    fn stale_bound_fixture_trips_both_cross_checks() {
        use crate::verify_pass::{cross_check, verify_model, VerifyHooks, VerifyOpts};
        let (model, claimed_bounds, claimed_walk) = stale_bound_model();
        let report = verify_model(
            "fixture:stale-bound",
            &model,
            &VerifyHooks::default(),
            &[],
            &VerifyOpts {
                horizon: 3,
                ..VerifyOpts::default()
            },
        );
        assert_eq!(report.place_bounds[1], 4, "acc provably reaches 4");
        let diags = cross_check(&model, &report, &claimed_bounds, &claimed_walk);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags
            .iter()
            .any(|d| d.lint == "stale-bound" && d.subject == "acc"));
        assert!(diags
            .iter()
            .any(|d| d.lint == "stale-bound" && d.subject == "spike"));
    }
}
