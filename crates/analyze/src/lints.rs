//! The lint catalogue and the diagnostic/report types.

use serde_json::{json, Value};

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: reported, never fails a run.
    Allow,
    /// Suspicious: fails only under `--deny warnings`.
    Warn,
    /// A defect: always fails the run.
    Error,
}

impl Severity {
    /// Lowercase name used in text and JSON output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One entry of the lint catalogue.
#[derive(Debug, Clone, Copy)]
pub struct LintDef {
    /// Stable lint name (kebab-case, used with `--deny`/reports).
    pub name: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line rationale.
    pub rationale: &'static str,
}

/// `dead-activity`: an input arc demands more tokens than the place can
/// ever hold.
pub const DEAD_ACTIVITY: LintDef = LintDef {
    name: "dead-activity",
    severity: Severity::Error,
    rationale: "an input arc demands more tokens than any reachable marking supplies \
                (bound from a non-negative P-semiflow), so the activity can never fire",
};
/// `nonconserving-gate`: a firing violated a declared conservation law.
pub const NONCONSERVING_GATE: LintDef = LintDef {
    name: "nonconserving-gate",
    severity: Severity::Error,
    rationale: "a firing (arc or gate function) violated a declared conservation \
                invariant of the model",
};
/// `confused-instantaneous`: same-priority instantaneous firings that do
/// not commute.
pub const CONFUSED_INSTANTANEOUS: LintDef = LintDef {
    name: "confused-instantaneous",
    severity: Severity::Allow,
    rationale: "two equal-priority instantaneous activities were concurrently enabled \
                and their firing orders do not commute; the engine resolves the race \
                deterministically (declaration order), so byte-identity holds, but the \
                model's outcome depends on that tie-break",
};
/// `never-enabled`: no explored marking enabled the activity.
pub const NEVER_ENABLED: LintDef = LintDef {
    name: "never-enabled",
    severity: Severity::Allow,
    rationale: "bounded exploration never enabled the activity — possibly dead modeling, \
                possibly policy-induced starvation the experiment measures on purpose \
                (e.g. SCS with fewer PCPUs than a VM's width), so informative only; \
                provable deadness is the separate `dead-activity` error",
};
/// `unreachable-case`: a probabilistic case never selected.
pub const UNREACHABLE_CASE: LintDef = LintDef {
    name: "unreachable-case",
    severity: Severity::Allow,
    rationale: "a probabilistic case of a fired activity was never selected during \
                exploration (zero dynamic weight or sampling shortfall)",
};
/// `invalid-case-weights`: dynamic weights with a non-positive total.
pub const INVALID_CASE_WEIGHTS: LintDef = LintDef {
    name: "invalid-case-weights",
    severity: Severity::Error,
    rationale: "a dynamic case-weight function returned a non-positive or non-finite \
                total (or the wrong arity) — the simulator would panic here",
};
/// `policy-halt`: the embedded policy halted the model during probing.
pub const POLICY_HALT: LintDef = LintDef {
    name: "policy-halt",
    severity: Severity::Error,
    rationale: "the scheduling gate recorded a policy violation and halted the model \
                during exploration",
};
/// `invalid-policy-params`: policy parameters outside their static range.
pub const INVALID_POLICY_PARAMS: LintDef = LintDef {
    name: "invalid-policy-params",
    severity: Severity::Error,
    rationale: "a policy parameter is outside its validated range (the constructor \
                would panic or misbehave at runtime)",
};
/// `undeclared-field-read`: a policy reads outside its snapshot view.
pub const UNDECLARED_FIELD_READ: LintDef = LintDef {
    name: "undeclared-field-read",
    severity: Severity::Error,
    rationale: "sensitivity probing shows the policy's decisions depend on a VcpuView \
                field it does not declare in its snapshot view",
};
/// `invalid-decision`: a decision failed the decision invariants.
pub const INVALID_DECISION: LintDef = LintDef {
    name: "invalid-decision",
    severity: Severity::Error,
    rationale: "the policy produced a decision that fails validate_decision on the \
                deterministic probe suite",
};
/// `stale-read-set`: a declared read-set misses a place the closure
/// actually reads.
pub const STALE_READ_SET: LintDef = LintDef {
    name: "stale-read-set",
    severity: Severity::Error,
    rationale: "perturbation probing shows an enablement closure (guard, input gate, or \
                rate multiplier) depends on a place outside its declared read-set — the \
                incremental reevaluation core would skip a reevaluation the closure \
                needs, silently diverging from full-rescan semantics",
};
/// `stale-write-set`: a declared write-set misses a place the gate
/// actually writes.
pub const STALE_WRITE_SET: LintDef = LintDef {
    name: "stale-write-set",
    severity: Severity::Error,
    rationale: "an observed incidence column touches a place outside the gate's declared \
                write-set — shard derivation would place the activity in a shard that \
                does not own the place, and a parallel batch could fire it concurrently \
                with the place's true owner",
};
/// `stale-bound`: exhaustive verification contradicts a structural or
/// bounded-walk claim.
pub const STALE_BOUND: LintDef = LintDef {
    name: "stale-bound",
    severity: Severity::Error,
    rationale: "exhaustive reachability contradicts a structural or bounded-walk claim — \
                a semiflow place bound below an exactly reached token count, or a \
                never-enabled verdict on an activity the exact search enabled — so any \
                conclusion built on the stale claim (dead-activity, shard sizing) is \
                unsound",
};
/// `inert-policy`: the policy never assigns.
pub const INERT_POLICY: LintDef = LintDef {
    name: "inert-policy",
    severity: Severity::Warn,
    rationale: "the policy produced no assignment anywhere in the probe suite — \
                schedulable VCPUs and idle PCPUs were available every tick",
};

/// The full catalogue, in report order.
pub const CATALOGUE: &[LintDef] = &[
    DEAD_ACTIVITY,
    NONCONSERVING_GATE,
    CONFUSED_INSTANTANEOUS,
    NEVER_ENABLED,
    UNREACHABLE_CASE,
    INVALID_CASE_WEIGHTS,
    POLICY_HALT,
    INVALID_POLICY_PARAMS,
    UNDECLARED_FIELD_READ,
    INVALID_DECISION,
    STALE_READ_SET,
    STALE_WRITE_SET,
    STALE_BOUND,
    INERT_POLICY,
];

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Lint name from the catalogue.
    pub lint: &'static str,
    /// Severity (the lint's default).
    pub severity: Severity,
    /// What the finding is about (activity, gate, place, or policy name).
    pub subject: String,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic for a catalogue lint.
    #[must_use]
    pub fn new(def: LintDef, subject: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            lint: def.name,
            severity: def.severity,
            subject: subject.into(),
            message: message.into(),
        }
    }
}

/// One named conservation certificate (declared invariant) and its verdict.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Certificate name (from the model's declaration).
    pub name: String,
    /// The law being certified.
    pub description: String,
    /// Whether every check passed.
    pub passed: bool,
    /// On failure: what broke and where. Empty when passed.
    pub detail: String,
}

/// The result of linting one target.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Target name (config path, model name, or fixture name).
    pub target: String,
    /// Number of places.
    pub places: usize,
    /// Number of activities.
    pub activities: usize,
    /// Incidence columns known exactly from arcs alone.
    pub linear_columns: usize,
    /// Distinct marking deltas observed from gated activities.
    pub probed_columns: usize,
    /// Dimension of the P-invariant basis over all columns.
    pub p_invariant_dim: usize,
    /// Dimension of the T-invariant basis over the linear columns.
    pub t_invariant_dim: usize,
    /// Rendered conservation laws (small P-invariant basis vectors).
    pub conservation_laws: Vec<String>,
    /// Named certificates, in declaration order.
    pub certificates: Vec<Certificate>,
    /// Findings, in detection order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of Error-severity findings (counting failed certificates'
    /// diagnostics once — every failed certificate also emits one).
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of Warn-severity findings.
    #[must_use]
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Whether the run fails: any Error, any failed certificate, or (with
    /// `deny_warnings`) any Warn.
    #[must_use]
    pub fn denied(&self, deny_warnings: bool) -> bool {
        self.error_count() > 0
            || self.certificates.iter().any(|c| !c.passed)
            || (deny_warnings && self.warn_count() > 0)
    }

    /// The report as a JSON value with stable field order.
    #[must_use]
    pub fn to_json(&self) -> Value {
        json!({
            "target": self.target.clone(),
            "places": self.places,
            "activities": self.activities,
            "linear_columns": self.linear_columns,
            "probed_columns": self.probed_columns,
            "p_invariant_dim": self.p_invariant_dim,
            "t_invariant_dim": self.t_invariant_dim,
            "conservation_laws": self.conservation_laws.clone(),
            "certificates": Value::Seq(
                self.certificates
                    .iter()
                    .map(|c| {
                        json!({
                            "name": c.name.clone(),
                            "description": c.description.clone(),
                            "passed": c.passed,
                            "detail": c.detail.clone(),
                        })
                    })
                    .collect()
            ),
            "diagnostics": Value::Seq(
                self.diagnostics
                    .iter()
                    .map(|d| {
                        json!({
                            "lint": d.lint,
                            "severity": d.severity.as_str(),
                            "subject": d.subject.clone(),
                            "message": d.message.clone(),
                        })
                    })
                    .collect()
            ),
            "errors": self.error_count(),
            "warnings": self.warn_count(),
        })
    }

    /// Multi-line human-readable rendering.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "lint {}: {} places, {} activities ({} linear + {} probed columns), \
             P-invariant dim {}, T-invariant dim {}",
            self.target,
            self.places,
            self.activities,
            self.linear_columns,
            self.probed_columns,
            self.p_invariant_dim,
            self.t_invariant_dim,
        );
        for law in &self.conservation_laws {
            let _ = writeln!(out, "  law: {law}");
        }
        for c in &self.certificates {
            let verdict = if c.passed { "PASS" } else { "FAIL" };
            let _ = writeln!(
                out,
                "  certificate {} [{verdict}]: {}",
                c.name, c.description
            );
            if !c.passed {
                let _ = writeln!(out, "    {}", c.detail);
            }
        }
        for d in &self.diagnostics {
            let _ = writeln!(
                out,
                "  {}[{}] {}: {}",
                d.severity.as_str(),
                d.lint,
                d.subject,
                d.message
            );
        }
        let _ = writeln!(
            out,
            "  summary: {} errors, {} warnings, {} certificates ({} passed)",
            self.error_count(),
            self.warn_count(),
            self.certificates.len(),
            self.certificates.iter().filter(|c| c.passed).count(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_are_unique_kebab_case() {
        let mut seen = std::collections::HashSet::new();
        for def in CATALOGUE {
            assert!(seen.insert(def.name), "duplicate lint {}", def.name);
            assert!(def.name.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            assert!(!def.rationale.is_empty());
        }
    }

    #[test]
    fn deny_semantics() {
        let mut report = LintReport {
            target: "t".into(),
            ..LintReport::default()
        };
        assert!(!report.denied(true));
        report
            .diagnostics
            .push(Diagnostic::new(INERT_POLICY, "a", "m"));
        assert!(!report.denied(false), "warn passes by default");
        assert!(report.denied(true), "warn denied under --deny warnings");
        report
            .diagnostics
            .push(Diagnostic::new(DEAD_ACTIVITY, "a", "m"));
        assert!(report.denied(false), "errors always deny");
    }

    #[test]
    fn failed_certificate_denies() {
        let report = LintReport {
            target: "t".into(),
            certificates: vec![Certificate {
                name: "c".into(),
                description: "d".into(),
                passed: false,
                detail: "broke".into(),
            }],
            ..LintReport::default()
        };
        assert!(report.denied(false));
    }

    #[test]
    fn json_shape() {
        let report = LintReport {
            target: "t".into(),
            diagnostics: vec![Diagnostic::new(DEAD_ACTIVITY, "act", "why")],
            ..LintReport::default()
        };
        let v = serde_json::to_string(&report.to_json()).unwrap();
        assert!(v.contains("\"dead-activity\""));
        assert!(
            v.contains("\"errors\":1") || v.contains("\"errors\": 1"),
            "{v}"
        );
    }
}
