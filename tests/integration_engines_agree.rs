//! Cross-validation of the two engines (experiment VAL1).
//!
//! The paper's Discussion (§V) lists "evaluating the fidelity of the model"
//! as open work. These tests run the same configuration through the SAN
//! engine (the paper's approach) and the independently implemented direct
//! engine, and require their metric estimates to agree — the strongest
//! fidelity evidence available without hardware.

use vsched_core::{Engine, ExperimentBuilder, PolicyKind, SystemConfig};

mod common;
use common::config_sync as config;

/// Runs both engines over several replications and checks that each metric
/// mean agrees within `tol`.
fn assert_engines_agree(cfg: SystemConfig, kind: PolicyKind, tol: f64) {
    let build = |engine| {
        ExperimentBuilder::new(cfg.clone(), kind.clone())
            .engine(engine)
            .warmup(1_000)
            .horizon(10_000)
            .replications_exact(5)
            .run()
            .unwrap()
    };
    let san = build(Engine::San);
    let direct = build(Engine::Direct);
    let pairs = [
        (
            "availability",
            san.vcpu_availability_means(),
            direct.vcpu_availability_means(),
        ),
        (
            "vcpu util",
            san.vcpu_utilization_means(),
            direct.vcpu_utilization_means(),
        ),
        (
            "pcpu util",
            san.pcpu_utilization_means(),
            direct.pcpu_utilization_means(),
        ),
    ];
    for (name, s, d) in pairs {
        for (i, (a, b)) in s.iter().zip(&d).enumerate() {
            assert!(
                (a - b).abs() < tol,
                "{kind} / {}: {name}[{i}] disagrees: SAN {a:.4} vs direct {b:.4}",
                cfg.describe()
            );
        }
    }
}

#[test]
fn engines_agree_rrs_contended() {
    assert_engines_agree(config(2, &[2, 1, 1], (1, 5)), PolicyKind::RoundRobin, 0.03);
}

#[test]
fn engines_agree_rrs_saturating_sync() {
    assert_engines_agree(config(4, &[2, 4], (1, 2)), PolicyKind::RoundRobin, 0.04);
}

#[test]
fn engines_agree_scs() {
    assert_engines_agree(config(4, &[2, 3], (1, 5)), PolicyKind::StrictCo, 0.04);
}

#[test]
fn engines_agree_rcs() {
    assert_engines_agree(
        config(2, &[2, 1, 1], (1, 5)),
        PolicyKind::relaxed_co_default(),
        0.04,
    );
}

#[test]
fn engines_agree_balance_and_credit() {
    assert_engines_agree(config(3, &[2, 2], (1, 5)), PolicyKind::Balance, 0.04);
    assert_engines_agree(
        config(3, &[2, 2], (1, 5)),
        PolicyKind::credit_default(),
        0.04,
    );
}

/// The differential oracle from `vsched-check` judges a config/policy
/// pair with CI-aware per-column tolerances — the same verdict the fuzz
/// sweep applies, here pinned on named configurations for the policies
/// the fixed tests above do not cover.
fn assert_oracle_agrees(cfg: &SystemConfig, kind: &PolicyKind) {
    let failures = vsched_check::oracle::engines_agree(
        cfg,
        kind,
        1_000,
        10_000,
        99,
        5,
        &vsched_check::OracleOpts::default(),
    )
    .unwrap();
    assert!(failures.is_empty(), "{kind}: {failures:?}");
}

#[test]
fn oracle_engines_agree_credit() {
    assert_oracle_agrees(&config(2, &[2, 1], (1, 4)), &PolicyKind::credit_default());
    assert_oracle_agrees(
        &config(3, &[3, 1, 1], (1, 6)),
        &PolicyKind::Credit { refill_period: 25 },
    );
}

#[test]
fn oracle_engines_agree_sedf() {
    assert_oracle_agrees(&config(2, &[2, 1], (1, 4)), &PolicyKind::sedf_default());
    assert_oracle_agrees(
        &config(3, &[2, 2], (1, 5)),
        &PolicyKind::Sedf { period: 40 },
    );
}

#[test]
fn oracle_engines_agree_bvt() {
    assert_oracle_agrees(&config(2, &[2, 1], (1, 4)), &PolicyKind::bvt_default());
    assert_oracle_agrees(
        &config(4, &[3, 2], (1, 5)),
        &PolicyKind::Bvt { max_lag: 500 },
    );
}

/// Deterministic workloads remove all randomness except policy behaviour:
/// the engines must then agree almost exactly.
#[test]
fn engines_agree_exactly_without_randomness() {
    use vsched_core::{direct::DirectSim, san_model::SanSystem, VmSpec, WorkloadSpec};
    use vsched_des::Dist;

    let w = WorkloadSpec {
        load: Dist::deterministic(7.0).unwrap(),
        sync_probability: 0.0,
        sync_mechanism: Default::default(),
        sync_every: None,
        interarrival: None,
    };
    let mk = || {
        SystemConfig::builder()
            .pcpus(1)
            .vm_spec(VmSpec {
                vcpus: 1,
                workload: w.clone(),
                weight: 1,
            })
            .vm_spec(VmSpec {
                vcpus: 1,
                workload: w.clone(),
                weight: 1,
            })
            .build()
            .unwrap()
    };
    let mut direct = DirectSim::new(mk(), PolicyKind::RoundRobin.create(), 1);
    direct.run(5_000).unwrap();
    let mut san = SanSystem::new(mk(), PolicyKind::RoundRobin.create(), 1).unwrap();
    san.run(5_000).unwrap();
    let d = direct.metrics();
    let s = san.metrics();
    for (a, b) in d.to_observations().iter().zip(s.to_observations()) {
        assert!(
            (a - b).abs() < 1e-3,
            "deterministic run must match: {a} vs {b}\n direct {d:?}\n san {s:?}"
        );
    }
}
