//! The trace frontend's anchor property: a **degenerate trace** — every
//! VM arrives at tick 0 with full constant demand and never departs — is
//! **bit-identical** to running the equivalent fixed topology through
//! `ExperimentBuilder`, on both engines, at any `--jobs` and SAN shard
//! count. This pins the dynamic machinery (admission places, duty-cycle
//! gates, rate multipliers) as an exact no-op at the identity marking,
//! so every static result in the repo is unchanged by the trace tier.

use proptest::prelude::*;
use vsched_core::{Engine, ExperimentBuilder, PolicyKind, SampleMetrics};
use vsched_trace::{RawEvent, TraceExperiment, TraceMeta, TraceSchedule, VmShape};

const WARMUP: u64 = 60;
const HORIZON: u64 = 200;
const SEED: u64 = 0xfeed;

fn degenerate_schedule(pcpus: usize, vm_sizes: &[usize]) -> TraceSchedule {
    let events: Vec<RawEvent> = vm_sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| RawEvent::arrive(0, format!("vm{i}"), VmShape::new(n)))
        .collect();
    let s = TraceSchedule::from_events(&TraceMeta::new(pcpus), &events).unwrap();
    assert!(s.is_static());
    s
}

fn bits(m: &SampleMetrics) -> Vec<u64> {
    m.to_observations().iter().map(|x| x.to_bits()).collect()
}

fn assert_identity(engine: Engine, pcpus: usize, vm_sizes: &[usize], policy: PolicyKind) {
    let schedule = degenerate_schedule(pcpus, vm_sizes);
    let static_builder = ExperimentBuilder::new(schedule.config().clone(), policy.clone())
        .engine(engine)
        .warmup(WARMUP)
        .horizon(HORIZON)
        .seed(SEED);
    let traced = TraceExperiment::new(schedule, policy)
        .engine(engine)
        .warmup(WARMUP)
        .horizon(HORIZON)
        .seed(SEED);

    for rep in 0..2u64 {
        let s = static_builder.run_replication(rep).unwrap();
        let t = traced.run_replication(rep).unwrap();
        assert_eq!(
            bits(&s),
            bits(&t),
            "engine {engine:?} rep {rep}: traced run drifted from the static path"
        );
    }

    // The full replicated run is jobs-independent (and shard-independent
    // on the SAN engine), fingerprint-exact.
    let baseline = traced
        .clone()
        .replications(3)
        .parallel(false)
        .run()
        .unwrap();
    for jobs in [1usize, 2, 4] {
        let r = traced.clone().replications(3).jobs(jobs).run().unwrap();
        assert_eq!(
            baseline.fingerprint, r.fingerprint,
            "engine {engine:?} jobs {jobs}: fingerprint changed"
        );
    }
    if engine == Engine::San {
        for shards in [2usize, 4] {
            let r = traced.clone().replications(3).shards(shards).run().unwrap();
            assert_eq!(
                baseline.fingerprint, r.fingerprint,
                "{shards} SAN shards changed the fingerprint"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random topologies: the degenerate trace is byte-identical to the
    /// fixed topology on the Direct engine.
    #[test]
    fn static_trace_is_bit_identical_to_fixed_topology_direct(
        pcpus in 1usize..4,
        vm_sizes in proptest::collection::vec(1usize..4, 1..4),
    ) {
        assert_identity(Engine::Direct, pcpus, &vm_sizes, PolicyKind::RoundRobin);
    }

    /// Same property on the SAN engine (dynamic build mode vs the static
    /// model), including shard independence.
    #[test]
    fn static_trace_is_bit_identical_to_fixed_topology_san(
        pcpus in 1usize..3,
        vm_sizes in proptest::collection::vec(1usize..3, 1..3),
    ) {
        assert_identity(Engine::San, pcpus, &vm_sizes, PolicyKind::RoundRobin);
    }
}

/// The paper's Figure-8 topology under every gang-ish policy, both
/// engines — a fixed, always-run instance of the property.
#[test]
fn paper_topology_identity_all_policies() {
    for policy in [
        PolicyKind::RoundRobin,
        PolicyKind::StrictCo,
        PolicyKind::Balance,
    ] {
        assert_identity(Engine::Direct, 2, &[2, 1, 1], policy.clone());
        assert_identity(Engine::San, 2, &[2, 1, 1], policy);
    }
}
