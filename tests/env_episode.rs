//! Episode-level contract of `vsched-env`: the environment is the same
//! game as the monolithic engines, bit for bit.
//!
//! * an episode driven by an in-process policy fed **from observations**
//!   reproduces `ExperimentBuilder::run_replication` exactly — markings
//!   (via the terminal fingerprint), metrics, and RNG draws (any
//!   divergence in draws would change both);
//! * replaying the recorded actions reproduces the observation, reward,
//!   and fingerprint streams;
//! * rewards telescope to the weighted final metric scalar;
//! * an illegal action fails the episode as a typed engine error and the
//!   environment resets cleanly afterwards.

use proptest::prelude::*;
use vsched_core::{Engine, ExperimentBuilder, PolicyKind, SampleMetrics, ScheduleDecision};
use vsched_env::{drive_policy, replay_actions, Env, EnvError, EpisodeRun, Scenario};

const WARMUP: u64 = 60;
const HORIZON: u64 = 240;

mod common;
use common::config;

fn scenario(engine: Engine, pcpus: usize, vm_sizes: &[usize]) -> Scenario {
    Scenario::new(config(pcpus, vm_sizes))
        .engine(engine)
        .warmup(WARMUP)
        .horizon(HORIZON)
}

fn monolithic(
    engine: Engine,
    pcpus: usize,
    vm_sizes: &[usize],
    kind: &PolicyKind,
    seed: u64,
) -> SampleMetrics {
    ExperimentBuilder::new(config(pcpus, vm_sizes), kind.clone())
        .engine(engine)
        .warmup(WARMUP)
        .horizon(HORIZON)
        .seed(seed)
        .run_replication(0)
        .unwrap()
}

fn drive(
    engine: Engine,
    pcpus: usize,
    vm_sizes: &[usize],
    kind: &PolicyKind,
    seed: u64,
) -> EpisodeRun {
    let mut policy = kind.create();
    let fields = policy.snapshot_view();
    let mut env = Env::new(scenario(engine, pcpus, vm_sizes))
        .fields(fields)
        .agent_name("episode-test");
    drive_policy(&mut env, policy.as_mut(), seed).unwrap()
}

#[test]
fn episode_metrics_match_the_monolithic_run_on_both_engines() {
    for engine in [Engine::Direct, Engine::San] {
        for kind in PolicyKind::paper_trio() {
            let run = drive(engine, 2, &[2, 1], &kind, 11);
            let mono = monolithic(engine, 2, &[2, 1], &kind, 11);
            assert_eq!(
                run.end.metrics, mono,
                "{engine:?}/{kind}: env-driven metrics differ from run_replication"
            );
            assert_eq!(run.end.ticks, WARMUP + HORIZON);
            assert_eq!(run.actions.len() as u64, WARMUP + HORIZON);
        }
    }
}

#[test]
fn replaying_recorded_actions_reproduces_the_episode() {
    for engine in [Engine::Direct, Engine::San] {
        let kind = PolicyKind::credit_default();
        let run = drive(engine, 2, &[2, 2], &kind, 3);
        let mut env = Env::new(scenario(engine, 2, &[2, 2]))
            .fields(kind.create().snapshot_view())
            .agent_name("episode-test");
        let replay = replay_actions(&mut env, &run.actions, 3).unwrap();
        assert_eq!(
            replay.obs_digest, run.obs_digest,
            "{engine:?}: observation stream"
        );
        assert_eq!(replay.rewards, run.rewards, "{engine:?}: reward stream");
        assert_eq!(
            replay.end.fingerprint, run.end.fingerprint,
            "{engine:?}: terminal fingerprint"
        );
        assert_eq!(replay.end.metrics, run.end.metrics);
    }
}

#[test]
fn rewards_telescope_to_the_final_metric_scalar() {
    let run = drive(Engine::Direct, 2, &[2, 1], &PolicyKind::RoundRobin, 5);
    let total: f64 = run.rewards.iter().sum();
    let m = &run.end.metrics;
    let scalar = m.avg_vcpu_utilization() + m.avg_vcpu_availability() + m.avg_pcpu_utilization();
    assert!(
        (total - scalar).abs() < 1e-9,
        "episode return {total} != final weighted scalar {scalar}"
    );
}

#[test]
fn an_illegal_action_is_a_typed_fault_and_the_env_survives() {
    let mut env = Env::new(scenario(Engine::Direct, 2, &[2])).agent_name("rogue");
    let obs = env.reset(1).unwrap();
    // Assign the same VCPU to both PCPUs: invariant 3 of validate_decision.
    let mut action = ScheduleDecision::none();
    action.assign(0, 0, obs.default_timeslice);
    action.assign(0, 1, obs.default_timeslice);
    match env.step(&action) {
        Err(EnvError::Engine(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("rogue"), "fault names the agent: {msg}");
        }
        other => panic!("expected a policy violation, got {other:?}"),
    }
    // The process and the environment both survive: a fresh episode runs.
    let run = drive_policy(&mut env, PolicyKind::RoundRobin.create().as_mut(), 1).unwrap();
    assert_eq!(run.end.ticks, WARMUP + HORIZON);
}

#[test]
fn step_without_reset_is_rejected() {
    let mut env = Env::new(scenario(Engine::Direct, 1, &[1]));
    assert!(matches!(
        env.step(&ScheduleDecision::none()),
        Err(EnvError::NoEpisode)
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any small system, any registry policy, both engines: the
    /// env-driven episode is bit-identical to the monolithic run, and a
    /// replay of its actions is bit-identical to the episode.
    #[test]
    fn episodes_are_bit_identical_to_monolithic_runs(
        pcpus in 1usize..4,
        vm_sizes in proptest::collection::vec(1usize..3, 1..3),
        policy_idx in 0usize..8,
        seed in 0u64..1_000,
        engine_is_san in 0u8..2,
    ) {
        let engine = if engine_is_san == 1 { Engine::San } else { Engine::Direct };
        let kind = PolicyKind::all().remove(policy_idx);
        let run = drive(engine, pcpus, &vm_sizes, &kind, seed);
        let mono = monolithic(engine, pcpus, &vm_sizes, &kind, seed);
        prop_assert_eq!(&run.end.metrics, &mono);

        let mut env = Env::new(scenario(engine, pcpus, &vm_sizes))
            .fields(kind.create().snapshot_view());
        let replay = replay_actions(&mut env, &run.actions, seed).unwrap();
        prop_assert_eq!(replay.obs_digest, run.obs_digest);
        prop_assert_eq!(replay.end.fingerprint, run.end.fingerprint);
        prop_assert_eq!(replay.rewards, run.rewards);
    }
}
