//! Property-based coverage of the relaxed co-scheduling skew bound.
//!
//! RCS (paper §II.B) lets gang siblings drift apart, but only up to the
//! policy's `skew_threshold`: once a sibling leads by that much it is
//! parked until the laggards catch back up to within `skew_resume`.
//! Progress is counted in *useful* ticks — a VCPU advances in tick `t`
//! iff it entered `t` scheduled with at least two timeslice ticks left
//! (phase 3 expires a one-tick holder before it can run again) — the
//! same mirror the `vsched-check` invariant checker uses. One tick of
//! slack on top of the threshold absorbs the decision-to-dispatch
//! boundary within the tick that trips the limit.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use vsched_core::direct::DirectSim;
use vsched_core::observe::TickObserver;
use vsched_core::san_model::SanSystem;
use vsched_core::{CoreError, PcpuView, PolicyKind, SystemConfig, VcpuView};

/// Per-gang progress tracker; reports the largest skew ever observed.
#[derive(Default)]
struct SkewTracker {
    gangs: Vec<Vec<usize>>,
    progress: Vec<u64>,
    prev: Option<Vec<VcpuView>>,
    max_skew: u64,
}

impl SkewTracker {
    fn new(config: &SystemConfig) -> Self {
        let mut gangs: Vec<Vec<usize>> = vec![Vec::new(); config.vms().len()];
        for id in config.vcpu_ids() {
            gangs[id.vm].push(id.global);
        }
        gangs.retain(|g| g.len() > 1);
        SkewTracker {
            gangs,
            progress: vec![0; config.total_vcpus()],
            prev: None,
            max_skew: 0,
        }
    }
}

impl TickObserver for SkewTracker {
    fn on_tick(
        &mut self,
        _tick: u64,
        vcpus: &[VcpuView],
        _pcpus: &[PcpuView],
    ) -> Result<(), CoreError> {
        if let Some(prev) = &self.prev {
            for (g, v) in prev.iter().enumerate() {
                if v.status.is_active() && v.timeslice_remaining >= 2 {
                    self.progress[g] += 1;
                }
            }
        }
        for gang in &self.gangs {
            let lead = gang.iter().map(|&g| self.progress[g]).max().unwrap_or(0);
            let lag = gang.iter().map(|&g| self.progress[g]).min().unwrap_or(0);
            self.max_skew = self.max_skew.max(lead - lag);
        }
        self.prev = Some(vcpus.to_vec());
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random small systems under RCS, both engines: the observed gang
    /// skew never exceeds `skew_threshold` plus one tick of slack.
    #[test]
    fn rcs_respects_its_skew_threshold(
        pcpus in 1usize..5,
        gang in 2usize..4,
        extra_vms in proptest::collection::vec(1usize..3, 0..3),
        skew_resume in 1u64..4,
        threshold_gap in 1u64..9,
        seed in 0u64..1_000,
    ) {
        let skew_threshold = skew_resume + threshold_gap;
        let mut b = SystemConfig::builder().pcpus(pcpus).vm(gang);
        for &n in &extra_vms {
            b = b.vm(n);
        }
        let config = b.build().unwrap();
        let policy = PolicyKind::RelaxedCo { skew_threshold, skew_resume };
        let bound = skew_threshold + 1;

        let direct_tracker = Rc::new(RefCell::new(SkewTracker::new(&config)));
        let mut direct = DirectSim::new(config.clone(), policy.create(), seed);
        direct.attach_observer(Box::new(Rc::clone(&direct_tracker)));
        direct.run(400).unwrap();
        let observed = direct_tracker.borrow().max_skew;
        prop_assert!(
            observed <= bound,
            "direct engine skew {} > threshold {} + 1", observed, skew_threshold
        );

        let san_tracker = Rc::new(RefCell::new(SkewTracker::new(&config)));
        let mut san = SanSystem::new(config, policy.create(), seed).unwrap();
        san.attach_observer(Box::new(Rc::clone(&san_tracker)));
        san.run(400).unwrap();
        let observed = san_tracker.borrow().max_skew;
        prop_assert!(
            observed <= bound,
            "SAN engine skew {} > threshold {} + 1", observed, skew_threshold
        );
    }

    /// The bound is not vacuous: saturated gangs on scarce PCPUs do
    /// accumulate nonzero skew before RCS parks the leader.
    #[test]
    fn rcs_skew_is_exercised(
        seed in 0u64..50,
    ) {
        let config = SystemConfig::builder().pcpus(2).vm(2).vm(1).build().unwrap();
        let policy = PolicyKind::RelaxedCo { skew_threshold: 4, skew_resume: 2 };
        let tracker = Rc::new(RefCell::new(SkewTracker::new(&config)));
        let mut sim = DirectSim::new(config, policy.create(), seed);
        sim.attach_observer(Box::new(Rc::clone(&tracker)));
        sim.run(400).unwrap();
        let observed = tracker.borrow().max_skew;
        prop_assert!(observed > 0, "contended gang never skewed");
        prop_assert!(observed <= 5);
    }
}
