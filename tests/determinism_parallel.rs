//! Parallel determinism of the core experiment runner: any `jobs` value —
//! including the sequential fallback — must produce **bit-identical**
//! reports, because replication seeds derive purely from the replication
//! index and observations merge into the stopping rule in ascending order.

use vsched_core::{Engine, ExperimentBuilder, MetricsReport, PolicyKind, SystemConfig};
use vsched_stats::StoppingRule;

mod common;

fn config() -> SystemConfig {
    common::config_sync(2, &[2, 1], (1, 5))
}

fn builder(engine: Engine) -> ExperimentBuilder {
    ExperimentBuilder::new(config(), PolicyKind::RoundRobin)
        .engine(engine)
        .warmup(100)
        .horizon(1_500)
}

/// Bit-level equality of two experiment reports.
fn assert_bit_identical(a: &MetricsReport, b: &MetricsReport) {
    assert_eq!(a.replications, b.replications);
    let cis = |r: &MetricsReport| {
        r.vcpu_availability
            .iter()
            .chain(&r.vcpu_utilization)
            .chain(&r.pcpu_utilization)
            .flat_map(|ci| [ci.mean.to_bits(), ci.half_width.to_bits()])
            .collect::<Vec<u64>>()
    };
    assert_eq!(cis(a), cis(b), "confidence intervals differ at bit level");
}

#[test]
fn exact_count_jobs_invariant() {
    let sequential = builder(Engine::Direct)
        .replications_exact(8)
        .parallel(false)
        .run()
        .unwrap();
    let one_worker = builder(Engine::Direct)
        .replications_exact(8)
        .jobs(1)
        .run()
        .unwrap();
    let four_workers = builder(Engine::Direct)
        .replications_exact(8)
        .jobs(4)
        .run()
        .unwrap();
    assert_bit_identical(&sequential, &one_worker);
    assert_bit_identical(&sequential, &four_workers);
}

#[test]
fn converged_jobs_invariant() {
    let rule = StoppingRule::new(0.95, 0.05)
        .with_min_replications(3)
        .with_max_replications(15);
    let one_worker = builder(Engine::Direct)
        .horizon(2_000)
        .stopping_rule(rule)
        .jobs(1)
        .run()
        .unwrap();
    let four_workers = builder(Engine::Direct)
        .horizon(2_000)
        .stopping_rule(rule)
        .jobs(4)
        .run()
        .unwrap();
    assert_eq!(one_worker.replications, four_workers.replications);
    assert_bit_identical(&one_worker, &four_workers);
}

#[test]
fn san_engine_jobs_invariant() {
    let one_worker = builder(Engine::San)
        .horizon(800)
        .replications_exact(4)
        .jobs(1)
        .run()
        .unwrap();
    let four_workers = builder(Engine::San)
        .horizon(800)
        .replications_exact(4)
        .jobs(4)
        .run()
        .unwrap();
    assert_bit_identical(&one_worker, &four_workers);
}

#[test]
fn seed_change_changes_results() {
    let report = |seed: u64| {
        builder(Engine::Direct)
            .replications_exact(6)
            .seed(seed)
            .jobs(4)
            .run()
            .unwrap()
    };
    let a = report(1);
    let b = report(2);
    let bits = |r: &MetricsReport| {
        r.vcpu_availability
            .iter()
            .chain(&r.vcpu_utilization)
            .chain(&r.pcpu_utilization)
            .map(|ci| ci.mean.to_bits())
            .collect::<Vec<u64>>()
    };
    assert_ne!(bits(&a), bits(&b), "different seeds must change results");
}
