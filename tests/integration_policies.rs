//! Policy-comparison tests reproducing the paper's qualitative findings
//! (Figures 8–10) at integration scale, plus the extension policies.

use vsched_core::{direct::DirectSim, PolicyKind, SystemConfig, VmSpec, WorkloadSpec};
use vsched_des::Dist;

mod common;
use common::config_sync as config;

fn run_metrics(cfg: SystemConfig, kind: &PolicyKind, seed: u64) -> vsched_core::SampleMetrics {
    let mut sim = DirectSim::new(cfg, kind.create(), seed);
    sim.run(2_000).unwrap();
    sim.reset_metrics();
    sim.run(30_000).unwrap();
    sim.metrics()
}

/// Figure 8, qualitatively: fairness per algorithm as PCPUs go 1 → 4.
#[test]
fn fig8_fairness_shapes() {
    for pcpus in 1..=4 {
        let cfg = || config(pcpus, &[2, 1, 1], (1, 5));

        // RRS: "always achieves scheduling fairness regardless of the
        // resource".
        let rrs = run_metrics(cfg(), &PolicyKind::RoundRobin, 1);
        let spread = spread(&rrs.vcpu_availability);
        assert!(spread < 0.06, "RRS spread {spread} at {pcpus} PCPUs");

        // SCS at 1 PCPU: the 2-VCPU VM cannot co-start.
        let scs = run_metrics(cfg(), &PolicyKind::StrictCo, 2);
        if pcpus == 1 {
            assert_eq!(scs.vcpu_availability[0], 0.0);
            assert_eq!(scs.vcpu_availability[1], 0.0);
        }

        // RCS schedules the 2-VCPU VM even at 1 PCPU.
        let rcs = run_metrics(cfg(), &PolicyKind::relaxed_co_default(), 3);
        assert!(
            rcs.vcpu_availability[0] > 0.0,
            "RCS must serve the SMP VM at {pcpus} PCPUs"
        );

        // At 4 PCPUs everyone is fully served by all three algorithms.
        if pcpus == 4 {
            for (name, m) in [("RRS", &rrs), ("SCS", &scs), ("RCS", &rcs)] {
                assert!(
                    m.avg_vcpu_availability() > 0.95,
                    "{name} must saturate at 4 PCPUs, got {}",
                    m.avg_vcpu_availability()
                );
            }
        }
    }
}

/// Figure 8: co-scheduling fairness improves with PCPU count.
#[test]
fn fig8_coscheduling_fairness_improves_with_pcpus() {
    let fairness = |pcpus: usize, kind: &PolicyKind| {
        let m = run_metrics(config(pcpus, &[2, 1, 1], (1, 5)), kind, 4);
        spread(&m.vcpu_availability)
    };
    for kind in [PolicyKind::StrictCo, PolicyKind::relaxed_co_default()] {
        let at_1 = fairness(1, &kind);
        let at_4 = fairness(4, &kind);
        assert!(
            at_4 < at_1,
            "{kind}: fairness must improve 1→4 PCPUs ({at_1:.3} → {at_4:.3})"
        );
        assert!(at_4 < 0.05, "{kind}: near-perfect fairness at 4 PCPUs");
    }
}

/// Figure 9, qualitatively: PCPU utilization across the three VM sets.
#[test]
fn fig9_pcpu_utilization_shapes() {
    let sets: [&[usize]; 3] = [&[2, 2], &[2, 3], &[2, 4]];
    for (i, set) in sets.iter().enumerate() {
        let cfg = || config(4, set, (1, 5));
        let rrs = run_metrics(cfg(), &PolicyKind::RoundRobin, 5).avg_pcpu_utilization();
        let scs = run_metrics(cfg(), &PolicyKind::StrictCo, 6).avg_pcpu_utilization();
        let rcs = run_metrics(cfg(), &PolicyKind::relaxed_co_default(), 7).avg_pcpu_utilization();

        assert!(rrs > 0.95, "set {i}: RRS keeps PCPUs busy, got {rrs:.3}");
        assert!(
            rcs > 0.9,
            "set {i}: paper: RCS always above 90%, got {rcs:.3}"
        );
        if i > 0 {
            // VCPUs > PCPUs: strict co-scheduling fragments.
            assert!(
                scs < rcs,
                "set {i}: SCS ({scs:.3}) must fragment below RCS ({rcs:.3})"
            );
            assert!(
                scs < 0.93,
                "set {i}: SCS must visibly waste PCPUs, got {scs:.3}"
            );
        } else {
            // 4 VCPUs on 4 PCPUs: everyone saturates.
            assert!(scs > 0.95, "set 0: SCS saturates, got {scs:.3}");
        }
    }
}

/// Figure 10, qualitatively: VCPU utilization vs sync rate.
#[test]
fn fig10_vcpu_utilization_shapes() {
    // Set 1 (VCPUs == PCPUs): "the VCPU utilization is high and we do not
    // see any difference among the scheduling algorithms".
    // Note: even with dedicated PCPUs, barrier semantics cap utilization —
    // a VCPU that finishes early idles READY until the sync job completes —
    // so "high" is ~0.9, not 1.0.
    let cfg_eq = || config(4, &[2, 2], (1, 5));
    let utils: Vec<f64> = PolicyKind::paper_trio()
        .iter()
        .map(|k| run_metrics(cfg_eq(), k, 8).avg_vcpu_utilization())
        .collect();
    for u in &utils {
        assert!(*u > 0.85, "equal-resources utilization high: {utils:?}");
        assert!(
            (*u - utils[0]).abs() < 0.02,
            "paper: no difference among algorithms when VCPUs == PCPUs: {utils:?}"
        );
    }

    // Sets 2 and 3 (VCPUs > PCPUs): co-scheduling wins; SCS ≥ RCS > RRS.
    for set in [&[2usize, 3][..], &[2, 4]] {
        let cfg = || config(4, set, (1, 5));
        let rrs = run_metrics(cfg(), &PolicyKind::RoundRobin, 9).avg_vcpu_utilization();
        let scs = run_metrics(cfg(), &PolicyKind::StrictCo, 10).avg_vcpu_utilization();
        let rcs = run_metrics(cfg(), &PolicyKind::relaxed_co_default(), 11).avg_vcpu_utilization();
        assert!(
            scs > rrs && rcs > rrs,
            "set {set:?}: co-scheduling must beat RRS (SCS {scs:.3}, RCS {rcs:.3}, RRS {rrs:.3})"
        );
        assert!(
            scs >= rcs - 0.02,
            "set {set:?}: paper: SCS highest, RCS slightly lower (SCS {scs:.3}, RCS {rcs:.3})"
        );
    }
}

/// Figure 10: RRS degrades sharply as the sync rate rises 1:5 → 1:2.
#[test]
fn fig10_rrs_degrades_with_sync_rate() {
    let util = |sync: (u32, u32)| {
        run_metrics(config(4, &[2, 4], sync), &PolicyKind::RoundRobin, 12).avg_vcpu_utilization()
    };
    let at_1_5 = util((1, 5));
    let at_1_3 = util((1, 3));
    let at_1_2 = util((1, 2));
    assert!(
        at_1_5 > at_1_3 && at_1_3 > at_1_2,
        "RRS VCPU utilization must fall monotonically: {at_1_5:.3}, {at_1_3:.3}, {at_1_2:.3}"
    );
    assert!(
        at_1_5 - at_1_2 > 0.05,
        "degradation must be substantial: {at_1_5:.3} → {at_1_2:.3}"
    );
}

/// Co-scheduling stays ahead of RRS at every sync rate (the barrier cost
/// itself hits every algorithm; what co-scheduling removes is the extra
/// wait behind a preempted lock holder).
#[test]
fn coscheduling_resists_sync_rate() {
    let util = |kind: &PolicyKind, sync: (u32, u32)| {
        run_metrics(config(4, &[2, 4], sync), kind, 13).avg_vcpu_utilization()
    };
    for sync in [(1, 5), (1, 3), (1, 2)] {
        let rrs = util(&PolicyKind::RoundRobin, sync);
        let scs = util(&PolicyKind::StrictCo, sync);
        let rcs = util(&PolicyKind::relaxed_co_default(), sync);
        assert!(
            scs >= rrs - 0.01 && rcs >= rrs - 0.01,
            "at sync {sync:?}: SCS {scs:.3} / RCS {rcs:.3} must not fall below RRS {rrs:.3}"
        );
    }
}

/// Extension: balance scheduling is as fair as RRS on the Figure 8 setup.
#[test]
fn balance_is_fair() {
    for pcpus in [1, 2, 4] {
        let m = run_metrics(config(pcpus, &[2, 1, 1], (1, 5)), &PolicyKind::Balance, 14);
        assert!(
            spread(&m.vcpu_availability) < 0.08,
            "balance spread at {pcpus} PCPUs: {:?}",
            m.vcpu_availability
        );
    }
}

/// Extension: the credit scheduler gives VMs (not VCPUs) equal shares, so a
/// 1-VCPU VM's single VCPU gets more time than each VCPU of a 3-VCPU VM.
#[test]
fn credit_shares_by_vm() {
    let m = run_metrics(
        config(2, &[3, 1], (1, 5)),
        &PolicyKind::credit_default(),
        15,
    );
    let smp_each = (m.vcpu_availability[0] + m.vcpu_availability[1] + m.vcpu_availability[2]) / 3.0;
    let lone = m.vcpu_availability[3];
    assert!(
        lone > smp_each * 1.5,
        "VM-proportional share: lone {lone:.3} vs SMP-each {smp_each:.3}"
    );
}

/// Extension: FCFS matches RRS fairness on symmetric saturated workloads.
#[test]
fn fcfs_fair_on_symmetric_load() {
    let m = run_metrics(config(2, &[1, 1, 1, 1], (1, 5)), &PolicyKind::Fcfs, 16);
    assert!(
        spread(&m.vcpu_availability) < 0.05,
        "{:?}",
        m.vcpu_availability
    );
}

/// Workload distribution sensitivity: the Figure 10 ordering holds for
/// other *low-variance* load distributions, not just the default uniform.
/// Two caveats, both quantified by the `abl_workload` ablation bench:
/// deterministic loads that divide the timeslice evenly are a degenerate
/// resonance (jobs never straddle a preemption, so RRS pays no sync
/// latency at all), and heavy-tailed loads (e.g. exponential) let long
/// sync jobs span multiple gang windows, eroding the co-scheduling edge.
#[test]
fn fig10_ordering_robust_to_load_distribution() {
    let dists = [
        Dist::uniform(8.0, 12.0).unwrap(),
        Dist::erlang(16, 10.0).unwrap(),
    ];
    for load in dists {
        let mk = || {
            let w = WorkloadSpec {
                load: load.clone(),
                sync_probability: 0.2,
                sync_mechanism: Default::default(),
                sync_every: None,
                interarrival: None,
            };
            let mut b = SystemConfig::builder().pcpus(4);
            for &n in &[2usize, 4] {
                b = b.vm_spec(VmSpec {
                    vcpus: n,
                    workload: w.clone(),
                    weight: 1,
                });
            }
            b.build().unwrap()
        };
        let rrs = run_metrics(mk(), &PolicyKind::RoundRobin, 17).avg_vcpu_utilization();
        let scs = run_metrics(mk(), &PolicyKind::StrictCo, 18).avg_vcpu_utilization();
        assert!(
            scs > rrs,
            "{load:?}: SCS ({scs:.3}) must beat RRS ({rrs:.3})"
        );
    }
}

/// Extension: the credit scheduler honours configured VM weights — a
/// weight-4 VM gets roughly four times the PCPU share of a weight-1 VM.
#[test]
fn credit_honours_vm_weights() {
    let cfg = SystemConfig::builder()
        .pcpus(1)
        .vm_weighted(1, 4)
        .vm_weighted(1, 1)
        .sync_ratio(1, 5)
        .build()
        .unwrap();
    let mut sim = DirectSim::new(cfg, PolicyKind::credit_default().create(), 19);
    sim.run(2_000).unwrap();
    sim.reset_metrics();
    sim.run(40_000).unwrap();
    let m = sim.metrics();
    let ratio = m.vcpu_availability[0] / m.vcpu_availability[1];
    assert!(
        (2.5..6.0).contains(&ratio),
        "weight-4 VM should get ~4x the share: {:?} (ratio {ratio:.2})",
        m.vcpu_availability
    );
}

/// Extensions: SEDF and BVT are fair on symmetric saturated loads and
/// honour VM weights (both derive shares from `VmSpec::weight`).
#[test]
fn sedf_and_bvt_are_fair_and_weight_aware() {
    for kind in [PolicyKind::sedf_default(), PolicyKind::bvt_default()] {
        // Fairness on equal weights.
        let m = run_metrics(config(2, &[1, 1, 1, 1], (1, 5)), &kind, 21);
        assert!(
            spread(&m.vcpu_availability) < 0.06,
            "{kind} unfair: {:?}",
            m.vcpu_availability
        );
        // Weight awareness: weight-3 VM vs weight-1 VM on one PCPU.
        let cfg = SystemConfig::builder()
            .pcpus(1)
            .vm_weighted(1, 3)
            .vm_weighted(1, 1)
            .sync_ratio(1, 5)
            .build()
            .unwrap();
        let mut sim = DirectSim::new(cfg, kind.create(), 22);
        sim.run(2_000).unwrap();
        sim.reset_metrics();
        sim.run(40_000).unwrap();
        let m = sim.metrics();
        let ratio = m.vcpu_availability[0] / m.vcpu_availability[1];
        assert!(
            ratio > 1.8,
            "{kind}: weight-3 VM should clearly out-earn weight-1: {:?} (ratio {ratio:.2})",
            m.vcpu_availability
        );
    }
}

/// Weight-oblivious policies (the paper trio) ignore VM weights entirely.
#[test]
fn paper_trio_ignores_weights() {
    for kind in PolicyKind::paper_trio() {
        let run = |w0: u32| {
            let cfg = SystemConfig::builder()
                .pcpus(1)
                .vm_weighted(1, w0)
                .vm_weighted(1, 1)
                .sync_ratio(1, 5)
                .build()
                .unwrap();
            let mut sim = DirectSim::new(cfg, kind.create(), 20);
            sim.run(10_000).unwrap();
            sim.metrics().vcpu_availability
        };
        assert_eq!(run(1), run(8), "{kind} must not consume weights");
    }
}

fn spread(xs: &[f64]) -> f64 {
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    let min = xs.iter().cloned().fold(f64::MAX, f64::min);
    max - min
}
