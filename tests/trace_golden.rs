//! Golden-trace regression tier: the churn fixture's metrics are pinned
//! bit-for-bit, the readers round-trip byte-stably, and malformed traces
//! fail with typed, `path:line`-annotated errors.
//!
//! To re-bless after an intentional semantic change:
//! `VSCHED_BLESS=1 cargo test -p vsched-trace --test trace_golden`

use std::path::Path;

use vsched_core::{Engine, PolicyKind};
use vsched_trace::{
    load_standard, load_trace, read_azure_csv, read_standard, read_standard_str, write_standard,
    TraceError, TraceExperiment, TraceMeta,
};

const FIXTURE_SMALL: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../configs/traces/churn_small.jsonl"
);
const FIXTURE_CSV: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../configs/traces/lifetimes.csv"
);
const FIXTURE_1000: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../configs/traces/churn_1000vm.jsonl"
);
const SNAPSHOT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/trace_churn.json"
);

#[derive(serde::Serialize)]
struct EngineSnapshot {
    fingerprint: String,
    mean_observations: Vec<f64>,
}

#[derive(serde::Serialize)]
struct Snapshot {
    schedule: String,
    direct: EngineSnapshot,
    san: EngineSnapshot,
}

fn golden_json() -> String {
    let schedule = load_standard(Path::new(FIXTURE_SMALL)).expect("fixture compiles");
    let run = |engine| {
        let r = TraceExperiment::new(schedule.clone(), PolicyKind::RoundRobin)
            .engine(engine)
            .horizon(600)
            .seed(7)
            .replications(2)
            .run()
            .unwrap();
        EngineSnapshot {
            fingerprint: format!("{:016x}", r.fingerprint),
            mean_observations: r.mean_observations(),
        }
    };
    let snapshot = Snapshot {
        schedule: schedule.describe(),
        direct: run(Engine::Direct),
        san: run(Engine::San),
    };
    let mut s = serde_json::to_string_pretty(&snapshot).expect("report serializes");
    s.push('\n');
    s
}

#[test]
fn churn_fixture_metrics_match_snapshot() {
    let actual = golden_json();
    if std::env::var_os("VSCHED_BLESS").is_some() {
        std::fs::write(SNAPSHOT, &actual).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(SNAPSHOT)
        .expect("snapshot missing: run with VSCHED_BLESS=1 to create it");
    assert_eq!(
        actual, expected,
        "churn-trace metrics drifted from the golden snapshot; \
         if intentional, re-bless with VSCHED_BLESS=1"
    );
}

#[test]
fn standard_fixture_round_trips_byte_stably() {
    let (meta, events) = read_standard(Path::new(FIXTURE_SMALL)).unwrap();
    let raw: Vec<_> = events.iter().map(|(_, e)| e.clone()).collect();
    let text = write_standard(&meta, &raw);
    let (meta2, events2) = read_standard_str(&text, "round-trip").unwrap();
    assert_eq!(meta2, meta);
    let raw2: Vec<_> = events2.into_iter().map(|(_, e)| e).collect();
    assert_eq!(raw2, raw);
    assert_eq!(write_standard(&meta2, &raw2), text);
}

#[test]
fn azure_fixture_compiles_and_loads_by_extension() {
    let events = read_azure_csv(Path::new(FIXTURE_CSV)).unwrap();
    assert_eq!(events.len(), 8 + 4, "8 arrivals, 4 departures");
    let schedule = load_trace(Path::new(FIXTURE_CSV), &TraceMeta::new(8)).unwrap();
    assert_eq!(schedule.vm_names().len(), 8);
    assert_eq!(
        schedule.initially_present().iter().filter(|&&p| p).count(),
        3
    );
    assert_eq!(schedule.end_time(), 900);
}

#[test]
fn churn_1000vm_fixture_compiles_at_scale() {
    let schedule = load_standard(Path::new(FIXTURE_1000)).expect("1000-VM fixture compiles");
    assert_eq!(schedule.vm_names().len(), 1000);
    assert_eq!(schedule.config().pcpus(), 256);
    assert!(
        schedule.events().len() > 1000,
        "churn events survived compilation: {}",
        schedule.events().len()
    );
}

#[test]
fn malformed_traces_fail_with_typed_annotated_errors() {
    let header = "{\"meta\":{\"pcpus\":2}}\n";

    // Bad timestamp type → parse error naming the line.
    let text = format!("{header}{{\"time\":-5,\"vm\":\"a\",\"depart\":true}}\n");
    let err = read_standard_str(&text, "bad.jsonl").unwrap_err();
    assert!(matches!(err, TraceError::Parse { line: 2, .. }), "{err}");
    assert!(err.to_string().contains("bad.jsonl:2"), "{err}");

    let compile = |body: &str| -> TraceError {
        let text = format!("{header}{body}");
        let (meta, events) = read_standard_str(&text, "bad.jsonl").unwrap();
        vsched_trace::TraceSchedule::compile(&meta, &events, "bad.jsonl").unwrap_err()
    };

    // Out-of-order events.
    let err = compile(
        "{\"time\":10,\"vm\":\"a\",\"arrive\":{\"vcpus\":1}}\n\
         {\"time\":3,\"vm\":\"b\",\"arrive\":{\"vcpus\":1}}\n",
    );
    assert!(
        matches!(err, TraceError::OutOfOrder { line: 3, .. }),
        "{err}"
    );
    assert!(err.to_string().contains("bad.jsonl:3"), "{err}");

    // Unknown VM id.
    let err = compile("{\"time\":0,\"vm\":\"ghost\",\"set_load\":500}\n");
    assert!(
        matches!(err, TraceError::UnknownVm { line: 2, .. }),
        "{err}"
    );

    // Departure before arrival.
    let err = compile("{\"time\":0,\"vm\":\"a\",\"depart\":true}\n");
    assert!(
        matches!(
            err,
            TraceError::UnknownVm { .. } | TraceError::DepartureBeforeArrival { .. }
        ),
        "{err}"
    );
    let err = compile(
        "{\"time\":0,\"vm\":\"a\",\"arrive\":{\"vcpus\":1}}\n\
         {\"time\":5,\"vm\":\"a\",\"depart\":true}\n\
         {\"time\":9,\"vm\":\"a\",\"depart\":true}\n",
    );
    assert!(
        matches!(err, TraceError::DepartureBeforeArrival { line: 4, .. }),
        "{err}"
    );
    assert!(err.to_string().contains("bad.jsonl:4"), "{err}");

    // Two actions in one record.
    let err = compile("{\"time\":0,\"vm\":\"a\",\"arrive\":{\"vcpus\":1},\"depart\":true}\n");
    assert!(
        matches!(err, TraceError::BadRecord { line: 2, .. }),
        "{err}"
    );
}
