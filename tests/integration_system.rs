//! End-to-end tests through the public API, including property-based tests
//! over random system configurations.

use proptest::prelude::*;
use vsched_core::{
    direct::DirectSim, san_model::SanSystem, Engine, ExperimentBuilder, PolicyKind, SystemConfig,
};

mod common;
use common::config;

fn all_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::RoundRobin,
        PolicyKind::StrictCo,
        PolicyKind::relaxed_co_default(),
        PolicyKind::Balance,
        PolicyKind::credit_default(),
        PolicyKind::sedf_default(),
        PolicyKind::bvt_default(),
        PolicyKind::Fcfs,
    ]
}

#[test]
fn quickstart_flow_works() {
    let cfg = config(2, &[2, 1, 1]);
    let report = ExperimentBuilder::new(cfg, PolicyKind::RoundRobin)
        .engine(Engine::Direct)
        .warmup(500)
        .horizon(5_000)
        .replications_exact(3)
        .run()
        .unwrap();
    assert_eq!(report.vcpu_availability.len(), 4);
    // 4 saturated VCPUs on 2 PCPUs under RRS: each gets about half.
    for ci in &report.vcpu_availability {
        assert!((ci.mean - 0.5).abs() < 0.05, "{ci}");
    }
}

#[test]
fn every_policy_runs_on_both_engines() {
    let cfg = config(2, &[2, 1]);
    for kind in all_policies() {
        let mut direct = DirectSim::new(cfg.clone(), kind.create(), 7);
        direct
            .run(2_000)
            .unwrap_or_else(|e| panic!("{kind}: direct engine failed: {e}"));
        let mut san = SanSystem::new(cfg.clone(), kind.create(), 7).unwrap();
        san.run(2_000)
            .unwrap_or_else(|e| panic!("{kind}: SAN engine failed: {e}"));
        for m in [direct.metrics(), san.metrics()] {
            for x in m.to_observations() {
                assert!((0.0..=1.0).contains(&x), "{kind}: metric {x} out of range");
            }
        }
    }
}

/// Total PCPU-time handed out equals total VCPU-ACTIVE time: every ACTIVE
/// VCPU occupies exactly one PCPU, so the sums must agree exactly.
#[test]
fn pcpu_vcpu_time_conservation() {
    for kind in all_policies() {
        let cfg = config(3, &[2, 2, 1]);
        let mut sim = DirectSim::new(cfg, kind.create(), 11);
        sim.run(5_000).unwrap();
        let m = sim.metrics();
        let pcpu_time: f64 = m.pcpu_utilization.iter().sum();
        let vcpu_time: f64 = m.vcpu_availability.iter().sum();
        assert!(
            (pcpu_time - vcpu_time).abs() < 1e-9,
            "{kind}: conservation violated: {pcpu_time} vs {vcpu_time}"
        );
    }
}

#[test]
fn utilization_is_a_valid_ratio_of_scheduled_time() {
    for kind in all_policies() {
        let cfg = config(2, &[2, 2]);
        let mut sim = DirectSim::new(cfg, kind.create(), 13);
        sim.run(5_000).unwrap();
        let m = sim.metrics();
        for (a, u) in m.vcpu_availability.iter().zip(&m.vcpu_utilization) {
            assert!((0.0..=1.0).contains(u), "{kind}: utilization {u}");
            if *a == 0.0 {
                assert_eq!(*u, 0.0, "{kind}: never-scheduled VCPU has zero utilization");
            }
        }
    }
}

#[test]
fn more_pcpus_never_reduce_availability() {
    // Under RRS, adding PCPUs weakly increases every VCPU's availability.
    let mut last_avg = 0.0;
    for pcpus in 1..=4 {
        let cfg = config(pcpus, &[2, 1, 1]);
        let mut sim = DirectSim::new(cfg, PolicyKind::RoundRobin.create(), 17);
        sim.run(20_000).unwrap();
        let avg = sim.metrics().avg_vcpu_availability();
        assert!(
            avg >= last_avg - 0.01,
            "availability regressed at {pcpus} PCPUs: {avg} < {last_avg}"
        );
        last_avg = avg;
    }
    assert!(
        last_avg > 0.95,
        "4 PCPUs serve 4 VCPUs fully, got {last_avg}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random small system, any policy, both engines: no panics, no
    /// policy violations, all metrics in range, conservation holds.
    #[test]
    fn random_systems_run_clean(
        pcpus in 1usize..5,
        vm_sizes in proptest::collection::vec(1usize..4, 1..4),
        policy_idx in 0usize..8,
        seed in 0u64..1_000,
    ) {
        let kind = all_policies().remove(policy_idx);
        let mut b = SystemConfig::builder().pcpus(pcpus);
        for &n in &vm_sizes {
            b = b.vm(n);
        }
        let cfg = b.build().unwrap();

        let mut direct = DirectSim::new(cfg.clone(), kind.create(), seed);
        direct.run(500).unwrap();
        let dm = direct.metrics();
        for x in dm.to_observations() {
            prop_assert!((0.0..=1.0).contains(&x));
        }
        let pcpu_time: f64 = dm.pcpu_utilization.iter().sum();
        let vcpu_time: f64 = dm.vcpu_availability.iter().sum();
        prop_assert!((pcpu_time - vcpu_time).abs() < 1e-9);

        let mut san = SanSystem::new(cfg, kind.create(), seed).unwrap();
        san.run(500).unwrap();
        let sm = san.metrics();
        for x in sm.to_observations() {
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }

    /// The scheduler never over-commits: average availability is bounded by
    /// the PCPU-to-VCPU ratio.
    #[test]
    fn availability_bounded_by_resources(
        pcpus in 1usize..4,
        vm_sizes in proptest::collection::vec(1usize..4, 1..3),
        seed in 0u64..100,
    ) {
        let mut b = SystemConfig::builder().pcpus(pcpus);
        for &n in &vm_sizes {
            b = b.vm(n);
        }
        let cfg = b.build().unwrap();
        let total_vcpus: usize = vm_sizes.iter().sum();
        let mut sim = DirectSim::new(cfg, PolicyKind::RoundRobin.create(), seed);
        sim.run(2_000).unwrap();
        let bound = (pcpus as f64 / total_vcpus as f64).min(1.0);
        prop_assert!(sim.metrics().avg_vcpu_availability() <= bound + 1e-9);
    }
}
