//! Fuzz tier: the `vsched-check` subsystem hunting real and planted bugs.
//!
//! Three claims are exercised end to end:
//!
//! 1. the invariant checker **catches planted scheduler bugs** — a
//!    deliberately broken Strict Co-Scheduling variant that starts
//!    partial gangs trips the gang-atomicity invariant within a few
//!    hundred ticks (while real SCS sails through the same check);
//! 2. a short fuzz sweep with the **full oracle** (invariants,
//!    engine-vs-engine differential, parallel determinism, metamorphic
//!    relations) is clean on the healthy engines;
//! 3. **reproducers replay bit-identically**: a failure written to disk
//!    and replayed twice produces equal outcomes, down to the report
//!    digest.

use std::cell::RefCell;
use std::rc::Rc;

use vsched_check::fuzz::replay;
use vsched_check::oracle::FailureKind;
use vsched_check::{run_fuzz, FuzzOpts, InvariantChecker, OracleOpts};
use vsched_core::direct::DirectSim;
use vsched_core::sched::{ScheduleDecision, SchedulingPolicy};
use vsched_core::{CoreError, PcpuView, PolicyKind, SystemConfig, VcpuView};

/// Strict co-scheduling with the co-start gate removed: it assigns any
/// INACTIVE gang member to any idle PCPU, so a gang can start (and stop)
/// piecemeal — exactly the bug SCS exists to prevent.
#[derive(Default)]
struct BrokenScs;

impl SchedulingPolicy for BrokenScs {
    fn name(&self) -> &str {
        "broken-scs"
    }

    fn schedule(
        &mut self,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
        timestamp: u64,
        default_timeslice: u64,
    ) -> ScheduleDecision {
        let mut decision = ScheduleDecision::none();
        let mut idle: Vec<usize> = pcpus.iter().filter(|p| p.is_idle()).map(|p| p.id).collect();
        // Rotating start index — "fairness" that hands PCPUs to whichever
        // VCPUs come first, siblings or not.
        let n = vcpus.len();
        for i in 0..n {
            let v = &vcpus[(timestamp as usize + i) % n];
            if v.is_schedulable() {
                if let Some(pcpu) = idle.pop() {
                    decision.assign(v.id.global, pcpu, default_timeslice);
                }
            }
        }
        decision
    }
}

fn gang_config() -> SystemConfig {
    // 2 PCPUs, a 2-VCPU VM and a 1-VCPU VM: only one of the three VCPUs
    // can wait at a time, so a greedy scheduler is forced to split the
    // gang almost immediately.
    SystemConfig::builder()
        .pcpus(2)
        .vm(2)
        .vm(1)
        .timeslice(5)
        .sync_ratio(1, 4)
        .build()
        .unwrap()
}

#[test]
fn checker_catches_a_broken_scs_policy() {
    let config = gang_config();
    let ck = Rc::new(RefCell::new(
        InvariantChecker::new(&config).expect_gang_atomicity(),
    ));
    let mut sim = DirectSim::new(config, Box::new(BrokenScs), 7);
    sim.attach_observer(Box::new(Rc::clone(&ck)));
    let err = sim
        .run(500)
        .expect_err("partial gang starts must be caught");
    match err {
        CoreError::InvariantViolation {
            invariant, tick, ..
        } => {
            assert_eq!(invariant, "gang-atomicity");
            assert!(tick >= 1);
            assert_eq!(ck.borrow().ticks_checked() + 1, tick);
        }
        other => panic!("expected a gang-atomicity violation, got {other}"),
    }
}

#[test]
fn real_scs_passes_the_same_check() {
    let config = gang_config();
    let ck = Rc::new(RefCell::new(InvariantChecker::for_policy(
        &config,
        &PolicyKind::StrictCo,
    )));
    let mut sim = DirectSim::new(config, PolicyKind::StrictCo.create(), 7);
    sim.attach_observer(Box::new(Rc::clone(&ck)));
    sim.run(500).unwrap();
    assert_eq!(ck.borrow().ticks_checked(), 500);
}

#[test]
fn full_oracle_fuzz_sweep_is_clean() {
    let report = run_fuzz(&FuzzOpts {
        cases: 12,
        seed: 42,
        jobs: None,
        reproducer_dir: None,
        oracle: OracleOpts::default(),
    })
    .unwrap();
    assert!(
        report.clean(),
        "healthy engines must survive the full oracle: {:#?}",
        report.failures
    );
    assert_eq!(
        report.summary(),
        "fuzz: 12 cases, 0 lint findings, 0 invariant violations, \
         0 differential mismatches, 0 metamorphic mismatches, \
         0 incremental divergences, 0 sharded divergences, \
         0 env divergences, 0 trace divergences, 0 errors"
    );
}

#[test]
fn reproducers_replay_bit_identically() {
    let dir = std::env::temp_dir().join(format!("vsched-fuzz-repro-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // An impossible tolerance turns every differential comparison into a
    // "failure", exercising the shrink + reproducer path on healthy
    // engines without having to plant a bug inside them.
    let impossible = OracleOpts {
        tol_floor: -1.0,
        ci_factor: 0.0,
        check_invariants: false,
        check_parallel_determinism: false,
        check_metamorphic: false,
        // The trace verdict shares compare_reports, so the impossible
        // tolerance would drown the Differential-only assertion below
        // in Trace failures for traced cases.
        check_trace: false,
        ..OracleOpts::default()
    };
    let report = run_fuzz(&FuzzOpts {
        cases: 2,
        seed: 42,
        jobs: Some(1),
        reproducer_dir: Some(dir.clone()),
        oracle: impossible.clone(),
    })
    .unwrap();
    assert_eq!(report.failures.len(), 2);
    assert!(report.differential_mismatches > 0);
    assert!(report.failures.iter().all(|f| f
        .outcome
        .failures
        .iter()
        .all(|x| x.kind == FailureKind::Differential)));

    let path = report.failures[0]
        .reproducer
        .clone()
        .expect("reproducer written");
    assert!(path.exists());

    // Replays recompute the outcome from the file alone; two replays (and
    // the recorded shrunk outcome) must agree exactly, digest included.
    let first = replay(&path, &impossible).unwrap();
    let second = replay(&path, &impossible).unwrap();
    assert_eq!(first, second);
    assert_eq!(first.digest, report.failures[0].outcome.digest);
    assert_eq!(
        first.failures.len(),
        report.failures[0].outcome.failures.len()
    );

    // The same file judged by sane tolerances is clean — the failure
    // lived in the oracle options, not the engines.
    let sane = replay(&path, &OracleOpts::default()).unwrap();
    assert!(sane.passed(), "{:?}", sane.failures);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replay_of_a_bad_path_is_a_typed_error() {
    let err = replay(
        std::path::Path::new("/nonexistent/vsched/case-0.json"),
        &OracleOpts::default(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("case-0.json"));
}
