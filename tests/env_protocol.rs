//! Protocol robustness: every way a remote agent can misbehave becomes a
//! typed [`PolicyFault`] that fails the episode — never a crash, hang,
//! or process abort. Agents here are deliberately hostile `sh` one-liners.

use std::time::Duration;

use vsched_core::{Engine, ScheduleDecision, SystemConfig};
use vsched_env::{
    run_remote_episode, serve, Env, EpisodeError, LineTransport, Message, PolicyFault,
    RemotePolicy, Scenario, PROTO_VERSION,
};

fn scenario() -> Scenario {
    let config = SystemConfig::builder().pcpus(2).vm(2).build().unwrap();
    Scenario::new(config)
        .engine(Engine::Direct)
        .warmup(5)
        .horizon(20)
}

const TIMEOUT: Duration = Duration::from_secs(5);

fn spawn_agent(script: &str) -> Result<RemotePolicy, PolicyFault> {
    RemotePolicy::spawn(script, "protocol-test", TIMEOUT)
}

/// A well-behaved do-nothing agent in shell: replies to the handshake,
/// then answers every observation with an empty decision.
const NOOP_AGENT: &str = r#"
read hello
echo '{"hello":{"proto":1,"role":"agent","name":"sh-noop","fields":[]}}'
while read line; do
  case "$line" in
    *'"done":true'*) break;;
    *'"obs"'*) echo '{"act":{"preemptions":[],"assignments":[]}}';;
  esac
done
"#;

#[test]
fn a_wellbehaved_shell_agent_completes_an_episode() {
    let mut agent = spawn_agent(NOOP_AGENT).unwrap();
    assert_eq!(agent.name(), "sh-noop");
    let mut env = Env::new(scenario()).fields(agent.fields());
    let run = run_remote_episode(&mut env, &mut agent, 7).unwrap();
    assert_eq!(run.actions.len(), 25);
    assert!(run.actions.iter().all(|a| a.assignments.is_empty()));
}

#[test]
fn garbage_bytes_are_a_parse_fault() {
    let err = spawn_agent("echo 'this is not json'; sleep 5").unwrap_err();
    match err {
        PolicyFault::Parse { line, .. } => assert!(line.contains("not json"), "{line}"),
        other => panic!("expected Parse, got {other}"),
    }
}

#[test]
fn non_protocol_json_is_a_parse_fault() {
    let err = spawn_agent(r#"echo '{"frobnicate": 1}'; sleep 5"#).unwrap_err();
    assert!(matches!(err, PolicyFault::Parse { .. }), "{err}");
}

#[test]
fn a_wrong_protocol_version_is_rejected() {
    let err = spawn_agent(
        r#"echo '{"hello":{"proto":99,"role":"agent","name":"future","fields":[]}}'; sleep 5"#,
    )
    .unwrap_err();
    assert_eq!(
        err,
        PolicyFault::WrongVersion {
            got: 99,
            want: PROTO_VERSION
        }
    );
}

#[test]
fn an_undeclared_field_name_is_a_handshake_fault() {
    let err = spawn_agent(
        r#"echo '{"hello":{"proto":1,"role":"agent","name":"x","fields":["secret_sauce"]}}'; sleep 5"#,
    )
    .unwrap_err();
    match err {
        PolicyFault::Handshake(msg) => assert!(msg.contains("secret_sauce"), "{msg}"),
        other => panic!("expected Handshake, got {other}"),
    }
}

#[test]
fn a_stalled_agent_times_out_without_hanging_the_host() {
    let err =
        RemotePolicy::spawn("sleep 600", "protocol-test", Duration::from_millis(200)).unwrap_err();
    assert_eq!(err, PolicyFault::Timeout { after_ms: 200 });
}

#[test]
fn an_agent_that_hangs_up_is_an_eof_fault() {
    let err = spawn_agent("exit 0").unwrap_err();
    assert_eq!(err, PolicyFault::Eof);
}

#[test]
fn an_illegal_action_forfeits_the_episode_as_a_typed_fault() {
    // Handshakes fine, then assigns the same VCPU to both PCPUs.
    let script = r#"
read hello
echo '{"hello":{"proto":1,"role":"agent","name":"cheater","fields":[]}}'
while read line; do
  case "$line" in
    *'"obs"'*) echo '{"act":{"preemptions":[],"assignments":[{"vcpu":0,"pcpu":0,"timeslice":5},{"vcpu":0,"pcpu":1,"timeslice":5}]}}';;
  esac
done
"#;
    let mut agent = spawn_agent(script).unwrap();
    let mut env = Env::new(scenario())
        .fields(agent.fields())
        .agent_name("cheater");
    match run_remote_episode(&mut env, &mut agent, 7) {
        Err(EpisodeError::Fault(PolicyFault::IllegalAction(msg))) => {
            assert!(msg.contains("cheater"), "{msg}");
        }
        other => panic!("expected IllegalAction forfeit, got {other:?}"),
    }
    // The environment survives the forfeit and can run a fresh episode.
    let mut good = spawn_agent(NOOP_AGENT).unwrap();
    assert!(run_remote_episode(&mut env, &mut good, 7).is_ok());
}

#[test]
fn an_agent_error_reply_is_an_agent_fault() {
    let script = r#"
read hello
echo '{"hello":{"proto":1,"role":"agent","name":"quitter","fields":[]}}'
read obs
echo '{"error":{"message":"out of ideas"}}'
sleep 5
"#;
    let mut agent = spawn_agent(script).unwrap();
    let mut env = Env::new(scenario()).fields(agent.fields());
    match run_remote_episode(&mut env, &mut agent, 7) {
        Err(EpisodeError::Fault(PolicyFault::Agent(msg))) => {
            assert!(msg.contains("out of ideas"), "{msg}");
        }
        other => panic!("expected Agent fault, got {other:?}"),
    }
}

/// The agent-hosts-env direction over a socket pair: a client drives two
/// episodes (one clean, one failed by an illegal action) and the serving
/// side survives both.
#[test]
fn serve_hosts_episodes_and_survives_client_faults() {
    let (server_sock, client_sock) = std::os::unix::net::UnixStream::pair().unwrap();
    let scen = scenario();
    let server = std::thread::spawn(move || {
        let mut transport = LineTransport::from_unix(server_sock, Some(TIMEOUT)).unwrap();
        serve(&mut transport, &scen, "serve-test").unwrap()
    });

    let mut client = LineTransport::from_unix(client_sock, Some(TIMEOUT)).unwrap();
    // Handshake: env hello arrives first, client replies.
    match client.recv().unwrap() {
        Message::Hello { proto, role, .. } => {
            assert_eq!(proto, PROTO_VERSION);
            assert_eq!(role, "env");
        }
        other => panic!("expected env hello, got {other:?}"),
    }
    client
        .send(&Message::Hello {
            proto: PROTO_VERSION,
            role: "agent".to_string(),
            name: "driver".to_string(),
            fields: vec!["remaining_load".to_string()],
        })
        .unwrap();

    // An act before any reset is reported, not fatal.
    client
        .send(&Message::act(&ScheduleDecision::none()))
        .unwrap();
    assert!(matches!(client.recv().unwrap(), Message::Error { .. }));

    // Episode 1: drive to completion with empty decisions.
    client.send(&Message::Reset { seed: 3 }).unwrap();
    let mut steps = 0;
    loop {
        match client.recv().unwrap() {
            Message::Obs {
                done, observation, ..
            } => {
                assert_eq!(observation.fields, vec!["remaining_load".to_string()]);
                if done {
                    break;
                }
                steps += 1;
                client
                    .send(&Message::act(&ScheduleDecision::none()))
                    .unwrap();
            }
            other => panic!("expected obs, got {other:?}"),
        }
    }
    assert_eq!(steps, 25);

    // Episode 2: an illegal action fails the episode with an error reply.
    client.send(&Message::Reset { seed: 4 }).unwrap();
    assert!(matches!(client.recv().unwrap(), Message::Obs { .. }));
    let mut bad = ScheduleDecision::none();
    bad.assign(0, 0, 5);
    bad.assign(0, 1, 5);
    client.send(&Message::act(&bad)).unwrap();
    match client.recv().unwrap() {
        Message::Error { message } => assert!(message.contains("illegal action"), "{message}"),
        other => panic!("expected error, got {other:?}"),
    }

    // The session still serves: a fresh reset works, then goodbye.
    client.send(&Message::Reset { seed: 5 }).unwrap();
    assert!(matches!(client.recv().unwrap(), Message::Obs { .. }));
    client.send(&Message::Bye).unwrap();

    let stats = server.join().unwrap();
    assert_eq!(stats.episodes, 1);
    assert_eq!(stats.faults, 1);
}
