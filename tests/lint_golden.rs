//! Golden diagnostics test: the deliberately broken fixture's JSON lint
//! report is pinned byte-for-byte.
//!
//! The analyzer is deterministic per seed, and the vendored JSON writer
//! preserves insertion order, so any change to the lint catalogue, the
//! report shape, or the exploration logic that shifts this output must
//! re-bless the snapshot — a deliberate, reviewed act.
//!
//! To re-bless after an intentional change:
//! `VSCHED_BLESS=1 cargo test -p vsched-analyze --test lint_golden`

use vsched_analyze::{lint_broken_fixture, AnalyzeOpts};

const SNAPSHOT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/lint_broken.json"
);

fn report_json() -> String {
    let report = lint_broken_fixture(&AnalyzeOpts::default());
    let mut s = serde_json::to_string_pretty(&report.to_json()).expect("report serializes");
    s.push('\n');
    s
}

#[test]
fn broken_fixture_report_matches_snapshot() {
    let actual = report_json();
    if std::env::var_os("VSCHED_BLESS").is_some() {
        std::fs::write(SNAPSHOT, &actual).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(SNAPSHOT)
        .expect("snapshot missing: run with VSCHED_BLESS=1 to create it");
    assert_eq!(
        actual, expected,
        "lint report for the broken fixture drifted from the golden snapshot; \
         if intentional, re-bless with VSCHED_BLESS=1"
    );
}

/// The snapshot itself must pin the two planted defects, so a bad bless
/// can't silently neuter the fixture.
#[test]
fn snapshot_pins_planted_defects() {
    let actual = report_json();
    assert!(actual.contains("\"dead-activity\""), "{actual}");
    assert!(actual.contains("\"nonconserving-gate\""), "{actual}");
    assert!(actual.contains("\"token-conservation\""), "{actual}");
}
