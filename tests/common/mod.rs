//! Shared configuration builders for the repo-root test tiers.
//!
//! Every integration suite used to re-declare these; they live here once
//! now. Each test binary compiles this file independently via
//! `mod common;`, so helpers unused by a given suite are expected.
#![allow(dead_code)]

use vsched_core::{SystemConfig, VmSpec, WorkloadSpec};

/// A system with default (paper) workloads: `vm_sizes[i]` VCPUs per VM.
pub fn config(pcpus: usize, vm_sizes: &[usize]) -> SystemConfig {
    let mut b = SystemConfig::builder().pcpus(pcpus);
    for &n in vm_sizes {
        b = b.vm(n);
    }
    b.build().unwrap()
}

/// Like [`config`], with an explicit `points:per_workloads` sync ratio.
pub fn config_sync(pcpus: usize, vm_sizes: &[usize], sync: (u32, u32)) -> SystemConfig {
    let mut b = SystemConfig::builder()
        .pcpus(pcpus)
        .sync_ratio(sync.0, sync.1);
    for &n in vm_sizes {
        b = b.vm(n);
    }
    b.build().unwrap()
}

/// Like [`config`], with the same explicit workload on every VM.
pub fn config_workload(pcpus: usize, vm_sizes: &[usize], workload: &WorkloadSpec) -> SystemConfig {
    let mut b = SystemConfig::builder().pcpus(pcpus);
    for &n in vm_sizes {
        b = b.vm_spec(VmSpec {
            vcpus: n,
            workload: workload.clone(),
            weight: 1,
        });
    }
    b.build().unwrap()
}
