//! Tests for the spinlock synchronization extension (the paper's §V(ii)
//! future-work item): critical sections guarded by a per-VM lock, the
//! lock-holder-preemption problem, and the spin metric.

use vsched_core::{
    direct::DirectSim, san_model::SanSystem, PolicyKind, SystemConfig, VcpuStatus, VmSpec,
    WorkloadSpec,
};
use vsched_des::Dist;

fn spinlock_workload(load: Dist, sync_probability: f64) -> WorkloadSpec {
    WorkloadSpec {
        load,
        sync_probability,
        sync_mechanism: Default::default(),
        sync_every: None,
        interarrival: None,
    }
    .with_spinlock()
}

mod common;
use common::config_workload as config;

/// Mutual exclusion: among BUSY critical-section jobs of one VM, at most
/// one makes progress per tick; the others spin.
#[test]
fn lock_is_mutually_exclusive() {
    let w = spinlock_workload(Dist::deterministic(8.0).unwrap(), 1.0);
    let cfg = config(3, &[3], &w);
    let mut sim = DirectSim::new(cfg, PolicyKind::RoundRobin.create(), 1);
    let mut last: Option<Vec<u64>> = None;
    for _ in 0..200 {
        sim.tick().unwrap();
        let views = sim.vcpu_views();
        let loads: Vec<u64> = views.iter().map(|v| v.remaining_load).collect();
        if let Some(prev) = &last {
            let progressed = views
                .iter()
                .enumerate()
                .filter(|(g, v)| v.sync_point && loads[*g] < prev[*g])
                .count();
            assert!(
                progressed <= 1,
                "two critical sections progressed in one tick: {prev:?} -> {loads:?}"
            );
        }
        last = Some(loads);
    }
}

/// With every job a critical section, a 3-VCPU VM on 3 dedicated PCPUs
/// serializes: ~1/3 useful work, ~2/3 spinning.
#[test]
fn full_contention_serializes_the_vm() {
    let w = spinlock_workload(Dist::deterministic(8.0).unwrap(), 1.0);
    let cfg = config(3, &[3], &w);
    let mut sim = DirectSim::new(cfg, PolicyKind::RoundRobin.create(), 2);
    sim.run(2_000).unwrap();
    sim.reset_metrics();
    sim.run(20_000).unwrap();
    let m = sim.metrics();
    let util = m.avg_vcpu_utilization();
    let spin = m.avg_vcpu_spin();
    assert!((util - 1.0 / 3.0).abs() < 0.05, "useful ≈ 1/3, got {util}");
    assert!((spin - 2.0 / 3.0).abs() < 0.05, "spin ≈ 2/3, got {spin}");
    assert!(m.avg_vcpu_availability() > 0.99, "dedicated PCPUs");
}

/// Spinlock mode never blocks the VM: generation continues and all VCPUs
/// stay loaded (unlike barriers, where siblings idle READY).
#[test]
fn spinlock_mode_never_blocks_vm() {
    let w = spinlock_workload(Dist::uniform(5.0, 15.0).unwrap(), 0.5);
    let cfg = config(2, &[2], &w);
    let mut sim = DirectSim::new(cfg, PolicyKind::RoundRobin.create(), 3);
    for _ in 0..500 {
        sim.tick().unwrap();
        assert!(!sim.vm_blocked(0), "spinlock VMs do not use the barrier");
    }
    // Everyone is BUSY (possibly spinning) — never READY-idle.
    let views = sim.vcpu_views();
    assert!(views
        .iter()
        .all(|v| v.status == VcpuStatus::Busy || v.status == VcpuStatus::Inactive));
}

/// Barrier-mode workloads report zero spin.
#[test]
fn barrier_mode_has_zero_spin() {
    let cfg = SystemConfig::builder()
        .pcpus(2)
        .vm(2)
        .vm(2)
        .sync_ratio(1, 3)
        .build()
        .unwrap();
    let mut sim = DirectSim::new(cfg, PolicyKind::RoundRobin.create(), 4);
    sim.run(5_000).unwrap();
    let m = sim.metrics();
    assert!(m.vcpu_spin.iter().all(|&s| s == 0.0), "{m:?}");
}

/// The §II.B story: under round-robin, a preempted lock holder leaves its
/// siblings spinning for whole timeslices; strict co-scheduling removes
/// almost all of that spin because holder and spinners run together.
#[test]
fn lock_holder_preemption_hurts_rrs_not_scs() {
    let w = spinlock_workload(Dist::uniform(5.0, 15.0).unwrap(), 0.3);
    let run = |kind: &PolicyKind, seed: u64| {
        // Oversubscribed: a 4-VCPU spinlock VM and a 2-VCPU neighbour on 4
        // PCPUs, so the holder gets preempted regularly.
        let cfg = config(4, &[4, 2], &w);
        let mut sim = DirectSim::new(cfg, kind.create(), seed);
        sim.run(2_000).unwrap();
        sim.reset_metrics();
        sim.run(30_000).unwrap();
        sim.metrics().avg_vcpu_spin()
    };
    let rrs_spin = run(&PolicyKind::RoundRobin, 5);
    let scs_spin = run(&PolicyKind::StrictCo, 5);
    // Both pay the *intrinsic* contention of concurrent critical sections;
    // RRS pays the lock-holder-preemption spin on top.
    assert!(
        rrs_spin > scs_spin + 0.02,
        "RRS spin {rrs_spin:.3} must exceed SCS spin {scs_spin:.3} by the \
         holder-preemption surcharge"
    );
}

/// Balance scheduling (whose motivation in Sukwong & Kim is exactly the
/// spinlock stacking problem) must also reduce spin relative to RRS.
#[test]
fn relaxed_co_reduces_spin_vs_rrs() {
    let w = spinlock_workload(Dist::uniform(5.0, 15.0).unwrap(), 0.3);
    let run = |kind: &PolicyKind| {
        let cfg = config(4, &[4, 2], &w);
        let mut sim = DirectSim::new(cfg, kind.create(), 6);
        sim.run(2_000).unwrap();
        sim.reset_metrics();
        sim.run(30_000).unwrap();
        sim.metrics().avg_vcpu_spin()
    };
    let rrs = run(&PolicyKind::RoundRobin);
    let rcs = run(&PolicyKind::relaxed_co_default());
    assert!(
        rcs < rrs,
        "RCS spin {rcs:.3} must be below RRS spin {rrs:.3}"
    );
}

/// Both engines implement the same spinlock semantics.
#[test]
fn engines_agree_on_spinlock_metrics() {
    let w = spinlock_workload(Dist::uniform(5.0, 15.0).unwrap(), 0.4);
    let cfg = config(2, &[3], &w);
    let run_direct = |seed: u64| {
        let mut sim = DirectSim::new(cfg.clone(), PolicyKind::RoundRobin.create(), seed);
        sim.run(1_000).unwrap();
        sim.reset_metrics();
        sim.run(10_000).unwrap();
        sim.metrics()
    };
    let run_san = |seed: u64| {
        let mut sys = SanSystem::new(cfg.clone(), PolicyKind::RoundRobin.create(), seed).unwrap();
        sys.run(1_000).unwrap();
        sys.reset_metrics();
        sys.run(10_000).unwrap();
        sys.metrics()
    };
    let avg = |xs: Vec<vsched_core::SampleMetrics>| {
        let n = xs.len() as f64;
        (
            xs.iter().map(|m| m.avg_vcpu_utilization()).sum::<f64>() / n,
            xs.iter().map(|m| m.avg_vcpu_spin()).sum::<f64>() / n,
        )
    };
    let (d_util, d_spin) = avg((0..5).map(run_direct).collect());
    let (s_util, s_spin) = avg((0..5).map(run_san).collect());
    assert!(
        (d_util - s_util).abs() < 0.03,
        "utilization: direct {d_util:.3} vs SAN {s_util:.3}"
    );
    assert!(
        (d_spin - s_spin).abs() < 0.03,
        "spin: direct {d_spin:.3} vs SAN {s_spin:.3}"
    );
}

/// Spin + useful utilization never exceed the scheduled-time budget.
#[test]
fn spin_plus_utilization_bounded_by_one() {
    let w = spinlock_workload(Dist::exponential(10.0).unwrap(), 0.5);
    let cfg = config(3, &[3, 2], &w);
    for kind in [
        PolicyKind::RoundRobin,
        PolicyKind::StrictCo,
        PolicyKind::relaxed_co_default(),
        PolicyKind::Balance,
    ] {
        let mut sim = DirectSim::new(cfg.clone(), kind.create(), 7);
        sim.run(10_000).unwrap();
        let m = sim.metrics();
        for (u, s) in m.vcpu_utilization.iter().zip(&m.vcpu_spin) {
            assert!(u + s <= 1.0 + 1e-9, "{kind}: util {u} + spin {s} > 1");
        }
    }
}

/// A preempted holder keeps the lock: its sibling spins even while the
/// holder is INACTIVE (white-box trace of the semantic-gap problem).
#[test]
fn preempted_holder_keeps_lock() {
    // 1 PCPU, 2 VCPUs, every job a critical section, long jobs: the holder
    // is preempted mid-section, the other VCPU spins its entire slice.
    let w = spinlock_workload(Dist::deterministic(100.0).unwrap(), 1.0);
    let cfg = {
        SystemConfig::builder()
            .pcpus(1)
            .timeslice(5)
            .vm_spec(VmSpec {
                vcpus: 2,
                workload: w.clone(),
                weight: 1,
            })
            .build()
            .unwrap()
    };
    let mut sim = DirectSim::new(cfg, PolicyKind::RoundRobin.create(), 8);
    // Tick 1: VCPU 0 in, gets a critical-section job; acquires at tick 2.
    // Slice (5 ticks) expires; VCPU 1 comes in with its own section job and
    // must spin against the inactive holder.
    sim.run(20).unwrap();
    let views = sim.vcpu_views();
    let v0 = &views[0];
    let v1 = &views[1];
    // Whoever is inactive holds partial critical-section work...
    let inactive = if v0.status == VcpuStatus::Inactive {
        v0
    } else {
        v1
    };
    let active = if v0.status == VcpuStatus::Inactive {
        v1
    } else {
        v0
    };
    assert!(inactive.sync_point && inactive.remaining_load > 0);
    // ...and the active one cannot have progressed much: it spins.
    assert!(active.sync_point);
    let m = sim.metrics();
    assert!(
        m.vcpu_spin.iter().sum::<f64>() > 0.3,
        "spinning must dominate: {m:?}"
    );
}
