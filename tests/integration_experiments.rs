//! Experiment-harness behaviour: the Mobius-style stopping rule, report
//! structure, custom user policies through the public trait, and
//! serialization of experiment configuration.

use vsched_core::{
    Engine, ExperimentBuilder, PcpuView, PolicyKind, ScheduleDecision, SchedulingPolicy,
    SystemConfig, VcpuView,
};
use vsched_stats::StoppingRule;

fn fig8_config(pcpus: usize) -> SystemConfig {
    SystemConfig::builder()
        .pcpus(pcpus)
        .vm(2)
        .vm(1)
        .vm(1)
        .sync_ratio(1, 5)
        .build()
        .unwrap()
}

#[test]
fn paper_stopping_rule_yields_tight_intervals() {
    // The paper reports "95% confidence level and <0.1 confidence interval".
    let report = ExperimentBuilder::new(fig8_config(2), PolicyKind::RoundRobin)
        .engine(Engine::Direct)
        .warmup(1_000)
        .horizon(10_000)
        .run()
        .unwrap();
    for ci in report
        .vcpu_availability
        .iter()
        .chain(&report.vcpu_utilization)
        .chain(&report.pcpu_utilization)
    {
        assert_eq!(ci.level, 0.95);
        assert!(
            ci.half_width <= 0.05 || report.replications >= 40,
            "interval too wide: {ci}"
        );
    }
    assert!(report.replications >= 5);
}

#[test]
fn custom_stopping_rule_is_respected() {
    let rule = StoppingRule::new(0.99, 0.02)
        .with_min_replications(8)
        .with_max_replications(12);
    let report = ExperimentBuilder::new(fig8_config(4), PolicyKind::RoundRobin)
        .engine(Engine::Direct)
        .warmup(200)
        .horizon(2_000)
        .stopping_rule(rule)
        .run()
        .unwrap();
    assert!(report.replications >= 8);
    assert!(report.replications <= 12);
    assert_eq!(report.vcpu_availability[0].level, 0.99);
}

/// A user-defined scheduling algorithm, plugged in exactly the way the
/// paper's C interface intends: a VM-0-first priority policy.
#[derive(Debug, Default)]
struct Vm0First;

impl SchedulingPolicy for Vm0First {
    fn name(&self) -> &str {
        "vm0-first"
    }
    fn schedule(
        &mut self,
        vcpus: &[VcpuView],
        pcpus: &[PcpuView],
        _timestamp: u64,
        timeslice: u64,
    ) -> ScheduleDecision {
        let mut decision = ScheduleDecision::none();
        let mut idle: Vec<usize> = pcpus.iter().filter(|p| p.is_idle()).map(|p| p.id).collect();
        let mut ordered: Vec<&VcpuView> = vcpus.iter().collect();
        ordered.sort_by_key(|v| (v.id.vm, v.id.sibling));
        for v in ordered {
            if !v.is_schedulable() {
                continue;
            }
            let Some(p) = idle.pop() else { break };
            decision.assign(v.id.global, p, timeslice);
        }
        decision
    }
}

#[test]
fn user_defined_policy_runs_through_both_engines() {
    // Plug the custom policy directly into each engine.
    use vsched_core::{direct::DirectSim, san_model::SanSystem};
    let cfg = fig8_config(1);
    let mut direct = DirectSim::new(cfg.clone(), Box::new(Vm0First), 3);
    direct.run(5_000).unwrap();
    let dm = direct.metrics();
    // VM 0 hogs the single PCPU; VMs 1 and 2 starve.
    assert!(dm.vcpu_availability[0] + dm.vcpu_availability[1] > 0.9);
    assert!(dm.vcpu_availability[3] < 0.1);

    let mut san = SanSystem::new(cfg, Box::new(Vm0First), 3).unwrap();
    san.run(5_000).unwrap();
    let sm = san.metrics();
    assert!(sm.vcpu_availability[0] + sm.vcpu_availability[1] > 0.9);
    assert!(sm.vcpu_availability[3] < 0.1);
}

#[test]
fn policy_kind_serializes() {
    let kinds = vec![
        PolicyKind::RoundRobin,
        PolicyKind::relaxed_co_default(),
        PolicyKind::credit_default(),
    ];
    for kind in kinds {
        let json = serde_json::to_string(&kind).unwrap();
        let back: PolicyKind = serde_json::from_str(&json).unwrap();
        assert_eq!(kind, back);
    }
}

#[test]
fn sample_metrics_serialize() {
    let report = ExperimentBuilder::new(fig8_config(2), PolicyKind::RoundRobin)
        .engine(Engine::Direct)
        .warmup(100)
        .horizon(1_000)
        .replications_exact(2)
        .run()
        .unwrap();
    // SampleMetrics round-trips through JSON (used by the bench harness).
    let sample = ExperimentBuilder::new(fig8_config(2), PolicyKind::RoundRobin)
        .engine(Engine::Direct)
        .warmup(100)
        .horizon(1_000)
        .run_replication(0)
        .unwrap();
    let json = serde_json::to_string(&sample).unwrap();
    let back: vsched_core::SampleMetrics = serde_json::from_str(&json).unwrap();
    assert_eq!(sample, back);
    assert!(report.replications >= 2);
}

#[test]
fn replication_seeds_are_distinct_but_reproducible() {
    let builder = ExperimentBuilder::new(fig8_config(2), PolicyKind::RoundRobin)
        .engine(Engine::Direct)
        .warmup(100)
        .horizon(2_000);
    let a0 = builder.run_replication(0).unwrap();
    let a0_again = builder.run_replication(0).unwrap();
    let a1 = builder.run_replication(1).unwrap();
    assert_eq!(a0, a0_again, "same replication index → identical run");
    assert_ne!(a0, a1, "different replication index → different run");
}
