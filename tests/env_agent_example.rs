//! End-to-end round trip with the shipped example agent
//! (`examples/random_agent.py`): an external *process* joins over the
//! JSON-lines protocol, declares a partial field view, and completes a
//! full episode — twice, bit-identically, because both the environment
//! and the agent are seeded.
//!
//! Skipped (with a note, not a failure) when `python3` is unavailable:
//! the agent is the protocol's reference client, not a Rust artifact.

use std::process::Command;
use std::time::Duration;

use vsched_core::{Engine, SystemConfig};
use vsched_env::{run_remote_episode, Env, EpisodeRun, RemotePolicy, Scenario};

fn python3_available() -> bool {
    Command::new("python3")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

fn agent_command() -> String {
    format!(
        "python3 {}/../../examples/random_agent.py",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn play(seed: u64) -> EpisodeRun {
    let config = SystemConfig::builder()
        .pcpus(2)
        .vm(2)
        .vm(1)
        .build()
        .unwrap();
    let scenario = Scenario::new(config)
        .engine(Engine::San)
        .warmup(50)
        .horizon(250);
    let mut agent =
        RemotePolicy::spawn(&agent_command(), "example-test", Duration::from_secs(30)).unwrap();
    assert_eq!(agent.name(), "py-random");
    // The example declares exactly one payload field.
    assert_eq!(agent.fields().declared(), vec!["remaining_load"]);
    let mut env = Env::new(scenario)
        .fields(agent.fields())
        .agent_name(agent.name());
    run_remote_episode(&mut env, &mut agent, seed).unwrap()
}

#[test]
fn example_agent_completes_a_full_episode_bit_identically() {
    if !python3_available() {
        eprintln!("skipping: python3 not available");
        return;
    }
    let a = play(7);
    assert_eq!(a.end.ticks, 300, "warmup + horizon, no early exit");
    assert_eq!(a.actions.len() as u64, a.end.ticks, "one decision per tick");
    assert!(
        a.actions.iter().any(|d| !d.assignments.is_empty()),
        "a random agent over a saturated system assigns work"
    );
    // Fresh process, same seeds on both sides: the whole episode —
    // observations, decisions, final marking — replays bit for bit.
    let b = play(7);
    assert_eq!(a.end.fingerprint, b.end.fingerprint);
    assert_eq!(a.obs_digest, b.obs_digest);
    assert_eq!(a.actions, b.actions);
    // A different seed changes the workload draws, hence the episode.
    let c = play(8);
    assert_ne!(a.end.fingerprint, c.end.fingerprint);
}
