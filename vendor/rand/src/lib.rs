//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no network access and no
//! crates.io mirror, so the external `rand` crate cannot be downloaded.
//! `vsched-des` ships its own fully specified generator
//! (xoshiro256**) and only relies on `rand` for the *trait* vocabulary —
//! `RngCore` / `SeedableRng` — so that it composes with rand-based code
//! when the real crate is present. This shim provides exactly that trait
//! surface with the same semantics (including the default
//! `seed_from_u64` expansion used by rand 0.8, SplitMix64).

#![forbid(unsafe_code)]

use std::fmt;

/// Error type reported by fallible RNG operations.
///
/// The simulator's generators are infallible; this exists so that
/// `RngCore::try_fill_bytes` has the same shape as rand 0.8.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    #[must_use]
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (rand 0.8 `RngCore`).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure as an error.
    ///
    /// # Errors
    ///
    /// Never fails for the deterministic generators in this workspace.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator seedable from fixed entropy (rand 0.8 `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed material, usually a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// byte-for-byte the expansion rand 0.8 uses.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn default_try_fill_delegates() {
        let mut c = Counter(0);
        let mut buf = [0u8; 4];
        c.try_fill_bytes(&mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a = Counter::seed_from_u64(7).0;
        let b = Counter::seed_from_u64(7).0;
        assert_eq!(a, b);
    }
}
