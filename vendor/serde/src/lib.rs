//! Offline stand-in for `serde`.
//!
//! The workspace builds in environments with no network access, so the
//! real `serde` cannot be downloaded. The framework only ever serializes
//! to and from JSON (configs, figure dumps), so this shim replaces
//! serde's visitor architecture with a single JSON-shaped data model,
//! [`Content`]: `Serialize` converts a value *into* a `Content` tree and
//! `Deserialize` reconstructs a value *from* one. The companion
//! `serde_derive` shim generates both impls for structs and enums,
//! honouring the subset of `#[serde(...)]` attributes this workspace
//! uses (`rename`, `rename_all`, `default`, `default = "fn"`,
//! `skip_serializing_if`, `untagged`).
//!
//! `serde_json` (also vendored) re-exports [`Content`] as its `Value`
//! and supplies the JSON text layer.

#![forbid(unsafe_code)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model every value serializes through.
///
/// Integers keep their sign information (`U64` vs `I64`) so that large
/// unsigned values round-trip exactly; floats are a separate arm and
/// never compare equal to integers, matching `serde_json::Value`.
#[derive(Debug, Clone)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Content>),
    /// JSON object, preserving insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The object entries, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, coercing integers.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::U64(v) => i64::try_from(v).ok(),
            Content::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// Looks up an object key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Looks up an array index.
    #[must_use]
    pub fn get_index(&self, index: usize) -> Option<&Content> {
        self.as_array().and_then(|s| s.get(index))
    }

    /// Renders as compact JSON text.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Renders as pretty-printed JSON text (two-space indent).
    #[must_use]
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Content::Null => out.push_str("null"),
            Content::Bool(true) => out.push_str("true"),
            Content::Bool(false) => out.push_str("false"),
            Content::U64(v) => out.push_str(&v.to_string()),
            Content::I64(v) => out.push_str(&v.to_string()),
            Content::F64(v) => {
                if v.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, always with a decimal point or exponent.
                    out.push_str(&format!("{v:?}"));
                } else {
                    // JSON has no NaN/Infinity; serde_json writes null.
                    out.push_str("null");
                }
            }
            Content::Str(s) => write_json_string(out, s),
            Content::Seq(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write_json(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Content::Map(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl PartialEq for Content {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Content::Null, Content::Null) => true,
            (Content::Bool(a), Content::Bool(b)) => a == b,
            (Content::Str(a), Content::Str(b)) => a == b,
            (Content::Seq(a), Content::Seq(b)) => a == b,
            (Content::Map(a), Content::Map(b)) => a == b,
            (Content::F64(a), Content::F64(b)) => a == b,
            // Integers compare by value across the signed/unsigned split.
            (a, b) => match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) => x == y,
                _ => match (a.as_u64(), b.as_u64()) {
                    (Some(x), Some(y)) => x == y,
                    _ => false,
                },
            },
        }
    }
}

impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Content {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Content {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Content> for &str {
    fn eq(&self, other: &Content) -> bool {
        other.as_str() == Some(*self)
    }
}

macro_rules! content_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Content {
            #[allow(unused_comparisons, clippy::cast_lossless)]
            fn eq(&self, other: &$t) -> bool {
                if *other >= 0 {
                    self.as_u64() == Some(*other as u64)
                } else {
                    self.as_i64() == Some(*other as i64)
                }
            }
        }
    )*};
}
content_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Content {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Content::F64(v) if v == other)
    }
}

impl PartialEq<bool> for Content {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

static NULL_CONTENT: Content = Content::Null;

impl std::ops::Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL_CONTENT)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;
    fn index(&self, index: usize) -> &Content {
        self.get_index(index).unwrap_or(&NULL_CONTENT)
    }
}

impl fmt::Display for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

/// Deserialization error: a message describing what did not match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Converts a value into the [`Content`] data model.
pub trait Serialize {
    /// Serializes `self` into a content tree.
    fn serialize_content(&self) -> Content;
}

/// Reconstructs a value from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Deserializes a value from a content tree.
    ///
    /// # Errors
    ///
    /// [`DeError`] when the content shape does not match `Self`.
    fn deserialize_content(content: &Content) -> Result<Self, DeError>;
}

/// Map lookup helper used by derived `Deserialize` impls.
#[doc(hidden)]
#[must_use]
pub fn __content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        T::deserialize_content(content).map(Box::new)
    }
}

impl Serialize for Content {
    fn serialize_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_bool()
            .ok_or_else(|| DeError::custom(format!("expected boolean, got {content}")))
    }
}

macro_rules! serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, DeError> {
                let v = content.as_u64().ok_or_else(|| {
                    DeError::custom(format!(
                        "expected unsigned integer, got {content}"
                    ))
                })?;
                <$t>::try_from(v).map_err(|_| {
                    DeError::custom(format!(
                        "integer {v} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
serde_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        let v = content
            .as_u64()
            .ok_or_else(|| DeError::custom(format!("expected unsigned integer, got {content}")))?;
        usize::try_from(v).map_err(|_| DeError::custom(format!("integer {v} out of range")))
    }
}

macro_rules! serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[allow(clippy::cast_lossless)]
            fn serialize_content(&self) -> Content {
                let v = i64::from(*self);
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, DeError> {
                let v = content.as_i64().ok_or_else(|| {
                    DeError::custom(format!("expected integer, got {content}"))
                })?;
                <$t>::try_from(v).map_err(|_| {
                    DeError::custom(format!(
                        "integer {v} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
serde_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize_content(&self) -> Content {
        let v = *self as i64;
        if v >= 0 {
            Content::U64(v as u64)
        } else {
            Content::I64(v)
        }
    }
}

impl Deserialize for isize {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        let v = content
            .as_i64()
            .ok_or_else(|| DeError::custom(format!("expected integer, got {content}")))?;
        isize::try_from(v).map_err(|_| DeError::custom(format!("integer {v} out of range")))
    }
}

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_f64()
            .ok_or_else(|| DeError::custom(format!("expected number, got {content}")))
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        f64::deserialize_content(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, got {content}")))
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        if content.is_null() {
            Ok(None)
        } else {
            T::deserialize_content(content).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        let seq = content
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {content}")))?;
        seq.iter().map(T::deserialize_content).collect()
    }
}

macro_rules! serde_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_content(content: &Content) -> Result<Self, DeError> {
                let seq = content.as_array().ok_or_else(|| {
                    DeError::custom(format!("expected array, got {content}"))
                })?;
                if seq.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected array of length {}, got {}", $len, seq.len()
                    )));
                }
                Ok(($($name::deserialize_content(&seq[$idx])?,)+))
            }
        }
    )*};
}
serde_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::deserialize_content(&5u64.serialize_content()), Ok(5));
        assert_eq!(
            i32::deserialize_content(&(-3i32).serialize_content()),
            Ok(-3)
        );
        assert_eq!(f64::deserialize_content(&Content::U64(4)), Ok(4.0));
        assert_eq!(
            String::deserialize_content(&Content::Str("hi".into())),
            Ok("hi".to_string())
        );
        assert!(u32::deserialize_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn tuple_and_vec_round_trip() {
        let v = (1u32, 5u32).serialize_content();
        assert_eq!(<(u32, u32)>::deserialize_content(&v), Ok((1, 5)));
        let xs = vec![1.5f64, 2.5];
        let c = xs.serialize_content();
        assert_eq!(Vec::<f64>::deserialize_content(&c), Ok(xs));
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(None::<u64>.serialize_content(), Content::Null);
        assert_eq!(Option::<u64>::deserialize_content(&Content::Null), Ok(None));
        assert_eq!(
            Option::<u64>::deserialize_content(&Content::U64(3)),
            Ok(Some(3))
        );
    }

    #[test]
    fn json_text_rendering() {
        let c = Content::Map(vec![
            ("a".to_string(), Content::F64(1.0)),
            (
                "b".to_string(),
                Content::Seq(vec![Content::U64(1), Content::Null]),
            ),
        ]);
        assert_eq!(c.to_json_string(), r#"{"a":1.0,"b":[1,null]}"#);
        assert!(c.to_json_string_pretty().contains("\n  \"a\": 1.0"));
    }

    #[test]
    fn integer_equality_crosses_sign_repr() {
        assert_eq!(Content::U64(5), Content::I64(5));
        assert_ne!(Content::U64(5), Content::F64(5.0));
        assert_eq!(Content::Str("x".into()), "x");
    }

    #[test]
    fn index_missing_is_null() {
        let c = Content::Map(vec![]);
        assert!(c["nope"].is_null());
        assert!(c[3].is_null());
    }
}
