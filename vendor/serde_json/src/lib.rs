//! Offline stand-in for `serde_json`.
//!
//! Provides the JSON text layer over the vendored `serde` shim's
//! [`Content`](serde::Content) data model: a recursive-descent parser,
//! compact and pretty writers, the [`json!`] macro, and a [`Map`] for
//! building objects incrementally. `Value` *is* `serde::Content`, so
//! anything serializable converts losslessly.

#![forbid(unsafe_code)]

use std::fmt;

/// JSON value — an alias for the serde shim's data model.
pub type Value = serde::Content;

/// Error produced by parsing or (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e)
    }
}

/// An insertion-ordered JSON object under construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty object.
    #[must_use]
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key, returning the previous value if the key existed.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl From<Map> for Value {
    fn from(map: Map) -> Value {
        Value::Map(map.entries)
    }
}

impl serde::Serialize for Map {
    fn serialize_content(&self) -> Value {
        Value::Map(self.entries.clone())
    }
}

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_content()
}

/// Serializes a value as compact JSON text.
///
/// # Errors
///
/// Never fails for the shim's data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_content().to_json_string())
}

/// Serializes a value as pretty-printed JSON text.
///
/// # Errors
///
/// Never fails for the shim's data model.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_content().to_json_string_pretty())
}

/// Parses JSON text into any deserializable value.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::deserialize_content(&value)?)
}

/// Builds a [`Value`] from JSON-like syntax.
///
/// Object values and array elements may be arbitrary serializable
/// expressions (including nested `json!` calls).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $( (($key).to_string(), $crate::to_value(&$value)) ),*
        ])
    };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::to_value(&$element) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// -------------------------------------------------------------- parser --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let (line, col) = self.line_col();
        Error::new(format!("{msg} at line {line} column {col}"))
    }

    fn line_col(&self) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unexpected end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v: Value =
            from_str(r#"{ "a": [1, -2, 3.5, true, null], "b": { "c": "x\ny" }, "d": 1e3 }"#)
                .unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], -2);
        assert_eq!(v["a"][2], 3.5);
        assert_eq!(v["a"][3], true);
        assert!(v["a"][4].is_null());
        assert_eq!(v["b"]["c"], "x\ny");
        assert_eq!(v["d"], 1000.0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("01a").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn text_round_trips_through_writer() {
        let text = r#"{"name":"vm","load":[5.0,15.0],"weight":2,"on":true,"x":null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_builds_objects() {
        let rows = vec![1u64, 2, 3];
        let v = json!({ "rows": rows, "label": "x", "nested": json!([1, 2]) });
        assert_eq!(v["rows"].as_array().unwrap().len(), 3);
        assert_eq!(v["label"], "x");
        assert_eq!(v["nested"][1], 2);
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(1.5), Value::F64(1.5));
    }

    #[test]
    fn map_insert_and_replace() {
        let mut m = Map::new();
        assert!(m.insert("a".into(), json!(1)).is_none());
        assert_eq!(m.insert("a".into(), json!(2)), Some(json!(1)));
        assert_eq!(m.len(), 1);
        let v: Value = m.into();
        assert_eq!(v["a"], 2);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""éA""#).unwrap();
        assert_eq!(v, "éA");
    }
}
