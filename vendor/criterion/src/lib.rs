//! Offline stand-in for `criterion`.
//!
//! A genuine wall-clock measurement harness with criterion's API shape:
//! groups, samples, throughput annotation, `iter`/`iter_batched`. Each
//! benchmark calibrates an iteration count against the group's measurement
//! time, collects `sample_size` samples, and prints mean/min/max per
//! iteration (plus throughput when configured). No plotting, no statistics
//! beyond the summary line — but timings are real, so relative comparisons
//! (e.g. parallel speedup) are meaningful.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration plus a sink for results.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            measurement_time,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let mut group = self.benchmark_group(label.clone());
        group.bench_function("", f);
        group.finish();
    }
}

/// Units for reporting a rate alongside per-iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Two-part benchmark label, printed as `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// How `iter_batched` amortises setup; the shim times every batch
/// individually, so the variants only bound the batch length.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}

    /// Prints one summary line from per-iteration sample times.
    fn report(&self, id: &str, samples: &[Duration]) {
        let full = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{id}", self.name)
        };
        if samples.is_empty() {
            println!("  {full:<40} (no samples)");
            return;
        }
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let rate = self.throughput.map(|t| {
            let secs = mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => format!("  {:.3e} elem/s", n as f64 / secs),
                Throughput::Bytes(n) => format!("  {:.3e} B/s", n as f64 / secs),
            }
        });
        println!(
            "  {full:<40} time: [{} {} {}]{}",
            format_duration(min),
            format_duration(mean),
            format_duration(max),
            rate.unwrap_or_default()
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Runs and times the benchmark routine.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Mean per-iteration time of each collected sample.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Picks iterations-per-sample so that `sample_size` samples roughly
    /// fill the measurement window, based on one calibration run.
    fn iters_per_sample(&self, calibration: Duration) -> u64 {
        let budget = self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let one = calibration.as_nanos().max(1);
        (budget / one).clamp(1, 1_000_000) as u64
    }

    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        let iters = self.iters_per_sample(start.elapsed());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let iters = self.iters_per_sample(start.elapsed());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_self_test");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Elements(100));
        let mut ran = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                let mut acc = 0u64;
                for i in 0..1000u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
            b.iter_batched(
                || vec![n; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
        assert!(ran > 5, "routine should run at least once per sample");
    }

    #[test]
    fn timing_distinguishes_fast_from_slow() {
        let time_of = |work: u64| {
            let mut b = Bencher {
                sample_size: 3,
                measurement_time: Duration::from_millis(10),
                samples: Vec::new(),
            };
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..work {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            });
            b.samples.iter().sum::<Duration>() / b.samples.len() as u32
        };
        let fast = time_of(100);
        let slow = time_of(100_000);
        assert!(
            slow > fast * 10,
            "1000x work should be >10x slower: fast={fast:?} slow={slow:?}"
        );
    }
}
