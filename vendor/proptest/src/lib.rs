//! Offline stand-in for `proptest`.
//!
//! Deterministic property testing: each test case draws its inputs from a
//! splitmix-based RNG seeded purely by the test name and case index, so a
//! failing case reproduces identically on every run. Supports the strategy
//! combinators this workspace uses: integer/float ranges, `any`, `Just`,
//! tuples, `prop_map`, `prop_oneof!`, and `collection::vec`.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert!`-family macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic RNG handed to strategies (splitmix64 chain).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        #[must_use]
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: hash ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Drives one `proptest!` test: `cases` iterations, each with a fresh
    /// deterministic RNG. Panics (failing the test) on the first `Err`.
    pub fn run<F>(test_name: &str, config: Config, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        for case_idx in 0..config.cases {
            let mut rng = TestRng::for_case(test_name, case_idx);
            let (inputs, result) = case(&mut rng);
            if let Err(e) = result {
                panic!(
                    "property test `{test_name}` failed at case {case_idx}: {e}\n  inputs: {inputs}"
                );
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, map }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Type-erased strategy, the element type of [`Union`].
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between equally weighted alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! unsigned_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = u64::from(self.end as u64 - self.start as u64);
                    self.start + rng.below(span) as $ty
                }
            }
        )*};
    }
    unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (i128::from(self.end) - i128::from(self.start)) as u64;
                    (i128::from(self.start) + i128::from(rng.below(span))) as $ty
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.next_unit_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.next_unit_f64() as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// Full-range generator for `any::<T>()`.
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    /// Generates any value of `T` uniformly over its full range.
    #[must_use]
    pub fn any<T>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }

    macro_rules! any_int_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Any<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }
    any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length bounds for [`vec()`]: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                start: exact,
                end: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            SizeRange {
                start: range.start,
                end: range.end,
            }
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                $crate::test_runner::run(stringify!($name), __config, |__rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);
                    )+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    (__inputs, __outcome)
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

/// Uniform choice between strategies that yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Like `assert!`, but fails the enclosing property case instead of
/// panicking directly (the runner reports the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!` for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{} (`{:?}` vs `{:?}`)",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&f));
            let n = crate::collection::vec(0usize..3, 1..5).generate(&mut rng);
            assert!((1..5).contains(&n.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro wires args, config, and assertions together.
        #[test]
        fn macro_end_to_end(
            x in 0u64..100,
            pair in (0i8..5, 1usize..4),
            v in crate::collection::vec(0u32..10, 3),
        ) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), 3);
            prop_assert!(pair.0 >= 0 && pair.1 >= 1, "pair out of range: {:?}", pair);
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failures_report_inputs() {
        crate::test_runner::run("failing", ProptestConfig::with_cases(1), |rng| {
            let x = (0u32..10).generate(rng);
            (format!("x = {x:?}"), Err(TestCaseError::fail("boom")))
        });
    }

    #[test]
    fn oneof_covers_all_options() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case("oneof", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
