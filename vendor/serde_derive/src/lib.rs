//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize` / `Deserialize` impls against the vendored
//! `serde` shim's `Content` data model. Written directly on
//! `proc_macro` (no `syn`/`quote`, which cannot be downloaded in this
//! environment), so it supports the declaration shapes this workspace
//! actually uses:
//!
//! * structs with named fields (no generics, no tuple structs);
//! * enums with unit, newtype, and struct variants (no tuple variants);
//! * container attributes `#[serde(rename_all = "snake_case")]`,
//!   `#[serde(rename_all = "lowercase")]`, `#[serde(untagged)]`,
//!   `#[serde(deny_unknown_fields)]` (rejects unrecognized object keys
//!   during deserialization, for structs and struct variants);
//! * field attributes `#[serde(rename = "...")]`, `#[serde(default)]`,
//!   `#[serde(default = "path")]`,
//!   `#[serde(skip_serializing_if = "path")]`.
//!
//! Unsupported shapes fail with a `compile_error!` naming the
//! limitation rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => {
            if serialize {
                gen_serialize(&item)
            } else {
                gen_deserialize(&item)
            }
        }
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid Rust: {e}\n{code}"))
}

// ---------------------------------------------------------------- model --

#[derive(Default)]
struct ContainerAttrs {
    rename_all: Option<String>,
    untagged: bool,
    deny_unknown_fields: bool,
}

#[derive(Default)]
struct FieldAttrs {
    rename: Option<String>,
    /// `Some(None)` for bare `default`, `Some(Some(path))` for `default = "path"`.
    default: Option<Option<String>>,
    skip_serializing_if: Option<String>,
}

struct Field {
    name: String,
    ty: String,
    attrs: FieldAttrs,
}

enum VariantKind {
    Unit,
    Newtype(String),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    rename: Option<String>,
    kind: VariantKind,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: ContainerAttrs,
    body: Body,
}

impl Item {
    fn key_for(&self, raw: &str, rename: Option<&String>) -> String {
        if let Some(r) = rename {
            return r.clone();
        }
        match self.attrs.rename_all.as_deref() {
            Some("snake_case") => to_snake_case(raw),
            Some("lowercase") => raw.to_lowercase(),
            _ => raw.to_string(),
        }
    }
}

fn to_snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// -------------------------------------------------------------- parsing --

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens: Tokens = input.into_iter().peekable();
    let metas = parse_attributes(&mut tokens)?;
    let mut attrs = ContainerAttrs::default();
    for (key, value) in metas {
        match (key.as_str(), value) {
            ("rename_all", Some(v)) => {
                if v != "snake_case" && v != "lowercase" {
                    return Err(format!("serde_derive shim: unsupported rename_all {v:?}"));
                }
                attrs.rename_all = Some(v);
            }
            ("untagged", None) => attrs.untagged = true,
            ("deny_unknown_fields", None) => attrs.deny_unknown_fields = true,
            ("transparent", None) => {}
            (other, _) => {
                return Err(format!(
                    "serde_derive shim: unsupported container attribute `{other}`"
                ))
            }
        }
    }
    skip_visibility(&mut tokens);
    let keyword = expect_ident(&mut tokens)?;
    if keyword != "struct" && keyword != "enum" {
        return Err(format!(
            "serde_derive shim: expected `struct` or `enum`, found `{keyword}`"
        ));
    }
    let name = expect_ident(&mut tokens)?;
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive shim: generic type `{name}` is not supported"
        ));
    }
    let group = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        _ => {
            return Err(format!(
                "serde_derive shim: `{name}` must have a braced body (tuple structs unsupported)"
            ))
        }
    };
    let body = if keyword == "struct" {
        Body::Struct(parse_fields(group.stream())?)
    } else {
        Body::Enum(parse_variants(group.stream())?)
    };
    Ok(Item { name, attrs, body })
}

/// Collects `(key, value)` pairs from every `#[serde(...)]` attribute at
/// the current position; other attributes (doc comments etc.) are skipped.
fn parse_attributes(tokens: &mut Tokens) -> Result<Vec<(String, Option<String>)>, String> {
    let mut metas = Vec::new();
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                let group = match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                    _ => return Err("serde_derive shim: malformed attribute".to_string()),
                };
                let mut inner = group.stream().into_iter();
                match inner.next() {
                    Some(TokenTree::Ident(name)) if name.to_string() == "serde" => {
                        let args = match inner.next() {
                            Some(TokenTree::Group(g))
                                if g.delimiter() == Delimiter::Parenthesis =>
                            {
                                g
                            }
                            _ => {
                                return Err("serde_derive shim: expected #[serde(...)]".to_string())
                            }
                        };
                        parse_meta_list(args.stream(), &mut metas)?;
                    }
                    _ => {} // not a serde attribute; ignore
                }
            }
            _ => return Ok(metas),
        }
    }
}

fn parse_meta_list(
    stream: TokenStream,
    metas: &mut Vec<(String, Option<String>)>,
) -> Result<(), String> {
    let mut iter = stream.into_iter().peekable();
    while let Some(token) = iter.next() {
        let key = match token {
            TokenTree::Ident(i) => i.to_string(),
            other => {
                return Err(format!(
                    "serde_derive shim: unexpected token `{other}` in #[serde(...)]"
                ))
            }
        };
        let value = match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Literal(lit)) => Some(unquote(&lit.to_string())?),
                    other => {
                        return Err(format!(
                            "serde_derive shim: expected string after `{key} =`, got {other:?}"
                        ))
                    }
                }
            }
            _ => None,
        };
        metas.push((key, value));
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
    }
    Ok(())
}

fn unquote(lit: &str) -> Result<String, String> {
    let inner = lit
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("serde_derive shim: expected string literal, got {lit}"))?;
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

fn skip_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

fn expect_ident(tokens: &mut Tokens) -> Result<String, String> {
    match tokens.next() {
        Some(TokenTree::Ident(i)) => Ok(i.to_string()),
        other => Err(format!(
            "serde_derive shim: expected identifier, found {other:?}"
        )),
    }
}

fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut tokens: Tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while tokens.peek().is_some() {
        let metas = parse_attributes(&mut tokens)?;
        let mut attrs = FieldAttrs::default();
        for (key, value) in metas {
            match (key.as_str(), value) {
                ("rename", Some(v)) => attrs.rename = Some(v),
                ("default", v) => attrs.default = Some(v),
                ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v),
                (other, _) => {
                    return Err(format!(
                        "serde_derive shim: unsupported field attribute `{other}`"
                    ))
                }
            }
        }
        skip_visibility(&mut tokens);
        let name = expect_ident(&mut tokens)?;
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde_derive shim: expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        let ty = collect_type(&mut tokens)?;
        fields.push(Field { name, ty, attrs });
    }
    Ok(fields)
}

/// Collects type tokens up to the next comma outside `<...>` nesting.
fn collect_type(tokens: &mut Tokens) -> Result<String, String> {
    let mut depth: i32 = 0;
    let mut collected = TokenStream::new();
    while let Some(token) = tokens.peek() {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    tokens.next();
                    break;
                }
                _ => {}
            }
        }
        collected.extend([tokens.next().expect("peeked")]);
    }
    let ty = collected.to_string();
    if ty.is_empty() {
        return Err("serde_derive shim: empty field type".to_string());
    }
    Ok(ty)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut tokens: Tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while tokens.peek().is_some() {
        let metas = parse_attributes(&mut tokens)?;
        let mut rename = None;
        for (key, value) in metas {
            match (key.as_str(), value) {
                ("rename", Some(v)) => rename = Some(v),
                (other, _) => {
                    return Err(format!(
                        "serde_derive shim: unsupported variant attribute `{other}`"
                    ))
                }
            }
        }
        let name = expect_ident(&mut tokens)?;
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                tokens.next();
                let mut inner_tokens: Tokens = inner.into_iter().peekable();
                let ty = collect_type(&mut inner_tokens)?;
                if inner_tokens.peek().is_some() {
                    return Err(format!(
                        "serde_derive shim: tuple variant `{name}` with >1 field unsupported"
                    ));
                }
                VariantKind::Newtype(ty)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                tokens.next();
                VariantKind::Struct(parse_fields(inner)?)
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }
        variants.push(Variant { name, rename, kind });
    }
    Ok(variants)
}

// -------------------------------------------------------------- codegen --

/// Serialization statements that push a struct's (or struct variant's)
/// fields into a `__m: Vec<(String, Content)>`, honouring
/// `skip_serializing_if`. `accessor(field)` renders the field expression.
fn ser_fields(item: &Item, fields: &[Field], accessor: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    for f in fields {
        let key = item.key_for(&f.name, f.attrs.rename.as_ref());
        let expr = accessor(&f.name);
        let push = format!(
            "__m.push(({key:?}.to_string(), ::serde::Serialize::serialize_content({expr})));"
        );
        if let Some(skip) = &f.attrs.skip_serializing_if {
            out.push_str(&format!("if !{skip}({expr}) {{ {push} }}\n"));
        } else {
            out.push_str(&push);
            out.push('\n');
        }
    }
    out
}

/// Field initializers for a braced constructor, reading from `__map`.
fn de_fields(item: &Item, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let key = item.key_for(&f.name, f.attrs.rename.as_ref());
        let missing = match &f.attrs.default {
            Some(None) => "::std::default::Default::default()".to_string(),
            Some(Some(path)) => format!("{path}()"),
            None if type_is_option(&f.ty) => "::std::option::Option::None".to_string(),
            None => format!(
                "return ::std::result::Result::Err(::serde::DeError::custom(\
                 concat!({:?}, \": missing field `\", {key:?}, \"`\")))",
                item.name
            ),
        };
        out.push_str(&format!(
            "{name}: match ::serde::__content_get(__map, {key:?}) {{\n\
             ::std::option::Option::Some(__x) => \
             <{ty} as ::serde::Deserialize>::deserialize_content(__x)?,\n\
             ::std::option::Option::None => {missing},\n}},\n",
            name = f.name,
            ty = f.ty,
        ));
    }
    out
}

/// Statements rejecting object keys not named by `fields`, for containers
/// marked `#[serde(deny_unknown_fields)]`. Expects `__map` in scope.
/// `context` names the struct (or `Enum::Variant`) for the error message.
fn deny_unknown_check(item: &Item, fields: &[Field], context: &str) -> String {
    if !item.attrs.deny_unknown_fields {
        return String::new();
    }
    let keys: Vec<String> = fields
        .iter()
        .map(|f| format!("{:?}", item.key_for(&f.name, f.attrs.rename.as_ref())))
        .collect();
    if keys.is_empty() {
        return format!(
            "if let ::std::option::Option::Some((__k, _)) = __map.first() {{\n\
             return ::std::result::Result::Err(::serde::DeError::custom(\
             format!(concat!({context:?}, \": unknown field `{{}}`\"), __k)));\n}}\n"
        );
    }
    format!(
        "for (__k, _) in __map {{\n\
         if ![{list}].contains(&__k.as_str()) {{\n\
         return ::std::result::Result::Err(::serde::DeError::custom(\
         format!(concat!({context:?}, \": unknown field `{{}}`\"), __k)));\n}}\n}}\n",
        list = keys.join(", ")
    )
}

fn type_is_option(ty: &str) -> bool {
    let first = ty.split(['<', ' ']).next().unwrap_or("");
    first == "Option"
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let pushes = ser_fields(item, fields, |f| format!("&self.{f}"));
            format!(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Content::Map(__m)"
            )
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let key = item.key_for(&v.name, v.rename.as_ref());
                let arm = match &v.kind {
                    VariantKind::Unit => {
                        if item.attrs.untagged {
                            format!("{name}::{v} => ::serde::Content::Null,\n", v = v.name)
                        } else {
                            format!(
                                "{name}::{v} => ::serde::Content::Str({key:?}.to_string()),\n",
                                v = v.name
                            )
                        }
                    }
                    VariantKind::Newtype(_) => {
                        let inner = "::serde::Serialize::serialize_content(__inner)";
                        if item.attrs.untagged {
                            format!("{name}::{v}(__inner) => {inner},\n", v = v.name)
                        } else {
                            format!(
                                "{name}::{v}(__inner) => {{\n\
                                 let mut __m: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Content)> = ::std::vec::Vec::new();\n\
                                 __m.push(({key:?}.to_string(), {inner}));\n\
                                 ::serde::Content::Map(__m)\n}},\n",
                                v = v.name
                            )
                        }
                    }
                    VariantKind::Struct(fields) => {
                        let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let pushes = ser_fields(item, fields, |f| f.to_string());
                        let map = format!(
                            "let mut __m: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Content)> = ::std::vec::Vec::new();\n{pushes}"
                        );
                        let value = if item.attrs.untagged {
                            "::serde::Content::Map(__m)".to_string()
                        } else {
                            format!(
                                "{{ let mut __outer: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Content)> = ::std::vec::Vec::new();\n\
                                 __outer.push(({key:?}.to_string(), ::serde::Content::Map(__m)));\n\
                                 ::serde::Content::Map(__outer) }}"
                            )
                        };
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\n{map}{value}\n}},\n",
                            v = v.name,
                            binds = bindings.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits = de_fields(item, fields);
            let deny = deny_unknown_check(item, fields, name);
            format!(
                "let __map = __v.as_map().ok_or_else(|| ::serde::DeError::custom(\
                 concat!({name:?}, \": expected object\")))?;\n\
                 {deny}::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Body::Enum(variants) if item.attrs.untagged => {
            let mut attempts = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        attempts.push_str(&format!(
                            "if __v.is_null() {{ return ::std::result::Result::Ok({name}::{v}); }}\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Newtype(ty) => {
                        attempts.push_str(&format!(
                            "if let ::std::result::Result::Ok(__x) = \
                             <{ty} as ::serde::Deserialize>::deserialize_content(__v) {{\n\
                             return ::std::result::Result::Ok({name}::{v}(__x));\n}}\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits = de_fields(item, fields);
                        let deny =
                            deny_unknown_check(item, fields, &format!("{name}::{v}", v = v.name));
                        attempts.push_str(&format!(
                            "let __attempt = (|| -> ::std::result::Result<{name}, ::serde::DeError> {{\n\
                             let __map = __v.as_map().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected object\"))?;\n\
                             {deny}::std::result::Result::Ok({name}::{v} {{\n{inits}}})\n}})();\n\
                             if let ::std::result::Result::Ok(__x) = __attempt {{\n\
                             return ::std::result::Result::Ok(__x);\n}}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "{attempts}::std::result::Result::Err(::serde::DeError::custom(\
                 concat!({name:?}, \": no untagged variant matched\")))"
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let key = item.key_for(&v.name, v.rename.as_ref());
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "{key:?} => return ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Newtype(ty) => {
                        data_arms.push_str(&format!(
                            "{key:?} => return ::std::result::Result::Ok({name}::{v}(\
                             <{ty} as ::serde::Deserialize>::deserialize_content(__inner)?)),\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits = de_fields(item, fields);
                        let deny =
                            deny_unknown_check(item, fields, &format!("{name}::{v}", v = v.name));
                        data_arms.push_str(&format!(
                            "{key:?} => {{\n\
                             let __map = __inner.as_map().ok_or_else(|| \
                             ::serde::DeError::custom(concat!({name:?}, \"::\", {key:?}, \
                             \": expected object\")))?;\n\
                             {deny}return ::std::result::Result::Ok({name}::{v} {{\n{inits}}});\n}},\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}\
                 __other => return ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(concat!({name:?}, \": unknown variant `{{}}`\"), __other))),\n}}\n}}\n\
                 if let ::std::option::Option::Some(__map) = __v.as_map() {{\n\
                 if __map.len() == 1 {{\n\
                 let (__tag, __inner) = &__map[0];\n\
                 let _ = __inner;\n\
                 match __tag.as_str() {{\n{data_arms}\
                 __other => return ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(concat!({name:?}, \": unknown variant `{{}}`\"), __other))),\n}}\n}}\n}}\n\
                 ::std::result::Result::Err(::serde::DeError::custom(\
                 concat!({name:?}, \": expected variant string or single-key object\")))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_content(__v: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
